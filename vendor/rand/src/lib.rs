//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset of the rand API this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` / `gen_bool` / `gen` —
//! backed by a xoshiro256++ generator seeded through SplitMix64 (the same
//! construction the real `SmallRng` uses on 64-bit targets). Deterministic
//! for a fixed seed, which is all the simulation needs.

use std::ops::Range;

/// The core trait every generator implements: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value of type `T` from its full range (`Standard` in the
    /// real crate).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their full range via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // for every call site in this workspace, so a simple modulo
                // of a 64-bit draw has negligible bias, but reject anyway.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let draw = rng.next_u64();
                    if draw < zone {
                        return self.start + (draw % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
