//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! minimal surface the workspace uses: the `Serialize` / `Deserialize`
//! marker traits and the same-named no-op derive macros. Swapping in the
//! real serde is a one-line change in the workspace manifest.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
