//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API (infallible
//! `lock()`, no poison handling). Functionally equivalent for this
//! workspace's purposes; the real crate is only faster.

use std::fmt;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking. Returns `None` if it
    /// is held by another thread (parking_lot returns an `Option`, not the
    /// `Result` of `std::sync`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_lock_returns_none_while_held() {
        let m = Mutex::new(5);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        let guard = m.try_lock().expect("uncontended try_lock succeeds");
        assert_eq!(*guard, 5);
    }

    #[test]
    fn try_lock_observes_mutations() {
        let m = Mutex::new(0);
        *m.try_lock().unwrap() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn mutex_get_mut_and_into_inner() {
        let mut m = Mutex::new(vec![1]);
        m.get_mut().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_get_mut_and_into_inner() {
        let mut l = RwLock::new(String::from("a"));
        l.get_mut().push('b');
        assert_eq!(*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(3);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 6);
    }
}
