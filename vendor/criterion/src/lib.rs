//! Offline stand-in for `criterion`.
//!
//! Exposes the subset of the Criterion 0.5 API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! sample-size and timing knobs) and measures with plain wall-clock timing:
//! one warm-up iteration, then `sample_size` timed iterations, reporting
//! min / mean / max per benchmark. No statistics, no HTML reports — enough
//! to compile the eight benches and produce honest relative numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always warms up with a
    /// single iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates the group's throughput (echoed in the report line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{}: [{:?} {:?} {:?}]{}",
            self.name, id, min, mean, max, rate
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    benchmarks_run: usize,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            benchmarks_run: 0,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility with the real crate; arguments are
    /// ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
