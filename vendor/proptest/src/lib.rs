//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges
//!   and tuples,
//! * [`collection::vec`] and [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Inputs are drawn from a generator seeded deterministically from the test
//! name, so failures reproduce across runs. There is no shrinking: a failing
//! case panics with the ordinary assertion message.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* generator; seeded from the test name so
    /// every run of a given property sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, never zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Returns the next random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let draw = self.next_u64();
                if draw < zone {
                    return draw % span;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    *self.start() + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// A strategy that always yields clones of one value (`Just` in the
    /// real crate).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The crate root under the conventional `prop` alias, so
    /// `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Asserts a condition inside a property (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $($strat,)+ );
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
