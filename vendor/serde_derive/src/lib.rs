//! Offline stand-in for `serde_derive`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal serde surface. Nothing in this repository serialises at
//! runtime — `#[derive(Serialize, Deserialize)]` is declarative API surface —
//! so the derives accept the input (including `#[serde(...)]` attributes) and
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
