//! Repository-level façade crate.
//!
//! This crate exists so that the repo root can host runnable `examples/`
//! and cross-crate integration `tests/`. It re-exports the public library.

pub use hstorage::{SystemConfig, TpchSystem};
