//! Property-based tests (proptest) for the core invariants of the
//! reproduction: the priority-mapping function, the hybrid cache's
//! selective allocation/eviction, and the LRU baseline.

use hstorage_cache::{HybridCache, LruCache, StorageSystem};
use hstorage_engine::random_request_priority;
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass, TrimCommand,
};
use proptest::prelude::*;

/// An arbitrary classified request over a bounded address space.
fn arb_request() -> impl Strategy<Value = ClassifiedRequest> {
    (0u64..2_000, 1u64..32, 0usize..5, any::<bool>()).prop_map(|(start, len, class, write)| {
        let (class, policy, sequential) = match class {
            0 => (
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
                true,
            ),
            1 => (RequestClass::Random, QosPolicy::priority(2), false),
            2 => (RequestClass::Random, QosPolicy::priority(5), false),
            3 => (RequestClass::TemporaryData, QosPolicy::priority(1), true),
            _ => (RequestClass::Update, QosPolicy::WriteBuffer, false),
        };
        let io = if write {
            IoRequest::write(BlockRange::new(start, len), sequential)
        } else {
            IoRequest::read(BlockRange::new(start, len), sequential)
        };
        ClassifiedRequest::new(io, class, policy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Function (1) always lands inside the configured priority range,
    /// and deeper operators never get a *lower* priority than shallower ones.
    #[test]
    fn priority_function_is_bounded_and_monotone(
        llow in 0u32..6,
        gap in 0u32..8,
        level_a in 0u32..16,
        level_b in 0u32..16,
        n in 4u8..16,
    ) {
        let config = PolicyConfig::with_priorities(n, 0.1);
        let lhigh = llow + gap;
        let pa = random_request_priority(&config, level_a, llow, lhigh);
        let pb = random_request_priority(&config, level_b, llow, lhigh);
        prop_assert!(pa.0 >= config.random_range_high && pa.0 <= config.random_range_low);
        prop_assert!(pb.0 >= config.random_range_high && pb.0 <= config.random_range_low);
        if level_a <= level_b {
            prop_assert!(pa.0 <= pb.0, "lower level must not get lower priority");
        }
    }

    /// The hybrid cache never holds more blocks than its capacity, never
    /// admits blocks from non-caching policies, and its per-class hit
    /// counts never exceed the access counts.
    #[test]
    fn hybrid_cache_invariants(requests in prop::collection::vec(arb_request(), 1..200), capacity in 16u64..256) {
        let cache = HybridCache::new(PolicyConfig::paper_default(), capacity);
        for req in &requests {
            cache.submit(*req);
            prop_assert!(cache.resident_blocks() <= capacity);
        }
        let stats = cache.stats();
        for class in RequestClass::all() {
            let c = stats.class(class);
            prop_assert!(c.cache_hits <= c.accessed_blocks);
        }
        // Total device traffic is consistent: every accessed block was
        // served by the SSD (hit/allocation) or the HDD (bypass/allocation).
        let ssd = stats.ssd.clone().unwrap();
        let hdd = stats.hdd.clone().unwrap();
        prop_assert!(ssd.total_blocks() + hdd.total_blocks() >= stats.totals().accessed_blocks);
    }

    /// After a TRIM of the whole address space the hybrid cache is empty,
    /// no matter what preceded it.
    #[test]
    fn trim_everything_empties_the_cache(requests in prop::collection::vec(arb_request(), 1..100)) {
        let cache = HybridCache::new(PolicyConfig::paper_default(), 128);
        for req in &requests {
            cache.submit(*req);
        }
        cache.trim(&TrimCommand::single(BlockRange::new(0u64, 10_000)));
        prop_assert_eq!(cache.resident_blocks(), 0);
    }

    /// The LRU baseline respects its capacity and serves repeated reads of
    /// a small working set entirely from cache once warmed.
    #[test]
    fn lru_cache_invariants(requests in prop::collection::vec(arb_request(), 1..200), capacity in 16u64..256) {
        let cache = LruCache::new(capacity);
        for req in &requests {
            cache.submit(*req);
            prop_assert!(cache.resident_blocks() <= capacity);
        }
        let stats = cache.stats();
        prop_assert!(stats.totals().cache_hits <= stats.totals().accessed_blocks);
    }

    /// For identical request streams, the hybrid cache never does *worse*
    /// than bypassing everything in terms of HDD traffic for random
    /// requests with a cacheable priority (i.e. caching cannot increase the
    /// number of HDD reads for the same stream).
    #[test]
    fn caching_reduces_hdd_reads_for_repeated_random_access(
        working_set in 1u64..64,
        repeats in 2u32..6,
    ) {
        let cache = HybridCache::new(PolicyConfig::paper_default(), 256);
        for _ in 0..repeats {
            for i in 0..working_set {
                cache.submit(ClassifiedRequest::new(
                    IoRequest::read(BlockRange::new(i, 1), false),
                    RequestClass::Random,
                    QosPolicy::priority(2),
                ));
            }
        }
        let stats = cache.stats();
        let hdd_reads = stats.hdd.as_ref().unwrap().blocks_read;
        // Only the first pass misses; every later pass is served by the SSD.
        prop_assert_eq!(hdd_reads, working_set);
        prop_assert_eq!(
            stats.class(RequestClass::Random).cache_hits,
            working_set * (repeats as u64 - 1)
        );
    }
}
