//! Concurrency tests for the shared storage service: sharded/unsharded
//! equivalence of the hybrid cache, and agreement between the threaded
//! driver, the deterministic slicer and plain single-query execution.

use hstorage_cache::{CacheStats, HybridCache, StorageConfig, StorageConfigKind, StorageSystem};
use hstorage_engine::{
    run_concurrent, run_threaded, Access, Catalog, ConcurrencyRegistry, ExecutorConfig, ObjectKind,
    OperatorKind, PlanNode, PlanTree, QueryExecutor, StreamSpec,
};
use hstorage_storage::{
    BlockAddr, BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
    TrimCommand,
};
use proptest::prelude::*;
use std::sync::Arc;

mod common;

// ---------------------------------------------------------------------------
// Sharded vs unsharded hybrid cache equivalence
// ---------------------------------------------------------------------------

enum Event {
    Req(ClassifiedRequest),
    Trim(TrimCommand),
}

/// A deterministic trace covering every request class the cache handles.
/// The working set stays far below the cache capacity (and below every
/// shard's slice of it), so allocation, hits, reallocation, trims and
/// write-buffer behaviour are identical whether eviction decisions are
/// global (1 shard) or shard-local (8 shards).
fn deterministic_trace() -> Vec<Event> {
    let mut events = Vec::new();
    let read = |start: u64, len: u64, class: RequestClass, policy: QosPolicy| {
        Event::Req(ClassifiedRequest::new(
            IoRequest::read(
                BlockRange::new(start, len),
                matches!(class, RequestClass::Sequential),
            ),
            class,
            policy,
        ))
    };
    let write = |start: u64, len: u64, class: RequestClass, policy: QosPolicy| {
        Event::Req(ClassifiedRequest::new(
            IoRequest::write(BlockRange::new(start, len), false),
            class,
            policy,
        ))
    };

    // Random reads at mixed priorities, twice (second pass hits).
    for round in 0..2 {
        for i in 0..400u64 {
            let prio = 2 + ((i + round) % 5) as u8;
            events.push(read(i, 1, RequestClass::Random, QosPolicy::priority(prio)));
        }
    }
    // Multi-block random reads spanning shards.
    for i in 0..50u64 {
        events.push(read(
            1_000 + i * 16,
            16,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
    }
    // A sequential scan over cached and uncached blocks (bypass + hits).
    events.push(read(
        0,
        600,
        RequestClass::Sequential,
        QosPolicy::NonCachingNonEviction,
    ));
    // Temporary data lifecycle: write, read back, demote, trim.
    events.push(write(
        5_000,
        200,
        RequestClass::TemporaryData,
        QosPolicy::priority(1),
    ));
    events.push(read(
        5_000,
        200,
        RequestClass::TemporaryData,
        QosPolicy::priority(1),
    ));
    events.push(read(
        5_000,
        100,
        RequestClass::TemporaryDataTrim,
        QosPolicy::NonCachingEviction,
    ));
    events.push(Event::Trim(TrimCommand::single(BlockRange::new(
        5_000u64, 200,
    ))));
    // Buffered updates: 40 blocks spread evenly over the 8 shard residues,
    // staying below both the global and every per-shard flush threshold.
    for i in 0..40u64 {
        events.push(write(
            8_000 + i,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
    }
    events
}

fn replay_on(cache: &HybridCache, events: &[Event]) -> CacheStats {
    for event in events {
        match event {
            Event::Req(req) => cache.submit(*req),
            Event::Trim(cmd) => cache.trim(cmd),
        }
    }
    cache.stats()
}

#[test]
fn sharded_and_unsharded_caches_agree_on_a_deterministic_trace() {
    let events = deterministic_trace();
    let unsharded = HybridCache::new(PolicyConfig::paper_default(), 4_096);
    let sharded = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
    assert_eq!(unsharded.shard_count(), 1);
    assert_eq!(sharded.shard_count(), 8);

    let s1 = replay_on(&unsharded, &events);
    let s8 = replay_on(&sharded, &events);

    // Aggregate statistics — class and priority counters, all cache
    // actions, resident blocks and even device traffic — are identical.
    assert_eq!(s1, s8);
    assert_eq!(unsharded.resident_blocks(), sharded.resident_blocks());
    assert_eq!(
        unsharded.write_buffer_resident(),
        sharded.write_buffer_resident()
    );
    // And the traces actually exercised the interesting paths.
    assert!(s1.totals().cache_hits > 0);
    assert!(s1.action(hstorage_cache::CacheAction::Trim) > 0);
    assert!(s1.action(hstorage_cache::CacheAction::ReAllocation) > 0);
    assert!(s1.action(hstorage_cache::CacheAction::WriteAllocation) > 0);
}

#[test]
fn sharded_and_unsharded_engines_agree_under_every_policy() {
    // The same contract as the semantic default: as long as the working
    // set fits every shard's capacity slice, lock striping is
    // observationally invisible no matter which replacement policy drives
    // the engine.
    let events = deterministic_trace();
    let migration = common::matrix_migration();
    for kind in common::matrix_kinds() {
        let unsharded = HybridCache::new(PolicyConfig::paper_default(), 4_096)
            .with_cache_policy(kind)
            .with_migration(migration);
        let sharded = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8)
            .with_cache_policy(kind)
            .with_migration(migration);
        let s1 = replay_on(&unsharded, &events);
        let s8 = replay_on(&sharded, &events);
        assert_eq!(s1, s8, "{kind}");
        assert_eq!(
            unsharded.resident_blocks(),
            sharded.resident_blocks(),
            "{kind}"
        );
        assert!(s1.totals().cache_hits > 0, "{kind}");
    }
}

#[test]
fn concurrent_threads_are_fully_accounted_under_every_policy() {
    // Four threads on disjoint address ranges: every policy must account
    // every access exactly once through the lock-striped engine.
    for kind in common::matrix_kinds() {
        let cache = HybridCache::with_shard_count(PolicyConfig::paper_default(), 8_192, 8)
            .with_cache_policy(kind)
            .with_migration(common::matrix_migration());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        cache.submit(ClassifiedRequest::new(
                            IoRequest::read(BlockRange::new(t * 100_000 + i, 1), false),
                            RequestClass::Random,
                            QosPolicy::priority(2 + (i % 5) as u8),
                        ));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.class(RequestClass::Random).accessed_blocks,
            4_000,
            "{kind}"
        );
        // Disjoint addresses, ample capacity: every block was admitted
        // (the semantic policy bypasses nothing at these priorities).
        assert_eq!(cache.resident_blocks(), 4_000, "{kind}");
    }
}

/// An arbitrary request whose address space stays far below the per-shard
/// capacity slice, so sharded and unsharded runs never diverge through
/// shard-local eviction. Write-buffer requests are exercised by the
/// deterministic test above (their flush threshold is intentionally
/// shard-local, so adversarial address clustering may flush one shard
/// early).
fn arb_bounded_request() -> impl Strategy<Value = ClassifiedRequest> {
    (0u64..400, 1u64..16, 0usize..4, any::<bool>()).prop_map(|(start, len, class, is_write)| {
        let (class, policy, sequential) = match class {
            0 => (
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
                true,
            ),
            1 => (RequestClass::Random, QosPolicy::priority(2), false),
            2 => (RequestClass::Random, QosPolicy::priority(5), false),
            _ => (RequestClass::TemporaryData, QosPolicy::priority(1), false),
        };
        let io = if is_write {
            IoRequest::write(BlockRange::new(start, len), sequential)
        } else {
            IoRequest::read(BlockRange::new(start, len), sequential)
        };
        ClassifiedRequest::new(io, class, policy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any trace whose working set fits every shard, the sharded cache
    /// is observationally identical to the unsharded one.
    #[test]
    fn sharded_cache_equivalence_holds_for_arbitrary_bounded_traces(
        requests in prop::collection::vec(arb_bounded_request(), 1..150),
        trim_start in 0u64..400,
        do_trim in any::<bool>(),
    ) {
        let unsharded = HybridCache::new(PolicyConfig::paper_default(), 4_096);
        let sharded = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
        for req in &requests {
            unsharded.submit(*req);
            sharded.submit(*req);
        }
        if do_trim {
            let cmd = TrimCommand::single(BlockRange::new(trim_start, 32));
            unsharded.trim(&cmd);
            sharded.trim(&cmd);
        }
        prop_assert_eq!(unsharded.stats(), sharded.stats());
        prop_assert_eq!(unsharded.resident_blocks(), sharded.resident_blocks());
    }

    /// The same striping-invisibility property holds for the engine under
    /// every non-default replacement policy.
    #[test]
    fn sharded_engine_equivalence_holds_for_every_policy(
        requests in prop::collection::vec(arb_bounded_request(), 1..100),
    ) {
        for kind in common::matrix_kinds() {
            let unsharded = HybridCache::new(PolicyConfig::paper_default(), 4_096)
                .with_cache_policy(kind)
                .with_migration(common::matrix_migration());
            let sharded = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8)
                .with_cache_policy(kind)
                .with_migration(common::matrix_migration());
            for req in &requests {
                unsharded.submit(*req);
                sharded.submit(*req);
            }
            prop_assert_eq!(unsharded.stats(), sharded.stats(), "{}", kind);
            prop_assert_eq!(unsharded.resident_blocks(), sharded.resident_blocks());
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded driver vs deterministic slicer vs plain execution
// ---------------------------------------------------------------------------

fn catalog() -> (
    Catalog,
    hstorage_engine::ObjectId,
    hstorage_engine::ObjectId,
) {
    let mut cat = Catalog::new();
    let table = cat.register("orders", ObjectKind::Table, BlockRange::new(0u64, 2_000));
    let index = cat.register(
        "idx_orders",
        ObjectKind::Index,
        BlockRange::new(2_000u64, 200),
    );
    cat.set_temp_region(BlockRange::new(50_000u64, 20_000));
    (cat, table, index)
}

fn seq_plan(table: hstorage_engine::ObjectId) -> PlanTree {
    PlanTree::new(
        "seq",
        PlanNode::node(
            OperatorKind::Aggregate,
            Access::None,
            vec![PlanNode::leaf(
                OperatorKind::SeqScan,
                Access::SeqScan { table, passes: 1 },
            )],
        ),
    )
}

fn random_plan(
    table: hstorage_engine::ObjectId,
    index: hstorage_engine::ObjectId,
    lookups: u64,
) -> PlanTree {
    PlanTree::new(
        "rand",
        PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index,
                table,
                lookups,
                index_hot_fraction: 0.5,
                table_hot_fraction: 0.2,
            },
        ),
    )
}

fn spill_plan() -> PlanTree {
    PlanTree::new(
        "spill",
        PlanNode::leaf(
            OperatorKind::Hash,
            Access::TempSpill {
                blocks: 128,
                read_passes: 1,
            },
        ),
    )
}

/// With the DBMS buffer pool disabled, every random access reaches storage
/// no matter how streams interleave, so the block counts of the threaded
/// driver must equal those of the deterministic slicer exactly.
fn no_pool_config() -> ExecutorConfig {
    ExecutorConfig {
        buffer_pool_blocks: 0,
        ..ExecutorConfig::default()
    }
}

fn three_streams(
    table: hstorage_engine::ObjectId,
    index: hstorage_engine::ObjectId,
) -> Vec<StreamSpec> {
    vec![
        StreamSpec {
            name: "s1".into(),
            queries: vec![random_plan(table, index, 600), seq_plan(table)],
        },
        StreamSpec {
            name: "s2".into(),
            queries: vec![seq_plan(table), spill_plan()],
        },
        StreamSpec {
            name: "s3".into(),
            queries: vec![random_plan(table, index, 300)],
        },
    ]
}

#[test]
fn threaded_driver_serves_the_same_blocks_as_the_deterministic_slicer() {
    let (cat, table, index) = catalog();
    let streams = three_streams(table, index);
    let policy = PolicyConfig::paper_default();

    // Deterministic slicer on its own storage instance.
    let mut slicer_cat = cat.clone();
    let mut exec = QueryExecutor::new(no_pool_config(), policy);
    let slicer_storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
    let sliced = run_concurrent(
        &mut exec,
        &streams,
        &mut slicer_cat,
        slicer_storage.as_ref(),
        16,
    );

    // Threaded driver against one shared Arc<HybridCache>.
    let shared: Arc<dyn StorageSystem> = Arc::new(HybridCache::with_shard_count(policy, 5_000, 8));
    let registry = ConcurrencyRegistry::new();
    let threaded = run_threaded(no_pool_config(), policy, &registry, &streams, &cat, &shared);

    assert_eq!(sliced.len(), 5);
    assert_eq!(threaded.len(), 5);
    let total = |qs: &[hstorage_engine::CompletedQuery]| -> u64 {
        qs.iter().map(|q| q.stats.total_blocks()).sum()
    };
    assert_eq!(total(&threaded), total(&sliced));
    // Per-class totals agree too.
    for class in RequestClass::all() {
        let sliced_blocks: u64 = sliced.iter().map(|q| q.stats.blocks(class)).sum();
        let threaded_blocks: u64 = threaded.iter().map(|q| q.stats.blocks(class)).sum();
        assert_eq!(sliced_blocks, threaded_blocks, "{class:?}");
    }
    // The shared cache saw exactly the threaded drivers' block total, minus
    // the TempDelete blocks, which reach storage as TRIM commands rather
    // than classified requests.
    let trim_blocks: u64 = threaded
        .iter()
        .map(|q| q.stats.blocks(RequestClass::TemporaryDataTrim))
        .sum();
    assert_eq!(
        shared.stats().totals().accessed_blocks,
        total(&threaded) - trim_blocks
    );
}

#[test]
fn threaded_driver_with_one_stream_matches_run_query_exactly() {
    let (cat, table, index) = catalog();
    let policy = PolicyConfig::paper_default();
    let plans = vec![
        random_plan(table, index, 500),
        spill_plan(),
        seq_plan(table),
    ];
    let config = ExecutorConfig {
        buffer_pool_blocks: 256,
        ..ExecutorConfig::default()
    };

    let mut solo_cat = cat.clone();
    let mut exec = QueryExecutor::new(config, policy);
    let solo_storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
    let solo: Vec<_> = plans
        .iter()
        .map(|p| exec.run_query(p, &mut solo_cat, solo_storage.as_ref()))
        .collect();

    let shared: Arc<dyn StorageSystem> =
        StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build_shared();
    let registry = ConcurrencyRegistry::new();
    let streams = vec![StreamSpec {
        name: "only".into(),
        queries: plans,
    }];
    let threaded = run_threaded(config, policy, &registry, &streams, &cat, &shared);

    assert_eq!(threaded.len(), solo.len());
    for (t, s) in threaded.iter().zip(&solo) {
        assert_eq!(t.stats.total_blocks(), s.total_blocks());
        assert_eq!(t.stats.total_requests(), s.total_requests());
        assert_eq!(t.stats.buffer_pool_hits, s.buffer_pool_hits);
        for class in RequestClass::all() {
            assert_eq!(t.stats.blocks(class), s.blocks(class), "{class:?}");
        }
    }
    // Identical request streams produce identical storage-side state.
    assert_eq!(shared.resident_blocks(), solo_storage.resident_blocks());
    assert_eq!(shared.stats(), solo_storage.stats());
}

#[test]
fn concurrent_spilling_streams_use_disjoint_temp_blocks() {
    // Each threaded stream gets a disjoint slice of the temp region, so two
    // streams spilling at the same time never alias each other's temporary
    // blocks: every temp read hits the block its own stream wrote, and every
    // stream's end-of-lifetime TRIM removes exactly its own 128 blocks.
    let (cat, _, _) = catalog();
    let policy = PolicyConfig::paper_default();
    let streams = vec![
        StreamSpec {
            name: "spill-a".into(),
            queries: vec![spill_plan()],
        },
        StreamSpec {
            name: "spill-b".into(),
            queries: vec![spill_plan()],
        },
    ];
    let shared: Arc<dyn StorageSystem> = Arc::new(HybridCache::with_shard_count(policy, 5_000, 8));
    let registry = ConcurrencyRegistry::new();
    let completed = run_threaded(no_pool_config(), policy, &registry, &streams, &cat, &shared);
    assert_eq!(completed.len(), 2);

    let stats = shared.stats();
    // 128 written + 128 read back per stream; all reads served from cache.
    assert_eq!(
        stats.class(RequestClass::TemporaryData).accessed_blocks,
        512
    );
    assert_eq!(stats.class(RequestClass::TemporaryData).cache_hits, 256);
    // Both lifetimes ended in a TRIM of exactly their own blocks, and no
    // temporary data survives.
    assert_eq!(stats.action(hstorage_cache::CacheAction::Trim), 256);
    assert_eq!(shared.resident_blocks(), 0);
}

#[test]
fn concurrent_threads_never_lose_blocks_on_a_shared_cache() {
    // Raw storage-level stress: four threads hammer one sharded cache with
    // disjoint block ranges; every access must be accounted exactly once.
    let cache = Arc::new(HybridCache::with_shard_count(
        PolicyConfig::paper_default(),
        8_192,
        8,
    ));
    let per_thread = 2_000u64;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for i in 0..per_thread {
                    let addr = t * 100_000 + i;
                    cache.submit(ClassifiedRequest::new(
                        IoRequest::read(BlockRange::new(addr, 1), false),
                        RequestClass::Random,
                        QosPolicy::priority(2 + (i % 5) as u8),
                    ));
                }
                cache.trim(&TrimCommand::single(BlockRange::new(
                    t * 100_000,
                    per_thread / 2,
                )));
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.class(RequestClass::Random).accessed_blocks,
        4 * per_thread
    );
    assert_eq!(
        stats.action(hstorage_cache::CacheAction::Trim),
        4 * per_thread / 2
    );
    assert_eq!(cache.resident_blocks(), 4 * per_thread / 2);
    // BlockAddr sanity for the clippy-clean import.
    assert!(cache.contains_block(BlockAddr(per_thread - 1)));
}
