//! Batch-vs-sequential equivalence of the vectored submission path.
//!
//! `StorageSystem::submit_batch` is contractually equivalent to submitting
//! the same requests one at a time: identical cache state (resident blocks,
//! per-class/per-priority counters, cache actions) for every storage
//! configuration. At device queue depth 1 the equivalence extends to the
//! *devices* — identical transfer counts and simulated service time; at
//! queue depth > 1 adjacent transfers merge, so only the per-device block
//! totals (the logical traffic) are preserved while request counts shrink
//! and service time drops.

use hstorage_cache::{CacheStats, StorageConfig, StorageConfigKind, StorageSystem};
use hstorage_storage::{BlockRange, ClassifiedRequest, IoRequest, QosPolicy, RequestClass};
use proptest::prelude::*;

mod common;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn read(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::read(
            BlockRange::new(start, len),
            matches!(class, RequestClass::Sequential),
        ),
        class,
        policy,
    )
}

fn write(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::write(BlockRange::new(start, len), false),
        class,
        policy,
    )
}

/// A deterministic trace covering every request class, multi-block requests
/// spanning shards, re-reads that hit, priority reallocation, bypasses and
/// buffered updates (which exercise the run-splitting of the batch path).
fn deterministic_trace() -> Vec<ClassifiedRequest> {
    let mut reqs = Vec::new();
    for round in 0..2u64 {
        for i in 0..200u64 {
            let prio = 2 + ((i + round) % 5) as u8;
            reqs.push(read(i, 1, RequestClass::Random, QosPolicy::priority(prio)));
        }
    }
    for i in 0..30u64 {
        reqs.push(read(
            1_000 + i * 16,
            16,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
    }
    reqs.push(read(
        0,
        400,
        RequestClass::Sequential,
        QosPolicy::NonCachingNonEviction,
    ));
    reqs.push(write(
        5_000,
        100,
        RequestClass::TemporaryData,
        QosPolicy::priority(1),
    ));
    reqs.push(read(
        5_000,
        100,
        RequestClass::TemporaryData,
        QosPolicy::priority(1),
    ));
    reqs.push(read(
        5_000,
        50,
        RequestClass::TemporaryDataTrim,
        QosPolicy::NonCachingEviction,
    ));
    for i in 0..30u64 {
        reqs.push(write(
            8_000 + i,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
    }
    reqs
}

/// The four storage configurations, the sharded hybrid variant, and the
/// cache engine under every matrix policy (unsharded *and* sharded) —
/// every policy must satisfy the same batch-vs-sequential contract as the
/// semantic default. The CI policy-matrix job focuses this list on one
/// policy via the `HSTORAGE_POLICY` env var (see `common::matrix_kinds`).
fn configurations() -> Vec<(String, StorageConfig)> {
    // Attached to every config: the non-engine kinds ignore it, and the
    // engine kinds must stay batch-vs-sequential equivalent with heat
    // tracking riding along (the CI migration leg sets it to `on`).
    let migration = common::matrix_migration();
    let base = move |kind| StorageConfig::new(kind, 4_096).with_migration(migration);
    let engine = |policy| base(StorageConfigKind::HStorageDb).with_cache_policy(policy);
    let mut configs = vec![
        ("hdd-only".to_string(), base(StorageConfigKind::HddOnly)),
        ("ssd-only".to_string(), base(StorageConfigKind::SsdOnly)),
        ("lru".to_string(), base(StorageConfigKind::Lru)),
        (
            "hybrid-unsharded".to_string(),
            base(StorageConfigKind::HStorageDb),
        ),
        (
            "hybrid-sharded".to_string(),
            base(StorageConfigKind::HStorageDb).with_shards(8),
        ),
    ];
    for kind in common::matrix_kinds() {
        // The semantic default is already covered byte-for-byte by the
        // hybrid-unsharded / hybrid-sharded entries above.
        if kind == hstorage_cache::CachePolicyKind::SemanticPriority {
            continue;
        }
        configs.push((format!("engine-{kind}"), engine(kind)));
        configs.push((
            format!("engine-{kind}-sharded"),
            engine(kind).with_shards(8),
        ));
    }
    configs
}

/// Replays `reqs` one at a time on a fresh build of `config`.
fn run_sequential(config: &StorageConfig, reqs: &[ClassifiedRequest]) -> Box<dyn StorageSystem> {
    let sys = config.build();
    for req in reqs {
        sys.submit(*req);
    }
    sys
}

/// Replays `reqs` in `batch`-sized vectored submissions on a fresh build.
fn run_batched(
    config: &StorageConfig,
    reqs: &[ClassifiedRequest],
    batch: usize,
) -> Box<dyn StorageSystem> {
    let sys = config.build();
    for chunk in reqs.chunks(batch) {
        sys.submit_batch(chunk.to_vec());
    }
    sys
}

/// Strips the device sub-stats, leaving only cache-level state.
fn cache_level(mut stats: CacheStats) -> CacheStats {
    stats.ssd = None;
    stats.hdd = None;
    stats
}

// ---------------------------------------------------------------------------
// Deterministic equivalence
// ---------------------------------------------------------------------------

#[test]
fn batched_submission_is_fully_identical_at_queue_depth_one() {
    let trace = deterministic_trace();
    for (name, config) in configurations() {
        for batch in [2usize, 7, 64, trace.len()] {
            let sequential = run_sequential(&config, &trace);
            let batched = run_batched(&config, &trace, batch);
            // Queue depth 1 (the default): everything matches, including
            // device transfer counts and the simulated clock.
            assert_eq!(batched.stats(), sequential.stats(), "{name} batch={batch}");
            assert_eq!(
                batched.resident_blocks(),
                sequential.resident_blocks(),
                "{name} batch={batch}"
            );
            assert_eq!(batched.now(), sequential.now(), "{name} batch={batch}");
        }
    }
}

#[test]
fn batched_submission_preserves_cache_state_under_queue_merging() {
    let trace = deterministic_trace();
    for (name, config) in configurations() {
        let config = config.with_queue_depth(8);
        let sequential = run_sequential(&config, &trace);
        let batched = run_batched(&config, &trace, 64);
        let seq_stats = sequential.stats();
        let batch_stats = batched.stats();
        // Cache-level behaviour — hits, allocations, evictions, bypasses,
        // per-class and per-priority accounting — is untouched by merging.
        assert_eq!(
            cache_level(batch_stats.clone()),
            cache_level(seq_stats.clone()),
            "{name}"
        );
        assert_eq!(
            batched.resident_blocks(),
            sequential.resident_blocks(),
            "{name}"
        );
        // The logical device traffic (block totals per device/direction) is
        // identical; merging may only reduce transfer counts and time.
        for (get, label) in [(&batch_stats.ssd, "ssd"), (&batch_stats.hdd, "hdd")] {
            let seq_dev = match label {
                "ssd" => &seq_stats.ssd,
                _ => &seq_stats.hdd,
            };
            match (get, seq_dev) {
                (Some(b), Some(s)) => {
                    assert_eq!(b.blocks_read, s.blocks_read, "{name} {label}");
                    assert_eq!(b.blocks_written, s.blocks_written, "{name} {label}");
                    assert!(
                        b.read_requests + b.write_requests <= s.read_requests + s.write_requests,
                        "{name} {label}: merging must not add transfers"
                    );
                }
                (None, None) => {}
                _ => panic!("{name} {label}: device stats presence differs"),
            }
        }
        assert!(
            batched.now() <= sequential.now(),
            "{name}: merging must not slow the device down"
        );
    }
}

#[test]
fn hybrid_queue_merging_actually_merges_scan_transfers() {
    // Guard against the merged path silently degenerating to the loop: a
    // pure scan batch at queue depth 8 must produce fewer, larger HDD
    // transfers and strictly less simulated time.
    let config = StorageConfig::new(StorageConfigKind::HStorageDb, 1_024).with_queue_depth(8);
    let scan: Vec<ClassifiedRequest> = (0..64u64)
        .map(|i| {
            read(
                i,
                1,
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
            )
        })
        .collect();
    let sequential = run_sequential(&config, &scan);
    let batched = run_batched(&config, &scan, 64);
    let b = batched.stats().hdd.expect("hybrid has an HDD");
    let s = sequential.stats().hdd.expect("hybrid has an HDD");
    assert_eq!(b.blocks_read, 64);
    assert_eq!(b.read_requests, 8, "64 adjacent reads at depth 8");
    assert_eq!(s.read_requests, 64);
    assert!(batched.now() < sequential.now());
}

// ---------------------------------------------------------------------------
// Property-based equivalence
// ---------------------------------------------------------------------------

/// An arbitrary request over a bounded address space (so sharded and
/// unsharded hybrids stay within every shard's capacity slice), including
/// write-buffer updates to exercise the batch run-splitting.
fn arb_request() -> impl Strategy<Value = ClassifiedRequest> {
    (0u64..400, 1u64..16, 0usize..5, any::<bool>()).prop_map(|(start, len, class, is_write)| {
        let (class, policy, sequential) = match class {
            0 => (
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
                true,
            ),
            1 => (RequestClass::Random, QosPolicy::priority(2), false),
            2 => (RequestClass::Random, QosPolicy::priority(5), false),
            3 => (RequestClass::TemporaryData, QosPolicy::priority(1), false),
            _ => (RequestClass::Update, QosPolicy::WriteBuffer, false),
        };
        let io = if is_write {
            IoRequest::write(BlockRange::new(start, len), sequential)
        } else {
            IoRequest::read(BlockRange::new(start, len), sequential)
        };
        ClassifiedRequest::new(io, class, policy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any bounded trace and any batch size, vectored submission at the
    /// default queue depth is observationally identical to per-request
    /// submission for all four storage configurations (and the sharded
    /// hybrid).
    #[test]
    fn batch_equivalence_holds_for_arbitrary_traces(
        reqs in prop::collection::vec(arb_request(), 1..120),
        batch in 1usize..40,
    ) {
        for (name, config) in configurations() {
            let sequential = run_sequential(&config, &reqs);
            let batched = run_batched(&config, &reqs, batch);
            prop_assert_eq!(batched.stats(), sequential.stats(), "{}", name);
            prop_assert_eq!(
                batched.resident_blocks(),
                sequential.resident_blocks(),
                "{}", name
            );
            prop_assert_eq!(batched.now(), sequential.now(), "{}", name);
        }
    }

    /// Queue merging never changes cache-level state or logical block
    /// totals, on any trace.
    #[test]
    fn queue_merging_preserves_cache_state_for_arbitrary_traces(
        reqs in prop::collection::vec(arb_request(), 1..120),
        batch in 2usize..40,
    ) {
        let config = StorageConfig::new(StorageConfigKind::HStorageDb, 4_096)
            .with_shards(8)
            .with_queue_depth(16);
        let sequential = run_sequential(&config, &reqs);
        let batched = run_batched(&config, &reqs, batch);
        prop_assert_eq!(
            cache_level(batched.stats()),
            cache_level(sequential.stats())
        );
        prop_assert_eq!(batched.resident_blocks(), sequential.resident_blocks());
        let b = batched.stats().hdd.expect("hybrid has an HDD");
        let s = sequential.stats().hdd.expect("hybrid has an HDD");
        prop_assert_eq!(b.blocks_read, s.blocks_read);
        prop_assert_eq!(b.blocks_written, s.blocks_written);
    }
}
