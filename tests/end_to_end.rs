//! Cross-crate integration tests: drive the full stack (TPC-H plans →
//! policy assignment → hybrid cache → simulated devices) and check the
//! paper's qualitative claims end to end.

use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::{CacheAction, StorageConfigKind};
use hstorage_storage::RequestClass;
use hstorage_tpch::power::power_test_sequence;
use hstorage_tpch::{QueryId, TpchScale};

fn scale() -> TpchScale {
    TpchScale::new(0.02)
}

#[test]
fn sequential_queries_do_not_pollute_the_hstorage_cache() {
    let mut system = TpchSystem::new(SystemConfig::single_query(
        scale(),
        StorageConfigKind::HStorageDb,
    ));
    for q in [1u8, 5, 11, 19] {
        system.run(QueryId::Q(q));
    }
    // None of these queries issues random or temporary requests that would
    // legitimately claim cache space, so nothing may be resident.
    let stats = system.storage_stats();
    assert_eq!(stats.action(CacheAction::ReadAllocation), 0);
    assert!(system.cached_blocks() <= stats.action(CacheAction::WriteAllocation));
}

#[test]
fn the_same_workload_pollutes_an_lru_cache() {
    let mut system = TpchSystem::new(SystemConfig::single_query(scale(), StorageConfigKind::Lru));
    system.run(QueryId::Q(1));
    assert!(
        system.cached_blocks() > 0,
        "LRU admits sequential scan data"
    );
}

#[test]
fn hstorage_matches_hdd_only_on_sequential_work_and_beats_it_on_random_work() {
    let mut hdd = TpchSystem::new(SystemConfig::single_query(
        scale(),
        StorageConfigKind::HddOnly,
    ));
    let mut hst = TpchSystem::new(SystemConfig::single_query(
        scale(),
        StorageConfigKind::HStorageDb,
    ));

    let hdd_q1 = hdd.run(QueryId::Q(1)).elapsed;
    let hst_q1 = hst.run(QueryId::Q(1)).elapsed;
    let ratio = hst_q1.as_secs_f64() / hdd_q1.as_secs_f64();
    assert!(ratio < 1.05, "hStorage-DB overhead on Q1: {ratio}");

    let hdd_q9 = hdd.run(QueryId::Q(9)).elapsed;
    let hst_q9 = hst.run(QueryId::Q(9)).elapsed;
    assert!(
        hst_q9.as_secs_f64() < hdd_q9.as_secs_f64() * 0.8,
        "hStorage-DB should clearly beat HDD-only on Q9"
    );
}

#[test]
fn temporary_data_is_evicted_at_end_of_lifetime() {
    let mut system = TpchSystem::new(SystemConfig::single_query(
        scale(),
        StorageConfigKind::HStorageDb,
    ));
    system.run(QueryId::Q(18));
    let stats = system.storage_stats();
    // Everything written as temporary data was eventually trimmed.
    assert!(stats.action(CacheAction::Trim) > 0);
    let temp = stats.class(RequestClass::TemporaryData);
    assert!(temp.accessed_blocks > 0);
    // The cache holds no leftover temporary blocks: whatever remains
    // resident was allocated by the write buffer or random requests.
    assert!(system.cached_blocks() < stats.action(CacheAction::Trim) + 64);
}

#[test]
fn power_test_ordering_holds_across_configurations() {
    let sequence = power_test_sequence();
    let mut totals = Vec::new();
    for kind in [
        StorageConfigKind::HddOnly,
        StorageConfigKind::HStorageDb,
        StorageConfigKind::SsdOnly,
    ] {
        let mut system = TpchSystem::new(SystemConfig::single_query(scale(), kind));
        let total: f64 = system
            .run_sequence(&sequence)
            .iter()
            .map(|s| s.elapsed.as_secs_f64())
            .sum();
        totals.push((kind.label(), total));
    }
    assert!(totals[2].1 < totals[1].1, "SSD-only beats hStorage-DB");
    assert!(totals[1].1 < totals[0].1, "hStorage-DB beats HDD-only");
}

#[test]
fn refresh_functions_are_absorbed_by_the_write_buffer() {
    let mut system = TpchSystem::new(SystemConfig::single_query(
        scale(),
        StorageConfigKind::HStorageDb,
    ));
    let stats = system.run(QueryId::Rf1);
    assert!(stats.requests(RequestClass::Update) > 0);
    let storage = system.storage_stats();
    assert!(storage.action(CacheAction::WriteAllocation) > 0);
    // Updates never bypass straight to the HDD under hStorage-DB.
    assert_eq!(
        storage.class(RequestClass::Update).accessed_blocks,
        stats.blocks(RequestClass::Update)
    );
}

#[test]
fn request_classification_is_storage_independent() {
    // The DBMS classifies requests identically no matter which storage
    // configuration serves them (the tag is simply ignored by legacy ones).
    let mut per_config = Vec::new();
    for kind in StorageConfigKind::all() {
        let mut system = TpchSystem::new(SystemConfig::single_query(scale(), kind));
        let stats = system.run(QueryId::Q(21));
        per_config.push((
            stats.blocks(RequestClass::Sequential),
            stats.blocks(RequestClass::TemporaryData),
        ));
    }
    // Sequential and temporary volumes are deterministic and identical.
    for w in per_config.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}
