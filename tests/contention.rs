//! Contention suite for the lock-light cache hot path: the atomic
//! statistics must aggregate exactly like the old locked `CacheStats`
//! merge (no counter lost or double-counted, under any interleaving), and
//! the optimistic repeat-hit engine must be observably identical to the
//! fully locked one.
//!
//! The stress tests read `HSTORAGE_STRESS_THREADS` (default 8) so the CI
//! contention job can re-run them at 16 and 32 threads.

use hstorage_cache::{AtomicCacheStats, CacheAction, CacheStats, HybridCache, StorageSystem};
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
};
use proptest::prelude::*;
use std::sync::Arc;

mod common;

/// Thread count of the stress tests: `HSTORAGE_STRESS_THREADS`, or 8.
fn stress_threads() -> usize {
    std::env::var("HSTORAGE_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

// ---------------------------------------------------------------------------
// Atomic statistics vs the locked CacheStats ground truth
// ---------------------------------------------------------------------------

/// One statistics-recording operation, applicable to both implementations.
#[derive(Debug, Clone, Copy)]
enum StatOp {
    Class {
        class: RequestClass,
        blocks: u64,
        hits: u64,
    },
    Priority {
        prio: u8,
        blocks: u64,
        hits: u64,
    },
    Action {
        action: CacheAction,
        blocks: u64,
    },
    LockAcquisition,
    FastPathHit,
}

fn apply_atomic(stats: &AtomicCacheStats, op: StatOp) {
    match op {
        StatOp::Class {
            class,
            blocks,
            hits,
        } => stats.record_class(class, blocks, hits),
        StatOp::Priority { prio, blocks, hits } => stats.record_priority(prio, blocks, hits),
        StatOp::Action { action, blocks } => stats.record_action(action, blocks),
        StatOp::LockAcquisition => stats.record_lock_acquisition(),
        StatOp::FastPathHit => stats.record_fast_path_hit(),
    }
}

fn apply_locked(stats: &mut CacheStats, op: StatOp) {
    match op {
        StatOp::Class {
            class,
            blocks,
            hits,
        } => stats.record_class(class, blocks, hits),
        StatOp::Priority { prio, blocks, hits } => stats.record_priority(prio, blocks, hits),
        StatOp::Action { action, blocks } => stats.record_action(action, blocks),
        StatOp::LockAcquisition => stats.contention.lock_acquisitions += 1,
        StatOp::FastPathHit => stats.contention.fast_path_hits += 1,
    }
}

/// An arbitrary recording operation. Zero-amount records are generated on
/// purpose: they must still create the per-key map entries, exactly like
/// the locked implementation.
fn arb_stat_op() -> impl Strategy<Value = StatOp> {
    (0usize..5, 0usize..5, any::<u8>(), 0u64..50, 0u64..50).prop_map(
        |(kind, class_i, prio, blocks, hits)| {
            let hits = hits.min(blocks);
            match kind {
                0 => StatOp::Class {
                    class: RequestClass::all()[class_i],
                    blocks,
                    hits,
                },
                1 => StatOp::Priority { prio, blocks, hits },
                2 => StatOp::Action {
                    action: CacheAction::ALL[(class_i + prio as usize) % CacheAction::ALL.len()],
                    blocks,
                },
                3 => StatOp::LockAcquisition,
                _ => StatOp::FastPathHit,
            }
        },
    )
}

/// A deterministic operation stream, disjoint per `(thread, index)` — the
/// same stream a stress thread applies concurrently and the ground-truth
/// replay applies sequentially.
fn stress_op(thread: usize, i: u64) -> StatOp {
    let mut x = (thread as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    x ^= x >> 29;
    let blocks = (x >> 3) % 16;
    let hits = (x >> 13) % (blocks + 1);
    match x % 5 {
        0 => StatOp::Class {
            class: RequestClass::all()[(x >> 23) as usize % 5],
            blocks,
            hits,
        },
        1 => StatOp::Priority {
            prio: (x >> 23) as u8,
            blocks,
            hits,
        },
        2 => StatOp::Action {
            action: CacheAction::ALL[(x >> 23) as usize % CacheAction::ALL.len()],
            blocks,
        },
        3 => StatOp::LockAcquisition,
        _ => StatOp::FastPathHit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-shard atomic recording plus order-independent snapshot merging
    /// reproduces the locked `CacheStats` accounting exactly — per-shard
    /// and in the aggregate, key presence included.
    #[test]
    fn atomic_stats_aggregation_matches_locked_merge(
        ops in prop::collection::vec((0usize..4, arb_stat_op()), 1..200),
    ) {
        let shards: Vec<AtomicCacheStats> =
            (0..4).map(|_| AtomicCacheStats::new()).collect();
        let mut ground: Vec<CacheStats> = vec![CacheStats::new(); 4];
        for &(shard, op) in &ops {
            apply_atomic(&shards[shard], op);
            apply_locked(&mut ground[shard], op);
        }
        for (atomic, locked) in shards.iter().zip(&ground) {
            let snap = atomic.snapshot();
            prop_assert_eq!(&snap, locked);
            prop_assert_eq!(snap.contention, locked.contention);
        }
        // Aggregation across shards commutes with the per-shard recording:
        // merging snapshots equals merging the locked ground truths.
        let mut from_atomic = CacheStats::new();
        let mut from_locked = CacheStats::new();
        for (atomic, locked) in shards.iter().zip(&ground) {
            from_atomic.merge(&atomic.snapshot());
            from_locked.merge(locked);
        }
        prop_assert_eq!(&from_atomic, &from_locked);
        prop_assert_eq!(from_atomic.contention, from_locked.contention);
    }
}

/// N threads hammer one shared `AtomicCacheStats` with disjoint
/// deterministic operation streams; the final snapshot must equal a
/// single-threaded locked replay of every stream — any lost or
/// double-counted increment shows up as a counter mismatch.
#[test]
fn concurrent_stats_recording_loses_no_counter() {
    const OPS_PER_THREAD: u64 = 20_000;
    let threads = stress_threads();
    let stats = Arc::new(AtomicCacheStats::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let stats = Arc::clone(&stats);
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    apply_atomic(&stats, stress_op(t, i));
                }
            });
        }
    });
    let mut ground = CacheStats::new();
    for t in 0..threads {
        for i in 0..OPS_PER_THREAD {
            apply_locked(&mut ground, stress_op(t, i));
        }
    }
    let snap = stats.snapshot();
    assert_eq!(snap, ground);
    assert_eq!(snap.contention, ground.contention);
}

// ---------------------------------------------------------------------------
// Optimistic engine vs fully locked engine
// ---------------------------------------------------------------------------

/// An arbitrary classified request over a bounded address space, biased
/// toward single-block reads (the shape the fast path serves).
fn arb_request() -> impl Strategy<Value = ClassifiedRequest> {
    (0u64..600, 1u64..4, 0usize..5, any::<bool>()).prop_map(|(start, len, class, write)| {
        let (class, policy, sequential) = match class {
            0 => (
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
                true,
            ),
            1 => (RequestClass::Random, QosPolicy::priority(2), false),
            2 => (RequestClass::Random, QosPolicy::priority(5), false),
            3 => (RequestClass::TemporaryData, QosPolicy::priority(1), true),
            _ => (RequestClass::Update, QosPolicy::WriteBuffer, false),
        };
        let io = if write {
            IoRequest::write(BlockRange::new(start, len), sequential)
        } else {
            IoRequest::read(BlockRange::new(start, len), sequential)
        };
        ClassifiedRequest::new(io, class, policy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimistic engine is observably identical to the fully locked
    /// one on arbitrary traces (each request submitted 1–3 times in a row
    /// so repeat hits actually occur), for every cache policy in the CI
    /// matrix.
    #[test]
    fn optimistic_engine_matches_locked_engine(
        trace in prop::collection::vec((arb_request(), 1usize..4), 1..120),
    ) {
        for kind in common::matrix_kinds() {
            let build = || {
                HybridCache::with_shard_count(PolicyConfig::paper_default(), 256, 8)
                    .with_cache_policy(kind)
                    .with_migration(common::matrix_migration())
            };
            let optimistic = build();
            let locked = build().with_optimistic_reads(false);
            for &(req, repeats) in &trace {
                for _ in 0..repeats {
                    optimistic.submit(req);
                    locked.submit(req);
                }
            }
            prop_assert_eq!(optimistic.stats(), locked.stats(), "{}", kind);
            prop_assert_eq!(optimistic.now(), locked.now(), "{}", kind);
            prop_assert_eq!(
                optimistic.resident_blocks(),
                locked.resident_blocks(),
                "{}",
                kind
            );
            prop_assert_eq!(locked.stats().contention.fast_path_hits, 0, "{}", kind);
        }
    }
}

/// N threads repeat-read disjoint resident block slices of one shared
/// engine. Every access is a cache hit, so the logical statistics and the
/// simulated clock are interleaving-independent — they must equal a
/// single-threaded replay on a twin engine (run with the fast path off,
/// proving the concurrent lock-free accounting against the fully locked
/// ground truth).
#[test]
fn contended_hot_reads_lose_no_counter() {
    const BLOCKS_PER_THREAD: u64 = 16;
    const REPEATS: u64 = 64;
    let threads = stress_threads();
    let capacity = 2 * threads as u64 * BLOCKS_PER_THREAD;
    let read = |lbn: u64| {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(lbn, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    };
    let build = || HybridCache::with_shard_count(PolicyConfig::paper_default(), capacity, 8);
    let concurrent = build();
    let twin = build().with_optimistic_reads(false);
    // Warm every thread's slice into residency on both engines.
    for t in 0..threads as u64 {
        for b in 0..BLOCKS_PER_THREAD {
            concurrent.submit(read(t * BLOCKS_PER_THREAD + b));
            twin.submit(read(t * BLOCKS_PER_THREAD + b));
        }
    }
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let concurrent = &concurrent;
            s.spawn(move || {
                for b in 0..BLOCKS_PER_THREAD {
                    for _ in 0..REPEATS {
                        concurrent.submit(read(t * BLOCKS_PER_THREAD + b));
                    }
                }
            });
        }
    });
    for t in 0..threads as u64 {
        for b in 0..BLOCKS_PER_THREAD {
            for _ in 0..REPEATS {
                twin.submit(read(t * BLOCKS_PER_THREAD + b));
            }
        }
    }
    assert_eq!(concurrent.stats(), twin.stats());
    assert_eq!(concurrent.now(), twin.now());
    assert_eq!(concurrent.resident_blocks(), twin.resident_blocks());
    // The diagnostic counters prove which path ran: the concurrent engine
    // served repeats lock-free, the locked twin never did.
    assert!(concurrent.stats().contention.fast_path_hits > 0);
    assert_eq!(twin.stats().contention.fast_path_hits, 0);
    assert!(twin.stats().contention.lock_acquisitions > 0);
}
