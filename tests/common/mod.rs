//! Helpers shared by the integration suites.

use hstorage_cache::{CachePolicyKind, MigrationConfig};

/// Env var the CI policy matrix sets to focus the equivalence suites on a
/// single replacement policy (one of [`CachePolicyKind::label`]'s values:
/// `semantic-priority`, `lru`, `cflru`, `2q`, `arc`, `per-stream`).
pub const POLICY_ENV: &str = "HSTORAGE_POLICY";

/// The cache policies the equivalence suites run against: the single kind
/// named by [`POLICY_ENV`] when it is set (the CI policy-matrix job), or
/// every selectable kind otherwise (local `cargo test`). An unknown label
/// panics so a matrix typo fails the job instead of silently testing the
/// default.
pub fn matrix_kinds() -> Vec<CachePolicyKind> {
    match std::env::var(POLICY_ENV) {
        Ok(label) => {
            let kind = CachePolicyKind::from_label(&label).unwrap_or_else(|| {
                panic!(
                    "{POLICY_ENV}={label:?} names no cache policy; expected one of {}",
                    CachePolicyKind::all()
                        .iter()
                        .map(|k| k.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            });
            vec![kind]
        }
        Err(_) => CachePolicyKind::all().to_vec(),
    }
}

/// Env var the CI migration matrix sets to run the equivalence suites
/// with the tier-migration engine attached (`on`) or detached (`off`,
/// the default). With migration on but no `migrate_idle` pulses, heat
/// tracking rides every submit yet must not perturb a single cache
/// decision — so the suites' equivalence assertions double as the proof
/// that the tracker is observationally free.
pub const MIGRATION_ENV: &str = "HSTORAGE_MIGRATION";

/// The migration configuration the equivalence suites attach to every
/// cache engine they build: [`MigrationConfig::on`] when [`MIGRATION_ENV`]
/// is `on` (the CI migration leg), disabled otherwise. Any other value
/// panics so a matrix typo fails the job instead of silently testing the
/// default.
pub fn matrix_migration() -> MigrationConfig {
    match std::env::var(MIGRATION_ENV) {
        Ok(v) if v == "on" => MigrationConfig::on(),
        Ok(v) if v == "off" => MigrationConfig::off(),
        Ok(v) => panic!("{MIGRATION_ENV}={v:?} must be \"on\" or \"off\""),
        Err(_) => MigrationConfig::off(),
    }
}
