//! Helpers shared by the integration suites.

use hstorage_cache::CachePolicyKind;

/// Env var the CI policy matrix sets to focus the equivalence suites on a
/// single replacement policy (one of [`CachePolicyKind::label`]'s values:
/// `semantic-priority`, `lru`, `cflru`, `2q`, `arc`, `per-stream`).
pub const POLICY_ENV: &str = "HSTORAGE_POLICY";

/// The cache policies the equivalence suites run against: the single kind
/// named by [`POLICY_ENV`] when it is set (the CI policy-matrix job), or
/// every selectable kind otherwise (local `cargo test`). An unknown label
/// panics so a matrix typo fails the job instead of silently testing the
/// default.
pub fn matrix_kinds() -> Vec<CachePolicyKind> {
    match std::env::var(POLICY_ENV) {
        Ok(label) => {
            let kind = CachePolicyKind::from_label(&label).unwrap_or_else(|| {
                panic!(
                    "{POLICY_ENV}={label:?} names no cache policy; expected one of {}",
                    CachePolicyKind::all()
                        .iter()
                        .map(|k| k.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            });
            vec![kind]
        }
        Err(_) => CachePolicyKind::all().to_vec(),
    }
}
