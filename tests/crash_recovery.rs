//! Fault-injection suite for the write-ahead journal and crash recovery:
//! torn write-buffer drains, observer purity of journaling, and
//! proptests that recovery converges at every crash offset and is
//! idempotent — across the CI policy matrix (`HSTORAGE_POLICY`) and the
//! migration legs (`HSTORAGE_MIGRATION`).

use hstorage_cache::{
    apply_op, crash_offset, recover, replay_plan, verify_convergence, CacheAction, CachePolicyKind,
    HybridCache, JournalConfig, JournalRecord, MigrationConfig, StorageSystem,
};
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass, TrimCommand,
};
use proptest::prelude::*;

mod common;

fn build(kind: CachePolicyKind, migration: MigrationConfig, journal: JournalConfig) -> HybridCache {
    HybridCache::new(PolicyConfig::paper_default(), 128)
        .with_cache_policy(kind)
        .with_migration(migration)
        .with_journal(journal)
}

/// An arbitrary classified request over a bounded address space.
fn arb_request() -> impl Strategy<Value = ClassifiedRequest> {
    (0u64..2_000, 1u64..32, 0usize..5, any::<bool>()).prop_map(|(start, len, class, write)| {
        let (class, policy, sequential) = match class {
            0 => (
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
                true,
            ),
            1 => (RequestClass::Random, QosPolicy::priority(2), false),
            2 => (RequestClass::Random, QosPolicy::priority(5), false),
            3 => (RequestClass::TemporaryData, QosPolicy::priority(1), true),
            _ => (RequestClass::Update, QosPolicy::WriteBuffer, false),
        };
        let io = if write {
            IoRequest::write(BlockRange::new(start, len), sequential)
        } else {
            IoRequest::read(BlockRange::new(start, len), sequential)
        };
        ClassifiedRequest::new(io, class, policy)
    })
}

/// Drives `requests` through every journaled entry point with a
/// deterministic mix: some requests go through `submit_batch`, TRIMs and
/// migration pulses are interleaved, and the counters reset once
/// mid-stream.
fn drive(sys: &HybridCache, requests: &[ClassifiedRequest]) {
    let mut i = 0;
    let mut step = 0u64;
    while i < requests.len() {
        if step % 7 == 3 && i + 2 <= requests.len() {
            sys.submit_batch(requests[i..i + 2].to_vec());
            i += 2;
        } else {
            sys.submit(requests[i]);
            i += 1;
        }
        if step % 16 == 9 {
            sys.trim(&TrimCommand::single(BlockRange::new(
                (step * 13) % 512,
                8u64,
            )));
        }
        if step % 24 == 17 {
            sys.migrate_idle();
        }
        if step == 25 {
            sys.reset_stats();
        }
        step += 1;
    }
}

fn wb_write(lbn: u64) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::write(BlockRange::new(lbn, 1), false),
        RequestClass::Update,
        QosPolicy::WriteBuffer,
    )
}

/// The torn-drain scenario of the crash model, deterministically: a
/// crash lands between the batch-begin of the drain-triggering write and
/// its commit. The whole batch is discarded, so the recovered engine
/// holds the pre-drain buffer intact — no half-applied debit in the
/// write-buffer accounting, no phantom flush.
#[test]
fn a_crash_inside_a_drain_batch_never_tears_the_write_buffer() {
    let fresh =
        || HybridCache::new(PolicyConfig::paper_default(), 100).with_journal(JournalConfig::on());
    let original = fresh();
    // Capacity 100 gives a 10-block write-buffer share: ten buffered
    // writes fill it, the eleventh overflows and drains.
    for lbn in 0..10u64 {
        original.submit(wb_write(lbn));
    }
    assert_eq!(original.write_buffer_resident(), 10);
    original.submit(wb_write(10));
    assert_eq!(original.write_buffer_resident(), 0);

    let snapshot = original.journal_snapshot().expect("journal attached");
    // The drain ran inside the eleventh write's batch, so its note is
    // the penultimate record — right before that batch's commit.
    assert!(
        matches!(
            snapshot.records()[snapshot.len() - 2],
            JournalRecord::DrainNote {
                dirty_blocks: 11,
                ..
            }
        ),
        "expected the drain note before the final commit"
    );

    // Crash after the drain note but before the commit: the batch is a
    // torn tail, discarded wholesale on recovery.
    let torn = snapshot.crash_at(snapshot.len() - 1);
    let (recovered, outcome) = recover(&torn, fresh()).expect("well-formed prefix");
    assert!(outcome.torn_tail);
    assert_eq!(recovered.write_buffer_resident(), 10, "buffer torn");
    assert_eq!(recovered.stats().action(CacheAction::WriteBufferFlush), 0);
    let clean =
        HybridCache::new(PolicyConfig::paper_default(), 100).with_journal(JournalConfig::off());
    for lbn in 0..10u64 {
        clean.submit(wb_write(lbn));
    }
    verify_convergence(&recovered, &clean).expect("ten committed writes, drain cleanly lost");

    // The same crash anywhere else inside the open batch discards the
    // same tail.
    for offset in (snapshot.len() - 3)..snapshot.len() {
        let (r, _) = recover(&snapshot.crash_at(offset), fresh()).expect("well-formed prefix");
        assert_eq!(r.write_buffer_resident(), 10, "offset {offset} tore");
    }

    // With the commit present, recovery replays the drain completely.
    let (full, _) = recover(&snapshot, fresh()).expect("well-formed log");
    assert_eq!(full.write_buffer_resident(), 0);
    assert_eq!(full.stats().action(CacheAction::WriteBufferFlush), 11);
}

/// Journaling must be a pure observer: with the journal on, every
/// statistic, the simulated clock and the resident set are bit-identical
/// to the journal-off engine (the PR 9 baseline) under the same stream.
#[test]
fn journaling_never_perturbs_the_engine() {
    // A fixed deterministic stream mixing every request shape.
    let requests: Vec<ClassifiedRequest> = (0..300u64)
        .map(|i| match i % 5 {
            0 => ClassifiedRequest::new(
                IoRequest::read(BlockRange::new((i * 17) % 400, 4), true),
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
            ),
            1 | 2 => ClassifiedRequest::new(
                IoRequest::read(BlockRange::new((i * 31) % 200, 1), false),
                RequestClass::Random,
                QosPolicy::priority(2),
            ),
            3 => wb_write((i * 7) % 300),
            _ => ClassifiedRequest::new(
                IoRequest::write(BlockRange::new((i * 11) % 250, 2), false),
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ),
        })
        .collect();
    for kind in common::matrix_kinds() {
        let migration = common::matrix_migration();
        let journaled = build(kind, migration, JournalConfig::on().with_commit_interval(3));
        let bare = build(kind, migration, JournalConfig::off());
        drive(&journaled, &requests);
        drive(&bare, &requests);
        assert_eq!(journaled.now(), bare.now(), "{kind:?}: clock diverged");
        assert_eq!(journaled.stats(), bare.stats(), "{kind:?}: stats diverged");
        assert_eq!(
            journaled.resident_set(),
            bare.resident_set(),
            "{kind:?}: resident set diverged"
        );
        assert_eq!(
            journaled.write_buffer_resident(),
            bare.write_buffer_resident()
        );
        assert!(journaled.journal_len() > 0, "journal recorded nothing");
        assert_eq!(bare.journal_len(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for an arbitrary request stream and an
    /// arbitrary crash offset, recovery converges with a clean twin that
    /// executed exactly the committed operation prefix — across every
    /// policy in the matrix and both migration legs.
    #[test]
    fn recovery_converges_at_every_crash_offset(
        requests in prop::collection::vec(arb_request(), 1..60),
        seed in any::<u64>(),
        interval in 1u32..5,
    ) {
        let migration = common::matrix_migration();
        for kind in common::matrix_kinds() {
            let journal = JournalConfig::on().with_commit_interval(interval);
            let original = build(kind, migration, journal);
            drive(&original, &requests);
            let snapshot = original.journal_snapshot().expect("journal attached");
            let torn = snapshot.crash_at(crash_offset(seed, snapshot.len()));
            let (recovered, outcome) =
                recover(&torn, build(kind, migration, journal)).expect("well-formed prefix");
            prop_assert_eq!(outcome.records_scanned, torn.len());
            prop_assert_eq!(
                outcome.records_replayed + outcome.records_discarded,
                torn.len()
            );
            let clean = build(kind, migration, JournalConfig::off());
            let plan = replay_plan(&torn).expect("well-formed prefix");
            for op in &plan.ops {
                apply_op(&clean, op);
            }
            if let Err(divergences) = verify_convergence(&recovered, &clean) {
                prop_assert!(
                    false,
                    "recovery diverged for {:?} at offset {}: {:?}",
                    kind,
                    torn.len(),
                    divergences
                );
            }
        }
    }

    /// Recovery is idempotent: recovering the journal a recovered engine
    /// wrote reproduces the same engine and the same journal —
    /// `recover(recover(log)) == recover(log)`.
    #[test]
    fn recovery_is_idempotent(
        requests in prop::collection::vec(arb_request(), 1..60),
        seed in any::<u64>(),
        interval in 1u32..5,
    ) {
        let migration = common::matrix_migration();
        for kind in common::matrix_kinds() {
            let original = build(
                kind,
                migration,
                JournalConfig::on().with_commit_interval(interval),
            );
            drive(&original, &requests);
            let snapshot = original.journal_snapshot().expect("journal attached");
            let torn = snapshot.crash_at(crash_offset(seed, snapshot.len()));
            // Recover at per-op commit so the recovered journal's framing
            // is canonical regardless of the crashed engine's interval.
            let fresh = || build(kind, migration, JournalConfig::on());
            let (first, first_outcome) = recover(&torn, fresh()).expect("well-formed prefix");
            first.journal_seal();
            let replayed = first.journal_snapshot().expect("journal attached");
            let (second, second_outcome) =
                recover(&replayed, fresh()).expect("recovered journal is well-formed");
            prop_assert_eq!(second_outcome.ops_applied, first_outcome.ops_applied);
            if let Err(divergences) = verify_convergence(&second, &first) {
                prop_assert!(false, "double recovery diverged: {:?}", divergences);
            }
            second.journal_seal();
            prop_assert_eq!(
                second.journal_snapshot().expect("journal attached"),
                replayed
            );
        }
    }
}
