//! Concurrent workload: the paper's throughput test (3 query streams plus
//! an update stream) on a small cache, comparing the four storage
//! configurations. This is where hStorage-DB's advantage over
//! monitoring-based management is largest: concurrent streams make access
//! patterns unpredictable for LRU, while the semantic classification stays
//! exact.
//!
//! Run with: `cargo run --release --example concurrent_workload`

use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::throughput::{
    query_stream, throughput_metric, update_stream, PAPER_QUERY_STREAMS,
};
use hstorage_tpch::{QueryId, TpchScale};

fn main() {
    let scale = TpchScale::new(0.02);
    println!(
        "Throughput test: {} query streams + 1 update stream, scale {:.2}\n",
        PAPER_QUERY_STREAMS, scale.scale_factor
    );

    println!(
        "{:<12} {:>12} {:>18} {:>14} {:>14}",
        "config", "elapsed (s)", "throughput (q/h)", "avg Q9 (s)", "avg Q18 (s)"
    );
    for kind in StorageConfigKind::all() {
        let mut system = TpchSystem::new(SystemConfig::throughput(scale, kind));
        let mut streams: Vec<(String, Vec<QueryId>)> = (0..PAPER_QUERY_STREAMS)
            .map(|i| (format!("stream-{}", i + 1), query_stream(i)))
            .collect();
        streams.push(("updates".to_string(), update_stream(PAPER_QUERY_STREAMS)));

        let completed = system.run_streams(&streams, 64);
        let elapsed = system.storage_time().as_secs_f64();
        let avg = |name: &str| {
            let v: Vec<f64> = completed
                .iter()
                .filter(|c| c.stats.name == name)
                .map(|c| c.stats.elapsed.as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "{:<12} {:>12.1} {:>18.0} {:>14.2} {:>14.2}",
            system.storage_name(),
            elapsed,
            throughput_metric(PAPER_QUERY_STREAMS, elapsed),
            avg("Q9"),
            avg("Q18"),
        );
    }

    println!(
        "\nAs in Table 9 of the paper, the gap between hStorage-DB and LRU grows under\n\
         concurrency: semantic classification keeps cache-worthy blocks protected from\n\
         the interleaved sequential scans of the other streams."
    );

    // The same workload again, but on real OS threads: a bounded worker
    // pool (at most `available_parallelism` threads) claims the streams
    // against a single shared, lock-striped storage service. The
    // deterministic slicer above is the tool for reproducing the paper's
    // numbers; this is the tool for exercising actual parallelism.
    println!("\nThreaded run (hStorage-DB, 8 shards, bounded worker pool):");
    let mut system = TpchSystem::new(
        SystemConfig::throughput(scale, StorageConfigKind::HStorageDb).with_storage_shards(8),
    );
    let mut streams: Vec<(String, Vec<QueryId>)> = (0..PAPER_QUERY_STREAMS)
        .map(|i| (format!("stream-{}", i + 1), query_stream(i)))
        .collect();
    streams.push(("updates".to_string(), update_stream(PAPER_QUERY_STREAMS)));
    let completed = system.run_streams_threaded(&streams);
    let total_blocks: u64 = completed.iter().map(|c| c.stats.total_blocks()).sum();
    println!(
        "  {} queries completed across {} streams, {} blocks served, {:.1} s simulated",
        completed.len(),
        streams.len(),
        total_blocks,
        system.storage_time().as_secs_f64(),
    );
}
