//! The power test: one long stream of all 22 TPC-H queries (plus RF1/RF2)
//! in the specification's stream-00 order, run back to back so that cache
//! contents carry over from query to query (Figure 11 / Table 8).
//!
//! Run with: `cargo run --release --example power_test`

use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::power::power_test_sequence;
use hstorage_tpch::TpchScale;

fn main() {
    let scale = TpchScale::new(0.02);
    let sequence = power_test_sequence();

    let configs = [
        StorageConfigKind::HddOnly,
        StorageConfigKind::HStorageDb,
        StorageConfigKind::SsdOnly,
    ];

    let mut totals = Vec::new();
    for kind in configs {
        let mut system = TpchSystem::new(SystemConfig::single_query(scale, kind));
        let stats = system.run_sequence(&sequence);
        println!("=== {} ===", system.storage_name());
        for s in &stats {
            println!("  {:<4} {:8.3} s", s.name, s.elapsed.as_secs_f64());
        }
        let total: f64 = stats.iter().map(|s| s.elapsed.as_secs_f64()).sum();
        println!("  total: {total:.3} s\n");
        totals.push((system.storage_name(), total));
    }

    println!("Table 8 — total execution time of the sequence:");
    for (name, total) in &totals {
        println!("  {:<12} {:>10.3} s", name, total);
    }
    let hdd = totals[0].1;
    let h = totals[1].1;
    println!(
        "\nhStorage-DB completes the sequence {:.2}x faster than the HDD-only baseline\n\
         (the paper reports 86,009 s vs 39,132 s ≈ 2.2x at scale factor 30).",
        hdd / h
    );
}
