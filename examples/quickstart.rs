//! Quickstart: build a small TPC-H database on a hybrid storage system and
//! compare one sequential and one random query across the paper's four
//! storage configurations.
//!
//! Run with: `cargo run --release --example quickstart`

use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::{QueryId, TpchScale};

fn main() {
    // A reduced-scale TPC-H database. The SSD cache and DBMS buffer pool
    // are sized to preserve the paper's cache:data ratios.
    let scale = TpchScale::new(0.05);
    println!(
        "TPC-H scale factor {:.2} ({} data blocks)\n",
        scale.scale_factor,
        scale.total_blocks()
    );

    for query in [QueryId::Q(1), QueryId::Q(9)] {
        println!("--- {query} ---");
        for kind in StorageConfigKind::all() {
            let mut system = TpchSystem::new(SystemConfig::single_query(scale, kind));
            let stats = system.run(query);
            println!(
                "{:<12} {:8.3} s   ({} storage requests, {} blocks, buffer-pool hit rate {:.0}%)",
                system.storage_name(),
                stats.elapsed.as_secs_f64(),
                stats.total_requests(),
                stats.total_blocks(),
                100.0 * stats.buffer_pool_hits as f64
                    / (stats.buffer_pool_hits + stats.buffer_pool_misses).max(1) as f64,
            );
        }
        println!();
    }

    println!(
        "Q1 is dominated by sequential requests: the SSD brings little benefit and\n\
         hStorage-DB correctly refuses to pollute the cache with scan data.\n\
         Q9 is dominated by random requests: hStorage-DB keeps the hot index/table\n\
         blocks on the SSD and approaches the SSD-only ideal."
    );
}
