//! Semantic-aware caching in action: shows how the policy assignment table
//! (Rules 1–5) classifies the requests of one query, how the hybrid cache
//! places blocks into per-priority groups, and how TRIM evicts temporary
//! data at the end of its lifetime.
//!
//! Run with: `cargo run --release --example semantic_caching`

use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::{CacheAction, StorageConfigKind};
use hstorage_storage::RequestClass;
use hstorage_tpch::{QueryId, TpchScale};

fn main() {
    let scale = TpchScale::new(0.05);

    // Q21 mixes every interesting request type: two sequential scans of
    // lineitem, index scans of orders and lineitem at two different plan
    // levels, and therefore two different caching priorities.
    let mut system = TpchSystem::new(SystemConfig::single_query(
        scale,
        StorageConfigKind::HStorageDb,
    ));
    let stats = system.run(QueryId::Q(21));
    let storage = system.storage_stats();

    println!(
        "Q21 under hStorage-DB ({} blocks requested)\n",
        stats.total_blocks()
    );
    println!("Requests per class (what the storage manager classified):");
    for class in RequestClass::all() {
        let blocks = stats.blocks(class);
        if blocks > 0 {
            println!("  {:<12} {:>10} blocks", class.label(), blocks);
        }
    }

    println!("\nCache statistics per assigned priority (Rule 2 at work):");
    for (prio, counters) in &storage.per_priority {
        println!(
            "  priority {:<2} accessed {:>9}  hits {:>9}  hit ratio {:>5.1}%",
            prio,
            counters.accessed_blocks,
            counters.cache_hits,
            counters.hit_ratio() * 100.0
        );
    }

    println!("\nCache actions taken (Section 5.1):");
    for action in [
        CacheAction::CacheHit,
        CacheAction::ReadAllocation,
        CacheAction::WriteAllocation,
        CacheAction::Bypassing,
        CacheAction::ReAllocation,
        CacheAction::Eviction,
        CacheAction::Trim,
    ] {
        println!(
            "  {:<18} {:>10} blocks",
            format!("{action:?}"),
            storage.action(action)
        );
    }

    // Now Q18: temporary data is cached at the highest priority during its
    // lifetime and TRIMmed away at deletion.
    let mut system = TpchSystem::new(SystemConfig::single_query(
        scale,
        StorageConfigKind::HStorageDb,
    ));
    system.run(QueryId::Q(18));
    let storage = system.storage_stats();
    let temp = storage.class(RequestClass::TemporaryData);
    println!(
        "\nQ18 temporary data: {} blocks accessed, {} served from cache ({:.0}%),\n\
         {} blocks invalidated by TRIM, {} blocks still resident after the query.",
        temp.accessed_blocks,
        temp.cache_hits,
        temp.hit_ratio() * 100.0,
        storage.action(CacheAction::Trim),
        system.cached_blocks(),
    );
}
