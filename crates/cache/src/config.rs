//! Construction of the four storage configurations used in the evaluation.

use crate::hybrid::HybridCache;
use crate::journal::JournalConfig;
use crate::lru_cache::LruCache;
use crate::migration::MigrationConfig;
use crate::passthrough::{HddOnly, SsdOnly};
use crate::policy::CachePolicyKind;
use crate::system::StorageSystem;
use hstorage_storage::{
    HddDevice, HddParameters, PolicyConfig, SimClock, SsdDevice, SsdParameters,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the four storage configurations of Section 6.3 to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageConfigKind {
    /// Baseline: all I/O served by the hard disk.
    HddOnly,
    /// Classical cache: SSD cache managed by LRU, classification ignored.
    Lru,
    /// The paper's system: SSD cache managed by caching priorities.
    HStorageDb,
    /// Ideal case: all I/O served by the SSD.
    SsdOnly,
}

impl StorageConfigKind {
    /// All four configurations, in the order the paper's figures list them.
    pub fn all() -> [StorageConfigKind; 4] {
        [
            StorageConfigKind::HddOnly,
            StorageConfigKind::Lru,
            StorageConfigKind::HStorageDb,
            StorageConfigKind::SsdOnly,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            StorageConfigKind::HddOnly => "HDD-only",
            StorageConfigKind::Lru => "LRU",
            StorageConfigKind::HStorageDb => "hStorage-DB",
            StorageConfigKind::SsdOnly => "SSD-only",
        }
    }

    /// Whether this configuration uses an SSD cache in front of the HDD.
    pub fn has_cache(&self) -> bool {
        matches!(self, StorageConfigKind::Lru | StorageConfigKind::HStorageDb)
    }
}

impl fmt::Display for StorageConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A full description of a storage configuration: the kind, the cache size
/// (for cached kinds), the QoS policy parameters (for hStorage-DB) and the
/// lock-striping shard count for concurrent access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Which configuration to build.
    pub kind: StorageConfigKind,
    /// SSD cache capacity in blocks (ignored by the passthrough kinds).
    pub cache_capacity_blocks: u64,
    /// QoS policy parameters (used by the hStorage-DB kind).
    pub policy: PolicyConfig,
    /// Number of lock-striped shards for the hStorage-DB kind. 1 (the
    /// default) reproduces the paper's global allocation/eviction exactly;
    /// larger values let concurrent submits on different shards proceed in
    /// parallel at the cost of shard-local eviction decisions.
    pub shards: usize,
    /// Device queue depth for the batched submission path: the maximum
    /// number of physically adjacent same-direction requests a device may
    /// merge into one transfer when served through
    /// [`StorageSystem::submit_batch`]. 1 (the default) disables merging,
    /// which keeps batched submission timing-identical to per-request
    /// submission — the paper-exact setting.
    pub queue_depth: usize,
    /// Which replacement policy drives the cache engine built for the
    /// hStorage-DB kind. The default,
    /// [`CachePolicyKind::SemanticPriority`], is the paper's policy; the
    /// other kinds run the same engine (shards, write buffer, batched
    /// submission) behind a classical baseline algorithm. Ignored by the
    /// passthrough and standalone-LRU kinds.
    pub cache_policy: CachePolicyKind,
    /// Online tier-migration knobs for the hStorage-DB kind (see
    /// [`crate::migration`]). The default is disabled, which leaves the
    /// built engine bit-identical to one without a migration engine.
    /// Ignored by the passthrough and standalone-LRU kinds.
    pub migration: MigrationConfig,
    /// Write-ahead journaling knobs for the hStorage-DB kind (see
    /// [`crate::journal`]). The default is disabled, which leaves the
    /// built engine bit-identical to one without a journal attached.
    /// Ignored by the passthrough and standalone-LRU kinds.
    pub journal: JournalConfig,
}

impl StorageConfig {
    /// Creates a configuration description (single shard).
    pub fn new(kind: StorageConfigKind, cache_capacity_blocks: u64) -> Self {
        StorageConfig {
            kind,
            cache_capacity_blocks,
            policy: PolicyConfig::paper_default(),
            shards: 1,
            queue_depth: 1,
            cache_policy: CachePolicyKind::default(),
            migration: MigrationConfig::default(),
            journal: JournalConfig::default(),
        }
    }

    /// Overrides the policy parameters.
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the shard count used by the hStorage-DB kind.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Overrides the device queue depth used by the batched submission
    /// path.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the replacement policy of the hStorage-DB cache engine,
    /// including any knob values the kind carries (CFLRU window, 2Q
    /// `Kin`/`Kout`, per-stream routing). Panics on out-of-range knobs so
    /// a misconfiguration fails at description time, not at build time.
    pub fn with_cache_policy(mut self, cache_policy: CachePolicyKind) -> Self {
        cache_policy
            .validate()
            .expect("invalid cache-policy configuration");
        self.cache_policy = cache_policy;
        self
    }

    /// Overrides the tier-migration knobs of the hStorage-DB cache engine.
    /// Panics on out-of-range knobs so a misconfiguration fails at
    /// description time, not at build time.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        migration
            .validate()
            .expect("invalid migration configuration");
        self.migration = migration;
        self
    }

    /// Overrides the write-ahead journaling knobs of the hStorage-DB cache
    /// engine. Panics on out-of-range knobs so a misconfiguration fails at
    /// description time, not at build time.
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        journal.validate().expect("invalid journal configuration");
        self.journal = journal;
        self
    }

    /// Builds the storage system.
    pub fn build(&self) -> Box<dyn StorageSystem> {
        let clock = SimClock::new();
        let ssd = || {
            SsdDevice::new(
                SsdParameters::intel_320().with_queue_depth(self.queue_depth),
                clock.clone(),
            )
        };
        let hdd = || {
            HddDevice::new(
                HddParameters::cheetah_15k7().with_queue_depth(self.queue_depth),
                clock.clone(),
            )
        };
        match self.kind {
            StorageConfigKind::HddOnly => Box::new(HddOnly::with_device(hdd(), clock.clone())),
            StorageConfigKind::SsdOnly => Box::new(SsdOnly::with_device(ssd(), clock.clone())),
            StorageConfigKind::Lru => Box::new(LruCache::with_devices(
                self.cache_capacity_blocks,
                ssd(),
                hdd(),
                clock.clone(),
            )),
            StorageConfigKind::HStorageDb => Box::new(
                HybridCache::with_devices_sharded(
                    self.policy,
                    self.cache_capacity_blocks,
                    self.shards,
                    ssd(),
                    hdd(),
                    clock.clone(),
                )
                .with_cache_policy(self.cache_policy)
                .with_migration(self.migration)
                .with_journal(self.journal),
            ),
        }
    }

    /// Builds the storage system behind an [`Arc`](std::sync::Arc), ready to
    /// be shared by concurrent query streams (e.g. the threaded workload
    /// driver).
    pub fn build_shared(&self) -> std::sync::Arc<dyn StorageSystem> {
        std::sync::Arc::from(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_four_kinds_with_expected_names() {
        for kind in StorageConfigKind::all() {
            let sys = StorageConfig::new(kind, 1024).build();
            assert_eq!(sys.name(), kind.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            StorageConfigKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn build_shared_returns_a_sync_handle() {
        let shared = StorageConfig::new(StorageConfigKind::HStorageDb, 128)
            .with_shards(4)
            .build_shared();
        let shared2 = std::sync::Arc::clone(&shared);
        std::thread::spawn(move || shared2.name().to_string())
            .join()
            .unwrap();
        assert_eq!(shared.name(), "hStorage-DB");
    }

    #[test]
    fn cache_policy_selection_builds_the_engine_baselines() {
        for kind in CachePolicyKind::all() {
            let sys = StorageConfig::new(StorageConfigKind::HStorageDb, 256)
                .with_cache_policy(kind)
                .build();
            assert_eq!(sys.name(), kind.system_name());
        }
        // The default configuration still builds the paper's system.
        let default = StorageConfig::new(StorageConfigKind::HStorageDb, 256).build();
        assert_eq!(default.name(), "hStorage-DB");
        // Non-engine kinds ignore the selector.
        let lru = StorageConfig::new(StorageConfigKind::Lru, 256)
            .with_cache_policy(CachePolicyKind::two_q())
            .build();
        assert_eq!(lru.name(), "LRU");
    }

    #[test]
    #[should_panic(expected = "invalid cache-policy configuration")]
    fn out_of_range_knobs_are_rejected_at_description_time() {
        let _ = StorageConfig::new(StorageConfigKind::HStorageDb, 256)
            .with_cache_policy(CachePolicyKind::Cflru { window_pct: 0 });
    }

    #[test]
    fn knobbed_policies_build_with_custom_values() {
        let sys = StorageConfig::new(StorageConfigKind::HStorageDb, 256)
            .with_cache_policy(CachePolicyKind::TwoQ {
                kin_pct: 10,
                kout_pct: 150,
            })
            .build();
        assert_eq!(sys.name(), "hybrid-2q");
        let sys = StorageConfig::new(StorageConfigKind::HStorageDb, 256)
            .with_cache_policy(CachePolicyKind::per_stream())
            .build();
        assert_eq!(sys.name(), "hybrid-per-stream");
    }

    #[test]
    fn journaling_defaults_off_and_rejects_bad_knobs_at_description_time() {
        let config = StorageConfig::new(StorageConfigKind::HStorageDb, 256);
        assert!(!config.journal.enabled);
        let _ = config.with_journal(JournalConfig::on()).build();
        let bad = std::panic::catch_unwind(|| {
            StorageConfig::new(StorageConfigKind::HStorageDb, 256)
                .with_journal(JournalConfig::on().with_commit_interval(1))
                .with_journal(JournalConfig {
                    enabled: true,
                    commit_interval: 0,
                })
        });
        assert!(bad.is_err(), "zero commit interval must be rejected");
    }

    #[test]
    fn cache_flag() {
        assert!(StorageConfigKind::Lru.has_cache());
        assert!(StorageConfigKind::HStorageDb.has_cache());
        assert!(!StorageConfigKind::HddOnly.has_cache());
        assert!(!StorageConfigKind::SsdOnly.has_cache());
    }
}
