//! Cache metadata (Section 5.2).
//!
//! The storage system tracks cached blocks with a hash table keyed by the
//! logical block number. Each entry is `< lbn, (pbn, prio) >` in the paper;
//! we additionally record the clean/dirty state that Section 5.1 describes
//! for valid blocks.
//!
//! The table interior is selectable via [`ListBackend`]: the default flat
//! layout probes an open-addressing [`BlockTable`]; the legacy map layout
//! keeps a `std::HashMap` and exists as the measured bench comparator.
//! Both expose identical lookup semantics, and iteration order is
//! unspecified either way (every engine consumer sorts or counts).

use crate::lru::ListBackend;
use crate::table::BlockTable;
use hstorage_storage::{BlockAddr, CachePriority};
use std::collections::HashMap;

/// State of a valid cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// An identical copy exists on the second-level device.
    Clean,
    /// The cached copy is newer than the second-level copy.
    Dirty,
}

/// Metadata for one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Physical block number inside the SSD cache.
    pub pbn: u64,
    /// Current caching priority (which priority group the block lives in).
    pub priority: CachePriority,
    /// Clean or dirty.
    pub state: BlockState,
}

impl CacheEntry {
    /// Whether the entry is dirty.
    pub fn is_dirty(&self) -> bool {
        self.state == BlockState::Dirty
    }
}

#[derive(Debug, Clone)]
enum MetaRepr {
    Flat(BlockTable),
    Map(HashMap<BlockAddr, CacheEntry>),
}

/// The lookup table `lbn → (pbn, prio, state)`.
#[derive(Debug, Clone)]
pub struct CacheMetadata {
    repr: MetaRepr,
}

impl Default for CacheMetadata {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheMetadata {
    /// Creates an empty metadata table on the default (flat) backend.
    pub fn new() -> Self {
        Self::with_backend(ListBackend::Flat, 0)
    }

    /// Creates an empty metadata table on an explicit backend, pre-sized
    /// for `capacity` resident blocks (the flat table probes without ever
    /// growing when the shard stays within its slot capacity).
    pub fn with_backend(backend: ListBackend, capacity: usize) -> Self {
        CacheMetadata {
            repr: match backend {
                ListBackend::Flat => MetaRepr::Flat(BlockTable::with_capacity(capacity)),
                ListBackend::Map => MetaRepr::Map(HashMap::with_capacity(capacity)),
            },
        }
    }

    /// Number of cached (valid) blocks.
    pub fn len(&self) -> usize {
        match &self.repr {
            MetaRepr::Flat(t) => t.len(),
            MetaRepr::Map(m) => m.len(),
        }
    }

    /// Whether no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a block.
    #[inline]
    pub fn get(&self, lbn: BlockAddr) -> Option<&CacheEntry> {
        match &self.repr {
            MetaRepr::Flat(t) => t.get(lbn),
            MetaRepr::Map(m) => m.get(&lbn),
        }
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, lbn: BlockAddr) -> Option<&mut CacheEntry> {
        match &mut self.repr {
            MetaRepr::Flat(t) => t.get_mut(lbn),
            MetaRepr::Map(m) => m.get_mut(&lbn),
        }
    }

    /// Whether a block is cached.
    #[inline]
    pub fn contains(&self, lbn: BlockAddr) -> bool {
        match &self.repr {
            MetaRepr::Flat(t) => t.contains(lbn),
            MetaRepr::Map(m) => m.contains_key(&lbn),
        }
    }

    /// Inserts (or replaces) the entry for a block.
    pub fn insert(&mut self, lbn: BlockAddr, entry: CacheEntry) {
        match &mut self.repr {
            MetaRepr::Flat(t) => {
                t.insert(lbn, entry);
            }
            MetaRepr::Map(m) => {
                m.insert(lbn, entry);
            }
        }
    }

    /// Removes and returns the entry for a block.
    pub fn remove(&mut self, lbn: BlockAddr) -> Option<CacheEntry> {
        match &mut self.repr {
            MetaRepr::Flat(t) => t.remove(lbn),
            MetaRepr::Map(m) => m.remove(&lbn),
        }
    }

    /// Iterates all `(lbn, entry)` pairs in unspecified order.
    pub fn iter(&self) -> MetaIter<'_> {
        match &self.repr {
            MetaRepr::Flat(t) => MetaIter::Flat(t.iter()),
            MetaRepr::Map(m) => MetaIter::Map(m.iter()),
        }
    }

    /// Number of dirty blocks currently cached.
    pub fn dirty_count(&self) -> usize {
        self.iter().filter(|(_, e)| e.is_dirty()).count()
    }
}

/// Iterator over a [`CacheMetadata`]'s `(lbn, entry)` pairs.
pub enum MetaIter<'a> {
    /// Walking the flat block table.
    Flat(crate::table::BlockTableIter<'a>),
    /// Walking the legacy hash map.
    Map(std::collections::hash_map::Iter<'a, BlockAddr, CacheEntry>),
}

impl<'a> Iterator for MetaIter<'a> {
    type Item = (BlockAddr, &'a CacheEntry);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            MetaIter::Flat(it) => it.next(),
            MetaIter::Map(it) => it.next().map(|(lbn, e)| (*lbn, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pbn: u64, prio: u8, dirty: bool) -> CacheEntry {
        CacheEntry {
            pbn,
            priority: CachePriority(prio),
            state: if dirty {
                BlockState::Dirty
            } else {
                BlockState::Clean
            },
        }
    }

    fn backends() -> [ListBackend; 2] {
        [ListBackend::Flat, ListBackend::Map]
    }

    #[test]
    fn insert_lookup_remove() {
        for backend in backends() {
            let mut m = CacheMetadata::with_backend(backend, 8);
            assert!(m.is_empty());
            m.insert(BlockAddr(5), entry(0, 2, false));
            assert!(m.contains(BlockAddr(5)));
            assert_eq!(m.get(BlockAddr(5)).unwrap().pbn, 0);
            assert_eq!(m.len(), 1);
            let removed = m.remove(BlockAddr(5)).unwrap();
            assert_eq!(removed.priority, CachePriority(2));
            assert!(m.is_empty());
        }
    }

    #[test]
    fn dirty_count_tracks_state() {
        for backend in backends() {
            let mut m = CacheMetadata::with_backend(backend, 8);
            m.insert(BlockAddr(1), entry(0, 1, true));
            m.insert(BlockAddr(2), entry(1, 1, false));
            m.insert(BlockAddr(3), entry(2, 3, true));
            assert_eq!(m.dirty_count(), 2);
            m.get_mut(BlockAddr(1)).unwrap().state = BlockState::Clean;
            assert_eq!(m.dirty_count(), 1);
        }
    }

    #[test]
    fn insert_replaces_existing_entry() {
        for backend in backends() {
            let mut m = CacheMetadata::with_backend(backend, 8);
            m.insert(BlockAddr(9), entry(10, 4, false));
            m.insert(BlockAddr(9), entry(11, 2, true));
            let e = m.get(BlockAddr(9)).unwrap();
            assert_eq!(e.pbn, 11);
            assert_eq!(e.priority, CachePriority(2));
            assert!(e.is_dirty());
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn iter_yields_the_same_set_on_both_backends() {
        let mut sets = Vec::new();
        for backend in backends() {
            let mut m = CacheMetadata::with_backend(backend, 4);
            for i in 0..50u64 {
                m.insert(BlockAddr(i), entry(i, 1, i % 2 == 0));
            }
            let mut pairs: Vec<(u64, u64)> = m.iter().map(|(lbn, e)| (lbn.0, e.pbn)).collect();
            pairs.sort_unstable();
            sets.push(pairs);
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[0].len(), 50);
    }
}
