//! Cache metadata (Section 5.2).
//!
//! The storage system tracks cached blocks with a hash table keyed by the
//! logical block number. Each entry is `< lbn, (pbn, prio) >` in the paper;
//! we additionally record the clean/dirty state that Section 5.1 describes
//! for valid blocks.

use hstorage_storage::{BlockAddr, CachePriority};
use std::collections::HashMap;

/// State of a valid cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// An identical copy exists on the second-level device.
    Clean,
    /// The cached copy is newer than the second-level copy.
    Dirty,
}

/// Metadata for one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Physical block number inside the SSD cache.
    pub pbn: u64,
    /// Current caching priority (which priority group the block lives in).
    pub priority: CachePriority,
    /// Clean or dirty.
    pub state: BlockState,
}

impl CacheEntry {
    /// Whether the entry is dirty.
    pub fn is_dirty(&self) -> bool {
        self.state == BlockState::Dirty
    }
}

/// The lookup table `lbn → (pbn, prio, state)`.
#[derive(Debug, Default, Clone)]
pub struct CacheMetadata {
    entries: HashMap<BlockAddr, CacheEntry>,
}

impl CacheMetadata {
    /// Creates an empty metadata table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached (valid) blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a block.
    pub fn get(&self, lbn: BlockAddr) -> Option<&CacheEntry> {
        self.entries.get(&lbn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, lbn: BlockAddr) -> Option<&mut CacheEntry> {
        self.entries.get_mut(&lbn)
    }

    /// Whether a block is cached.
    pub fn contains(&self, lbn: BlockAddr) -> bool {
        self.entries.contains_key(&lbn)
    }

    /// Inserts (or replaces) the entry for a block.
    pub fn insert(&mut self, lbn: BlockAddr, entry: CacheEntry) {
        self.entries.insert(lbn, entry);
    }

    /// Removes and returns the entry for a block.
    pub fn remove(&mut self, lbn: BlockAddr) -> Option<CacheEntry> {
        self.entries.remove(&lbn)
    }

    /// Iterates all `(lbn, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &CacheEntry)> {
        self.entries.iter()
    }

    /// Number of dirty blocks currently cached.
    pub fn dirty_count(&self) -> usize {
        self.entries.values().filter(|e| e.is_dirty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pbn: u64, prio: u8, dirty: bool) -> CacheEntry {
        CacheEntry {
            pbn,
            priority: CachePriority(prio),
            state: if dirty {
                BlockState::Dirty
            } else {
                BlockState::Clean
            },
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut m = CacheMetadata::new();
        assert!(m.is_empty());
        m.insert(BlockAddr(5), entry(0, 2, false));
        assert!(m.contains(BlockAddr(5)));
        assert_eq!(m.get(BlockAddr(5)).unwrap().pbn, 0);
        assert_eq!(m.len(), 1);
        let removed = m.remove(BlockAddr(5)).unwrap();
        assert_eq!(removed.priority, CachePriority(2));
        assert!(m.is_empty());
    }

    #[test]
    fn dirty_count_tracks_state() {
        let mut m = CacheMetadata::new();
        m.insert(BlockAddr(1), entry(0, 1, true));
        m.insert(BlockAddr(2), entry(1, 1, false));
        m.insert(BlockAddr(3), entry(2, 3, true));
        assert_eq!(m.dirty_count(), 2);
        m.get_mut(BlockAddr(1)).unwrap().state = BlockState::Clean;
        assert_eq!(m.dirty_count(), 1);
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let mut m = CacheMetadata::new();
        m.insert(BlockAddr(9), entry(10, 4, false));
        m.insert(BlockAddr(9), entry(11, 2, true));
        let e = m.get(BlockAddr(9)).unwrap();
        assert_eq!(e.pbn, 11);
        assert_eq!(e.priority, CachePriority(2));
        assert!(e.is_dirty());
        assert_eq!(m.len(), 1);
    }
}
