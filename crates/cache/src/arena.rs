//! Slab arena for intrusive doubly-linked lists over `u32` indices.
//!
//! Every recency structure in the cache — the LRU stacks, the per-priority
//! groups, the ghost directories — is an ordered list of block addresses
//! with O(1) touch/insert/remove. The classic implementation allocates one
//! heap node per element and chases pointers; this arena keeps all nodes
//! of a list in one dense `Vec` and links them with `u32` indices, so a
//! list walk touches consecutive cache lines and a freed node's slot is
//! recycled from an explicit free list instead of round-tripping through
//! the allocator.
//!
//! [`ListArena`] owns the node storage; [`ListHandle`] is the head/tail
//! cursor of one list threaded through it. Handles borrow the arena per
//! call, so several lists could share one arena — the shipped lists use
//! one arena per list, which keeps `Clone` trivial.

use hstorage_storage::BlockAddr;

/// Null link: no node.
pub const NIL: u32 = u32::MAX;

/// One intrusive list node: the key plus its neighbour links.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: BlockAddr,
    prev: u32,
    next: u32,
}

/// The slab that stores list nodes: a dense `Vec` plus a free list of
/// recycled slots. Nodes are addressed by `u32` index; [`NIL`] is the null
/// link.
#[derive(Debug, Clone, Default)]
pub struct ListArena {
    nodes: Vec<Node>,
    free: Vec<u32>,
}

impl ListArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots ever allocated (live + free) — the slab's
    /// high-water mark.
    pub fn slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (linked) nodes.
    pub fn live(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Allocates a node for `key`, recycling a freed slot if one exists.
    fn alloc(&mut self, key: BlockAddr) -> u32 {
        let node = Node {
            key,
            prev: NIL,
            next: NIL,
        };
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "list arena full");
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Returns a node's slot to the free list.
    fn release(&mut self, slot: u32) {
        self.free.push(slot);
    }

    /// The key stored in a live node.
    #[inline]
    pub fn key(&self, slot: u32) -> BlockAddr {
        self.nodes[slot as usize].key
    }

    /// A reference to the key stored in a live node (for `peek` APIs that
    /// hand out references).
    #[inline]
    pub fn key_ref(&self, slot: u32) -> &BlockAddr {
        &self.nodes[slot as usize].key
    }
}

/// One doubly-linked list threaded through a [`ListArena`]: front = most
/// recently used, back = eviction candidate. All methods take the arena
/// the handle's nodes live in.
#[derive(Debug, Clone, Copy)]
pub struct ListHandle {
    head: u32,
    tail: u32,
    len: usize,
}

impl Default for ListHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl ListHandle {
    /// Creates an empty list.
    pub fn new() -> Self {
        ListHandle {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of nodes in this list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates a node for `key` and links it at the front. Returns the
    /// node index for colocation in an index structure.
    pub fn push_front(&mut self, arena: &mut ListArena, key: BlockAddr) -> u32 {
        let slot = arena.alloc(key);
        self.link_front(arena, slot);
        self.len += 1;
        slot
    }

    /// Unlinks and frees the back node, returning its key.
    pub fn pop_back(&mut self, arena: &mut ListArena) -> Option<BlockAddr> {
        let slot = self.tail;
        if slot == NIL {
            return None;
        }
        let key = arena.key(slot);
        self.unlink(arena, slot);
        arena.release(slot);
        self.len -= 1;
        Some(key)
    }

    /// The back (least-recently-used) key, if any.
    #[inline]
    pub fn back<'a>(&self, arena: &'a ListArena) -> Option<&'a BlockAddr> {
        if self.tail == NIL {
            None
        } else {
            Some(arena.key_ref(self.tail))
        }
    }

    /// Unlinks and frees a specific node (which must belong to this list).
    pub fn remove(&mut self, arena: &mut ListArena, slot: u32) {
        self.unlink(arena, slot);
        arena.release(slot);
        self.len -= 1;
    }

    /// Moves a node (which must belong to this list) to the front.
    pub fn move_front(&mut self, arena: &mut ListArena, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(arena, slot);
        self.link_front(arena, slot);
    }

    /// Iterates keys front → back (most → least recently used).
    pub fn iter_front<'a>(&self, arena: &'a ListArena) -> ListIter<'a> {
        ListIter {
            arena,
            cur: self.head,
            forward: true,
        }
    }

    /// Iterates keys back → front (least → most recently used).
    pub fn iter_back<'a>(&self, arena: &'a ListArena) -> ListIter<'a> {
        ListIter {
            arena,
            cur: self.tail,
            forward: false,
        }
    }

    fn link_front(&mut self, arena: &mut ListArena, slot: u32) {
        let head = self.head;
        {
            let node = &mut arena.nodes[slot as usize];
            node.prev = NIL;
            node.next = head;
        }
        if head != NIL {
            arena.nodes[head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, arena: &mut ListArena, slot: u32) {
        let (prev, next) = {
            let node = &arena.nodes[slot as usize];
            (node.prev, node.next)
        };
        if prev != NIL {
            arena.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            arena.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let node = &mut arena.nodes[slot as usize];
        node.prev = NIL;
        node.next = NIL;
    }
}

/// Iterator over the keys of one [`ListHandle`]'s list.
pub struct ListIter<'a> {
    arena: &'a ListArena,
    cur: u32,
    forward: bool,
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a BlockAddr;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.arena.nodes[self.cur as usize];
        self.cur = if self.forward { node.next } else { node.prev };
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn push_pop_order_is_fifo_from_the_back() {
        let mut arena = ListArena::new();
        let mut list = ListHandle::new();
        for i in 1..=3u64 {
            list.push_front(&mut arena, BlockAddr(i));
        }
        assert_eq!(list.len(), 3);
        assert_eq!(list.pop_back(&mut arena), Some(BlockAddr(1)));
        assert_eq!(list.pop_back(&mut arena), Some(BlockAddr(2)));
        assert_eq!(list.pop_back(&mut arena), Some(BlockAddr(3)));
        assert_eq!(list.pop_back(&mut arena), None);
        assert!(list.is_empty());
    }

    #[test]
    fn move_front_reorders_and_back_peeks() {
        let mut arena = ListArena::new();
        let mut list = ListHandle::new();
        let a = list.push_front(&mut arena, BlockAddr(1));
        let _b = list.push_front(&mut arena, BlockAddr(2));
        assert_eq!(list.back(&arena), Some(&BlockAddr(1)));
        list.move_front(&mut arena, a);
        assert_eq!(list.back(&arena), Some(&BlockAddr(2)));
        // Moving the head is a no-op.
        list.move_front(&mut arena, a);
        assert_eq!(list.back(&arena), Some(&BlockAddr(2)));
        let order: Vec<BlockAddr> = list.iter_front(&arena).copied().collect();
        assert_eq!(order, vec![BlockAddr(1), BlockAddr(2)]);
    }

    #[test]
    fn remove_unlinks_interior_nodes() {
        let mut arena = ListArena::new();
        let mut list = ListHandle::new();
        let _a = list.push_front(&mut arena, BlockAddr(1));
        let b = list.push_front(&mut arena, BlockAddr(2));
        let _c = list.push_front(&mut arena, BlockAddr(3));
        list.remove(&mut arena, b);
        let order: Vec<BlockAddr> = list.iter_back(&arena).copied().collect();
        assert_eq!(order, vec![BlockAddr(1), BlockAddr(3)]);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn freed_slots_are_recycled_before_the_slab_grows() {
        let mut arena = ListArena::new();
        let mut list = ListHandle::new();
        for i in 0..100u64 {
            list.push_front(&mut arena, BlockAddr(i));
        }
        for _ in 0..100 {
            list.pop_back(&mut arena);
        }
        for i in 100..200u64 {
            list.push_front(&mut arena, BlockAddr(i));
        }
        assert!(arena.slots() <= 100, "slab grew past the live peak");
        assert_eq!(arena.live(), 100);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The arena list agrees with a `VecDeque` model (front = index 0)
        /// on any trace of push-front / pop-back / move-front / remove
        /// operations, and free-list recycling never hands out a slot that
        /// is still linked into the list.
        #[test]
        fn arena_list_matches_a_vec_deque_model(
            ops in proptest::collection::vec((0u8..4, 0u64..24), 1..300),
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            use std::collections::HashMap;
            let mut arena = ListArena::new();
            let mut list = ListHandle::new();
            // key → live node slot; mirrors what an index map colocates.
            let mut slots: HashMap<u64, u32> = HashMap::new();
            let mut model: VecDeque<u64> = VecDeque::new();
            for (op, key) in ops {
                match op {
                    0 => {
                        // Push a key not currently present.
                        if !slots.contains_key(&key) {
                            let slot = list.push_front(&mut arena, BlockAddr(key));
                            prop_assert!(
                                slots.values().all(|&s| s != slot),
                                "free-list reuse aliased a live node"
                            );
                            slots.insert(key, slot);
                            model.push_front(key);
                        }
                    }
                    1 => {
                        let popped = list.pop_back(&mut arena).map(|b| b.0);
                        prop_assert_eq!(popped, model.pop_back());
                        if let Some(k) = popped {
                            slots.remove(&k);
                        }
                    }
                    2 => {
                        if let Some(&slot) = slots.get(&key) {
                            list.move_front(&mut arena, slot);
                            let pos = model.iter().position(|&k| k == key).unwrap();
                            model.remove(pos);
                            model.push_front(key);
                        }
                    }
                    _ => {
                        if let Some(slot) = slots.remove(&key) {
                            list.remove(&mut arena, slot);
                            let pos = model.iter().position(|&k| k == key).unwrap();
                            model.remove(pos);
                        }
                    }
                }
                prop_assert_eq!(list.len(), model.len());
                prop_assert_eq!(arena.live(), model.len());
                let front: Vec<u64> = list.iter_front(&arena).map(|b| b.0).collect();
                let expect: Vec<u64> = model.iter().copied().collect();
                prop_assert_eq!(front, expect);
                let mut back: Vec<u64> = list.iter_back(&arena).map(|b| b.0).collect();
                back.reverse();
                let expect: Vec<u64> = model.iter().copied().collect();
                prop_assert_eq!(back, expect);
            }
        }
    }
}
