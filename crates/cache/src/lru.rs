//! An order-preserving LRU list with O(1) touch/insert/remove.
//!
//! Each priority group (Section 5.1), the ghost directories and the
//! baseline LRU cache are built on this structure. Two interchangeable
//! interiors sit behind one API, selected by [`ListBackend`]:
//!
//! * **Flat** (default) — an arena-backed intrusive list
//!   ([`crate::arena`]) indexed by an open-addressing map
//!   ([`crate::table::OpenMap`]): dense `u32` links, no per-node heap
//!   allocation, no SipHash.
//! * **Map** — the pre-flat slab + `std::HashMap` layout, kept as the
//!   measured legacy comparator for the `submit_latency` and
//!   `contended_throughput` flat-vs-map bench pairs.
//!
//! Both interiors implement identical list semantics, so which one a
//! policy runs on changes no cache decision — the per-policy equivalence
//! suites and the deterministic bench rows pin that.

use crate::arena::{ListArena, ListHandle, ListIter};
use crate::table::OpenMap;
use hstorage_storage::BlockAddr;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Which interior data-structure layout the cache's list and metadata
/// structures use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ListBackend {
    /// Arena-backed intrusive lists + open-addressing index (the default).
    #[default]
    Flat,
    /// The legacy slab + `std::HashMap` layout, kept for flat-vs-map
    /// benchmark comparisons.
    Map,
}

impl ListBackend {
    /// Short lower-case label for bench IDs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ListBackend::Flat => "flat",
            ListBackend::Map => "map",
        }
    }
}

#[derive(Debug, Clone)]
struct MapNode {
    key: BlockAddr,
    prev: usize,
    next: usize,
}

/// The legacy interior: slab nodes linked by `usize`, indexed by a
/// `std::HashMap`.
#[derive(Debug, Clone, Default)]
struct MapList {
    nodes: Vec<MapNode>,
    free: Vec<usize>,
    index: HashMap<BlockAddr, usize>,
    head: usize,
    tail: usize,
}

impl MapList {
    fn new() -> Self {
        MapList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn insert_mru(&mut self, key: BlockAddr) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.unlink(slot);
            self.link_front(slot);
            return false;
        }
        let node = MapNode {
            key,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.link_front(slot);
        true
    }

    fn touch(&mut self, key: &BlockAddr) -> bool {
        match self.index.get(key) {
            Some(&slot) => {
                self.unlink(slot);
                self.link_front(slot);
                true
            }
            None => false,
        }
    }

    fn pop_lru(&mut self) -> Option<BlockAddr> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.nodes[slot].key;
        self.unlink(slot);
        self.free.push(slot);
        self.index.remove(&key);
        Some(key)
    }

    fn peek_lru(&self) -> Option<&BlockAddr> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.nodes[self.tail].key)
        }
    }

    fn remove(&mut self, key: &BlockAddr) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

/// The flat interior: one intrusive list in a private arena, indexed by an
/// open-addressing `lbn → node` map.
#[derive(Debug, Clone)]
struct FlatList {
    arena: ListArena,
    list: ListHandle,
    index: OpenMap<u32>,
}

impl FlatList {
    fn new() -> Self {
        FlatList {
            arena: ListArena::new(),
            list: ListHandle::new(),
            index: OpenMap::new(),
        }
    }

    fn insert_mru(&mut self, key: BlockAddr) -> bool {
        if let Some(&slot) = self.index.get(key.0) {
            self.list.move_front(&mut self.arena, slot);
            return false;
        }
        let slot = self.list.push_front(&mut self.arena, key);
        self.index.insert(key.0, slot);
        true
    }

    fn touch(&mut self, key: &BlockAddr) -> bool {
        match self.index.get(key.0) {
            Some(&slot) => {
                self.list.move_front(&mut self.arena, slot);
                true
            }
            None => false,
        }
    }

    fn pop_lru(&mut self) -> Option<BlockAddr> {
        let key = self.list.pop_back(&mut self.arena)?;
        self.index.remove(key.0);
        Some(key)
    }

    fn remove(&mut self, key: &BlockAddr) -> bool {
        match self.index.remove(key.0) {
            Some(slot) => {
                self.list.remove(&mut self.arena, slot);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Flat(FlatList),
    Map(MapList),
}

/// A least-recently-used ordering over a set of block addresses.
///
/// The *front* of the list is the most recently used key; the *back* is the
/// least recently used and is the eviction candidate.
#[derive(Debug, Clone)]
pub struct LruList {
    repr: Repr,
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    /// Creates an empty list on the default (flat) backend.
    pub fn new() -> Self {
        Self::with_backend(ListBackend::Flat)
    }

    /// Creates an empty list on an explicit backend.
    pub fn with_backend(backend: ListBackend) -> Self {
        LruList {
            repr: match backend {
                ListBackend::Flat => Repr::Flat(FlatList::new()),
                ListBackend::Map => Repr::Map(MapList::new()),
            },
        }
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Flat(f) => f.list.len(),
            Repr::Map(m) => m.index.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &BlockAddr) -> bool {
        match &self.repr {
            Repr::Flat(f) => f.index.contains(key.0),
            Repr::Map(m) => m.index.contains_key(key),
        }
    }

    /// Inserts `key` at the most-recently-used position. If the key is
    /// already present it is moved to the front. Returns `true` if the key
    /// was newly inserted.
    pub fn insert_mru(&mut self, key: BlockAddr) -> bool {
        match &mut self.repr {
            Repr::Flat(f) => f.insert_mru(key),
            Repr::Map(m) => m.insert_mru(key),
        }
    }

    /// Marks `key` as most recently used. Returns `false` if the key is not
    /// present.
    pub fn touch(&mut self, key: &BlockAddr) -> bool {
        match &mut self.repr {
            Repr::Flat(f) => f.touch(key),
            Repr::Map(m) => m.touch(key),
        }
    }

    /// Removes and returns the least recently used key.
    pub fn pop_lru(&mut self) -> Option<BlockAddr> {
        match &mut self.repr {
            Repr::Flat(f) => f.pop_lru(),
            Repr::Map(m) => m.pop_lru(),
        }
    }

    /// Returns (without removing) the least recently used key.
    pub fn peek_lru(&self) -> Option<&BlockAddr> {
        match &self.repr {
            Repr::Flat(f) => f.list.back(&f.arena),
            Repr::Map(m) => m.peek_lru(),
        }
    }

    /// Removes a specific key. Returns `true` if it was present.
    pub fn remove(&mut self, key: &BlockAddr) -> bool {
        match &mut self.repr {
            Repr::Flat(f) => f.remove(key),
            Repr::Map(m) => m.remove(key),
        }
    }

    /// Iterates keys from most to least recently used.
    pub fn iter_mru(&self) -> LruIter<'_> {
        LruIter {
            inner: match &self.repr {
                Repr::Flat(f) => IterRepr::Flat(f.list.iter_front(&f.arena)),
                Repr::Map(m) => IterRepr::Map {
                    list: m,
                    cur: m.head,
                    forward: true,
                },
            },
        }
    }

    /// Iterates keys from least to most recently used (eviction order) —
    /// what a policy scans when it searches near the LRU end, e.g. CFLRU's
    /// clean-first window.
    pub fn iter_lru(&self) -> LruIter<'_> {
        LruIter {
            inner: match &self.repr {
                Repr::Flat(f) => IterRepr::Flat(f.list.iter_back(&f.arena)),
                Repr::Map(m) => IterRepr::Map {
                    list: m,
                    cur: m.tail,
                    forward: false,
                },
            },
        }
    }
}

enum IterRepr<'a> {
    Flat(ListIter<'a>),
    Map {
        list: &'a MapList,
        cur: usize,
        forward: bool,
    },
}

/// Iterator over an [`LruList`]'s keys in recency order.
pub struct LruIter<'a> {
    inner: IterRepr<'a>,
}

impl<'a> Iterator for LruIter<'a> {
    type Item = &'a BlockAddr;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterRepr::Flat(it) => it.next(),
            IterRepr::Map { list, cur, forward } => {
                if *cur == NIL {
                    return None;
                }
                let node = &list.nodes[*cur];
                *cur = if *forward { node.next } else { node.prev };
                Some(&node.key)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [ListBackend; 2] {
        [ListBackend::Flat, ListBackend::Map]
    }

    #[test]
    fn insert_and_pop_order() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            l.insert_mru(BlockAddr(1));
            l.insert_mru(BlockAddr(2));
            l.insert_mru(BlockAddr(3));
            assert_eq!(l.len(), 3);
            assert_eq!(l.pop_lru(), Some(BlockAddr(1)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(2)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(3)));
            assert_eq!(l.pop_lru(), None);
            assert!(l.is_empty());
        }
    }

    #[test]
    fn touch_moves_to_front() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            l.insert_mru(BlockAddr(1));
            l.insert_mru(BlockAddr(2));
            l.insert_mru(BlockAddr(3));
            assert!(l.touch(&BlockAddr(1)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(2)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(3)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(1)));
        }
    }

    #[test]
    fn touch_missing_returns_false() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            assert!(!l.touch(&BlockAddr(42)));
        }
    }

    #[test]
    fn reinsert_moves_to_front_without_duplicating() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            assert!(l.insert_mru(BlockAddr(1)));
            assert!(l.insert_mru(BlockAddr(2)));
            assert!(!l.insert_mru(BlockAddr(1)));
            assert_eq!(l.len(), 2);
            assert_eq!(l.pop_lru(), Some(BlockAddr(2)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(1)));
        }
    }

    #[test]
    fn remove_specific_key() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            l.insert_mru(BlockAddr(1));
            l.insert_mru(BlockAddr(2));
            l.insert_mru(BlockAddr(3));
            assert!(l.remove(&BlockAddr(2)));
            assert!(!l.remove(&BlockAddr(2)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(1)));
            assert_eq!(l.pop_lru(), Some(BlockAddr(3)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            l.insert_mru(BlockAddr(7));
            assert_eq!(l.peek_lru(), Some(&BlockAddr(7)));
            assert_eq!(l.len(), 1);
        }
    }

    #[test]
    fn iter_mru_order() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            for i in 0..5u64 {
                l.insert_mru(BlockAddr(i));
            }
            l.touch(&BlockAddr(0));
            let order: Vec<u64> = l.iter_mru().map(|b| b.0).collect();
            assert_eq!(order, vec![0, 4, 3, 2, 1]);
        }
    }

    #[test]
    fn iter_lru_is_the_reverse_of_iter_mru() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            for i in 0..5u64 {
                l.insert_mru(BlockAddr(i));
            }
            l.touch(&BlockAddr(2));
            let mru: Vec<u64> = l.iter_mru().map(|b| b.0).collect();
            let mut lru: Vec<u64> = l.iter_lru().map(|b| b.0).collect();
            lru.reverse();
            assert_eq!(mru, lru);
            assert_eq!(l.iter_lru().next(), l.peek_lru());
            let empty = LruList::with_backend(backend);
            assert_eq!(empty.iter_lru().count(), 0);
        }
    }

    #[test]
    fn slots_are_reused_after_removal() {
        for backend in backends() {
            let mut l = LruList::with_backend(backend);
            for i in 0..100u64 {
                l.insert_mru(BlockAddr(i));
            }
            for i in 0..100u64 {
                assert!(l.remove(&BlockAddr(i)));
            }
            for i in 100..200u64 {
                l.insert_mru(BlockAddr(i));
            }
            // The slab should not have grown beyond the peak live population.
            let slab = match &l.repr {
                Repr::Flat(f) => f.arena.slots(),
                Repr::Map(m) => m.nodes.len(),
            };
            assert!(slab <= 100, "{backend:?} slab grew past the peak");
            assert_eq!(l.len(), 100);
        }
    }

    #[test]
    fn default_backend_is_flat() {
        assert_eq!(ListBackend::default(), ListBackend::Flat);
        assert!(matches!(LruList::new().repr, Repr::Flat(_)));
        assert_eq!(ListBackend::Flat.label(), "flat");
        assert_eq!(ListBackend::Map.label(), "map");
    }

    // The two interiors implement identical list semantics on any
    // operation trace — the heart of the "flat structures change no cache
    // decision" argument.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn flat_and_map_backends_are_equivalent(
            ops in proptest::collection::vec((0u8..5, 0u64..24), 1..300),
        ) {
            use proptest::prelude::prop_assert_eq;
            let mut flat = LruList::with_backend(ListBackend::Flat);
            let mut map = LruList::with_backend(ListBackend::Map);
            for (op, key) in ops {
                let key = BlockAddr(key);
                match op {
                    0 => {
                        prop_assert_eq!(flat.insert_mru(key), map.insert_mru(key));
                    }
                    1 => prop_assert_eq!(flat.touch(&key), map.touch(&key)),
                    2 => prop_assert_eq!(flat.pop_lru(), map.pop_lru()),
                    3 => prop_assert_eq!(flat.remove(&key), map.remove(&key)),
                    _ => prop_assert_eq!(flat.contains(&key), map.contains(&key)),
                }
                prop_assert_eq!(flat.len(), map.len());
                prop_assert_eq!(flat.peek_lru(), map.peek_lru());
                let f: Vec<u64> = flat.iter_mru().map(|b| b.0).collect();
                let m: Vec<u64> = map.iter_mru().map(|b| b.0).collect();
                prop_assert_eq!(f, m);
            }
        }
    }
}
