//! An order-preserving LRU list with O(1) touch/insert/remove.
//!
//! Each priority group (Section 5.1) and the baseline LRU cache are built
//! on this structure. It is an intrusive doubly-linked list stored in a
//! slab, indexed by a hash map from key to slab slot.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A least-recently-used ordering over a set of keys.
///
/// The *front* of the list is the most recently used key; the *back* is the
/// least recently used and is the eviction candidate.
#[derive(Debug, Clone)]
pub struct LruList<K: Eq + Hash + Clone> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    index: HashMap<K, usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key` at the most-recently-used position. If the key is
    /// already present it is moved to the front. Returns `true` if the key
    /// was newly inserted.
    pub fn insert_mru(&mut self, key: K) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.unlink(slot);
            self.link_front(slot);
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = Node {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.link_front(slot);
        true
    }

    /// Marks `key` as most recently used. Returns `false` if the key is not
    /// present.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.index.get(key) {
            Some(&slot) => {
                self.unlink(slot);
                self.link_front(slot);
                true
            }
            None => false,
        }
    }

    /// Removes and returns the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.nodes[slot].key.clone();
        self.unlink(slot);
        self.free.push(slot);
        self.index.remove(&key);
        Some(key)
    }

    /// Returns (without removing) the least recently used key.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.nodes[self.tail].key)
        }
    }

    /// Removes a specific key. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Iterates keys from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = &K> {
        LruIter {
            list: self,
            cur: self.head,
            forward: true,
        }
    }

    /// Iterates keys from least to most recently used (eviction order) —
    /// what a policy scans when it searches near the LRU end, e.g. CFLRU's
    /// clean-first window.
    pub fn iter_lru(&self) -> impl Iterator<Item = &K> {
        LruIter {
            list: self,
            cur: self.tail,
            forward: false,
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

struct LruIter<'a, K: Eq + Hash + Clone> {
    list: &'a LruList<K>,
    cur: usize,
    forward: bool,
}

impl<'a, K: Eq + Hash + Clone> Iterator for LruIter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = if self.forward { node.next } else { node.prev };
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_pop_order() {
        let mut l = LruList::new();
        l.insert_mru(1);
        l.insert_mru(2);
        l.insert_mru(3);
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        l.insert_mru(1);
        l.insert_mru(2);
        l.insert_mru(3);
        assert!(l.touch(&1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(1));
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut l: LruList<u32> = LruList::new();
        assert!(!l.touch(&42));
    }

    #[test]
    fn reinsert_moves_to_front_without_duplicating() {
        let mut l = LruList::new();
        assert!(l.insert_mru(1));
        assert!(l.insert_mru(2));
        assert!(!l.insert_mru(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(1));
    }

    #[test]
    fn remove_specific_key() {
        let mut l = LruList::new();
        l.insert_mru("a");
        l.insert_mru("b");
        l.insert_mru("c");
        assert!(l.remove(&"b"));
        assert!(!l.remove(&"b"));
        assert_eq!(l.pop_lru(), Some("a"));
        assert_eq!(l.pop_lru(), Some("c"));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut l = LruList::new();
        l.insert_mru(7);
        assert_eq!(l.peek_lru(), Some(&7));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn iter_mru_order() {
        let mut l = LruList::new();
        for i in 0..5 {
            l.insert_mru(i);
        }
        l.touch(&0);
        let order: Vec<i32> = l.iter_mru().copied().collect();
        assert_eq!(order, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn iter_lru_is_the_reverse_of_iter_mru() {
        let mut l = LruList::new();
        for i in 0..5 {
            l.insert_mru(i);
        }
        l.touch(&2);
        let mru: Vec<i32> = l.iter_mru().copied().collect();
        let mut lru: Vec<i32> = l.iter_lru().copied().collect();
        lru.reverse();
        assert_eq!(mru, lru);
        assert_eq!(l.iter_lru().next(), l.peek_lru());
        let empty: LruList<i32> = LruList::new();
        assert_eq!(empty.iter_lru().count(), 0);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut l = LruList::new();
        for i in 0..100 {
            l.insert_mru(i);
        }
        for i in 0..100 {
            assert!(l.remove(&i));
        }
        for i in 100..200 {
            l.insert_mru(i);
        }
        // The slab should not have grown beyond the peak live population.
        assert!(l.nodes.len() <= 100);
        assert_eq!(l.len(), 100);
    }
}
