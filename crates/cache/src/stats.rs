//! Cache statistics.
//!
//! The paper's evaluation reports, per query and per storage configuration,
//! the number of accessed blocks and cache hits broken down by request
//! class (Tables 4, 7) and by assigned priority (Tables 5, 6). These
//! counters are collected here, along with counts of the six cache actions
//! of Section 5.1.

use hstorage_storage::{DeviceStats, RequestClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The six actions a cache may take for a request (Section 5.1), plus the
/// write-buffer flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheAction {
    /// Blocks already in cache.
    CacheHit,
    /// Blocks read from the second level into the cache.
    ReadAllocation,
    /// Blocks written into the cache.
    WriteAllocation,
    /// Blocks transferred directly between OS and second level.
    Bypassing,
    /// Cached blocks moved to a different priority group.
    ReAllocation,
    /// Cached blocks removed to make room.
    Eviction,
    /// Cached blocks invalidated by TRIM.
    Trim,
    /// Dirty write-buffer contents flushed to the second level.
    WriteBufferFlush,
}

impl CacheAction {
    /// Every action, in declaration order. The order is the array layout of
    /// [`AtomicCacheStats`]: `ALL[a.index()] == a`.
    pub const ALL: [CacheAction; 8] = [
        CacheAction::CacheHit,
        CacheAction::ReadAllocation,
        CacheAction::WriteAllocation,
        CacheAction::Bypassing,
        CacheAction::ReAllocation,
        CacheAction::Eviction,
        CacheAction::Trim,
        CacheAction::WriteBufferFlush,
    ];

    /// The action's position in [`CacheAction::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Blocks accessed vs blocks served from cache, the unit of every
/// hit-ratio table in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Number of blocks accessed.
    pub accessed_blocks: u64,
    /// Of those, blocks that were cache hits.
    pub cache_hits: u64,
}

impl ClassCounters {
    /// Cache hit ratio in `[0, 1]`; zero when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.accessed_blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.accessed_blocks as f64
        }
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.accessed_blocks - self.cache_hits
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &ClassCounters) {
        self.accessed_blocks += other.accessed_blocks;
        self.cache_hits += other.cache_hits;
    }
}

/// Hot-path contention diagnostics: how often the cache took a shard
/// stripe mutex versus serving a request entirely on the optimistic
/// lock-free path.
///
/// These counters describe the *execution path*, not the cache's logical
/// behaviour: two runs that make identical caching decisions can take
/// different counts depending on thread interleaving and whether the
/// optimistic read path is enabled. They are therefore excluded from
/// [`CacheStats`]'s `PartialEq` — the equivalence suites (sharded ≡
/// unsharded, batched ≡ sequential, optimistic ≡ locked) compare logical
/// state only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionCounters {
    /// Times a shard's stripe mutex was acquired on the submission paths
    /// (per-block work, trims, and write-buffer drains; read-only probes
    /// and statistics reads never count — they no longer take the mutex).
    pub lock_acquisitions: u64,
    /// Single-block repeat read hits served entirely through the
    /// optimistic read view, without touching the stripe mutex.
    pub fast_path_hits: u64,
}

impl ContentionCounters {
    /// Fraction of `lock_acquisitions + fast_path_hits` served on the
    /// fast path; zero when nothing was counted.
    pub fn fast_path_rate(&self) -> f64 {
        let total = self.lock_acquisitions + self.fast_path_hits;
        if total == 0 {
            0.0
        } else {
            self.fast_path_hits as f64 / total as f64
        }
    }

    /// Sums another counter set into this one.
    pub fn merge(&mut self, other: &ContentionCounters) {
        self.lock_acquisitions += other.lock_acquisitions;
        self.fast_path_hits += other.fast_path_hits;
    }
}

/// Full statistics snapshot of a storage system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accessed blocks / hits per request class.
    pub per_class: BTreeMap<String, ClassCounters>,
    /// Accessed blocks / hits per assigned caching priority (hStorage-DB
    /// configurations only; the LRU baseline records the priority the
    /// request *would* have had, to reproduce Table 6).
    pub per_priority: BTreeMap<u8, ClassCounters>,
    /// Counts of each cache action, in blocks.
    pub actions: BTreeMap<String, u64>,
    /// Blocks currently resident in the cache.
    pub resident_blocks: u64,
    /// Statistics of the first-level (SSD) device, if present.
    pub ssd: Option<DeviceStats>,
    /// Statistics of the second-level (HDD) device, if present.
    pub hdd: Option<DeviceStats>,
    /// Lock-vs-fast-path diagnostics. Excluded from `PartialEq` (see
    /// [`ContentionCounters`]).
    pub contention: ContentionCounters,
}

/// Equality compares the cache's *logical* state — class/priority/action
/// counters, residency and device statistics — and deliberately ignores
/// [`CacheStats::contention`], which varies with thread interleaving and
/// the optimistic-read configuration without the cache behaving any
/// differently.
impl PartialEq for CacheStats {
    fn eq(&self, other: &Self) -> bool {
        self.per_class == other.per_class
            && self.per_priority == other.per_priority
            && self.actions == other.actions
            && self.resident_blocks == other.resident_blocks
            && self.ssd == other.ssd
            && self.hdd == other.hdd
    }
}

impl CacheStats {
    /// Creates an empty statistics snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `blocks` accessed of class `class`, of which `hits` were
    /// served from cache.
    pub fn record_class(&mut self, class: RequestClass, blocks: u64, hits: u64) {
        let c = self.per_class.entry(class.label().to_string()).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Records `blocks` accessed at priority `prio`, of which `hits` were
    /// served from cache.
    pub fn record_priority(&mut self, prio: u8, blocks: u64, hits: u64) {
        let c = self.per_priority.entry(prio).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Adds `blocks` to the counter of `action`.
    pub fn record_action(&mut self, action: CacheAction, blocks: u64) {
        *self.actions.entry(format!("{action:?}")).or_default() += blocks;
    }

    /// Counter for one request class (zero if never seen).
    pub fn class(&self, class: RequestClass) -> ClassCounters {
        self.per_class
            .get(class.label())
            .copied()
            .unwrap_or_default()
    }

    /// Counter for one priority (zero if never seen).
    pub fn priority(&self, prio: u8) -> ClassCounters {
        self.per_priority.get(&prio).copied().unwrap_or_default()
    }

    /// Count of one action (zero if never taken).
    pub fn action(&self, action: CacheAction) -> u64 {
        self.actions
            .get(&format!("{action:?}"))
            .copied()
            .unwrap_or_default()
    }

    /// Totals across all request classes.
    pub fn totals(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in self.per_class.values() {
            t.merge(c);
        }
        t
    }

    /// Folds another snapshot into this one: class, priority and action
    /// counters are summed, and `resident_blocks` accumulates. Device
    /// statistics are *not* merged (shards share one device pair); the
    /// caller attaches them once on the aggregate. This is how the sharded
    /// cache's striped statistics are combined on read.
    pub fn merge(&mut self, other: &CacheStats) {
        for (class, counters) in &other.per_class {
            self.per_class
                .entry(class.clone())
                .or_default()
                .merge(counters);
        }
        for (prio, counters) in &other.per_priority {
            self.per_priority.entry(*prio).or_default().merge(counters);
        }
        for (action, count) in &other.actions {
            *self.actions.entry(action.clone()).or_default() += count;
        }
        self.resident_blocks += other.resident_blocks;
        self.contention.merge(&other.contention);
    }
}

/// Lock-free statistics for one cache shard: every counter of
/// [`CacheStats`] that the submission paths update, held on relaxed
/// [`AtomicU64`]s so recording never takes (or extends) the shard's stripe
/// mutex and reading never blocks a writer.
///
/// Aggregation is order-independent: [`AtomicCacheStats::snapshot`]
/// produces a [`CacheStats`] that merges (via [`CacheStats::merge`]) to
/// exactly what the old mutex-guarded per-shard `CacheStats` would have
/// accumulated for the same set of record calls, in any order and from any
/// number of threads. Key-presence semantics are preserved too: a counter
/// recorded with a zero amount still creates its map entry in the
/// snapshot, just as `CacheStats::record_action(a, 0)` creates a zero
/// entry (per-shard "seen" bitmasks track which keys were ever touched).
///
/// Individual counters are `Relaxed`; a snapshot taken while writers are
/// active is a per-counter-atomic view, not a cross-counter consistent
/// cut. Quiesced (no concurrent submits), it is exact — which is what the
/// equivalence suites and the bench gate read.
pub struct AtomicCacheStats {
    class_accessed: [AtomicU64; CLASS_SLOTS],
    class_hits: [AtomicU64; CLASS_SLOTS],
    class_seen: AtomicU64,
    prio_accessed: [AtomicU64; PRIO_SLOTS],
    prio_hits: [AtomicU64; PRIO_SLOTS],
    prio_seen: [AtomicU64; PRIO_SLOTS / 64],
    actions: [AtomicU64; ACTION_SLOTS],
    actions_seen: AtomicU64,
    lock_acquisitions: AtomicU64,
    fast_path_hits: AtomicU64,
}

const CLASS_SLOTS: usize = 5;
const PRIO_SLOTS: usize = 256;
const ACTION_SLOTS: usize = CacheAction::ALL.len();

// `[AtomicU64; 256]` has no blanket `Default`/`Debug` story that reads
// well, so both are hand-rolled: `Default` zero-fills, `Debug` shows the
// materialized snapshot instead of 500+ raw atomics.
impl Default for AtomicCacheStats {
    fn default() -> Self {
        AtomicCacheStats {
            class_accessed: std::array::from_fn(|_| AtomicU64::new(0)),
            class_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            class_seen: AtomicU64::new(0),
            prio_accessed: std::array::from_fn(|_| AtomicU64::new(0)),
            prio_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            prio_seen: std::array::from_fn(|_| AtomicU64::new(0)),
            actions: std::array::from_fn(|_| AtomicU64::new(0)),
            actions_seen: AtomicU64::new(0),
            lock_acquisitions: AtomicU64::new(0),
            fast_path_hits: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for AtomicCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicCacheStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl AtomicCacheStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `blocks` accessed of class `class`, of which `hits` were
    /// served from cache. Equivalent to [`CacheStats::record_class`].
    pub fn record_class(&self, class: RequestClass, blocks: u64, hits: u64) {
        let i = class as usize;
        self.class_seen.fetch_or(1 << i, Ordering::Relaxed);
        self.class_accessed[i].fetch_add(blocks, Ordering::Relaxed);
        self.class_hits[i].fetch_add(hits, Ordering::Relaxed);
    }

    /// Records `blocks` accessed at priority `prio`, of which `hits` were
    /// served from cache. Equivalent to [`CacheStats::record_priority`].
    pub fn record_priority(&self, prio: u8, blocks: u64, hits: u64) {
        let i = prio as usize;
        self.prio_seen[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
        self.prio_accessed[i].fetch_add(blocks, Ordering::Relaxed);
        self.prio_hits[i].fetch_add(hits, Ordering::Relaxed);
    }

    /// Adds `blocks` to the counter of `action`. Equivalent to
    /// [`CacheStats::record_action`] (including the zero-amount case: the
    /// action's key appears in the snapshot even when `blocks == 0`).
    pub fn record_action(&self, action: CacheAction, blocks: u64) {
        let i = action.index();
        self.actions_seen.fetch_or(1 << i, Ordering::Relaxed);
        self.actions[i].fetch_add(blocks, Ordering::Relaxed);
    }

    /// Counts one acquisition of the owning shard's stripe mutex.
    pub fn record_lock_acquisition(&self) {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request served entirely on the optimistic fast path.
    pub fn record_fast_path_hit(&self) {
        self.fast_path_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Materializes the counters as a [`CacheStats`] (no device statistics
    /// and no residency — the engine attaches both on the aggregate, as it
    /// did for the locked per-shard snapshots).
    pub fn snapshot(&self) -> CacheStats {
        let mut out = CacheStats::new();
        let class_seen = self.class_seen.load(Ordering::Relaxed);
        for (i, class) in RequestClass::all().iter().enumerate() {
            if class_seen & (1 << i) != 0 {
                out.per_class.insert(
                    class.label().to_string(),
                    ClassCounters {
                        accessed_blocks: self.class_accessed[i].load(Ordering::Relaxed),
                        cache_hits: self.class_hits[i].load(Ordering::Relaxed),
                    },
                );
            }
        }
        for i in 0..PRIO_SLOTS {
            if self.prio_seen[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0 {
                out.per_priority.insert(
                    i as u8,
                    ClassCounters {
                        accessed_blocks: self.prio_accessed[i].load(Ordering::Relaxed),
                        cache_hits: self.prio_hits[i].load(Ordering::Relaxed),
                    },
                );
            }
        }
        let actions_seen = self.actions_seen.load(Ordering::Relaxed);
        for (i, action) in CacheAction::ALL.iter().enumerate() {
            if actions_seen & (1 << i) != 0 {
                out.actions.insert(
                    format!("{action:?}"),
                    self.actions[i].load(Ordering::Relaxed),
                );
            }
        }
        out.contention = ContentionCounters {
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            fast_path_hits: self.fast_path_hits.load(Ordering::Relaxed),
        };
        out
    }

    /// Zeroes every counter and every "seen" mask.
    pub fn reset(&self) {
        for a in self
            .class_accessed
            .iter()
            .chain(self.class_hits.iter())
            .chain(self.prio_accessed.iter())
            .chain(self.prio_hits.iter())
            .chain(self.prio_seen.iter())
            .chain(self.actions.iter())
        {
            a.store(0, Ordering::Relaxed);
        }
        self.class_seen.store(0, Ordering::Relaxed);
        self.actions_seen.store(0, Ordering::Relaxed);
        self.lock_acquisitions.store(0, Ordering::Relaxed);
        self.fast_path_hits.store(0, Ordering::Relaxed);
    }
}

/// Single-threaded twin of [`AtomicCacheStats`]: the same fixed
/// enum-indexed counter arrays, on plain `u64`s behind `&mut self`, for
/// systems that already serialize recording under one mutex (the LRU
/// baseline cache and the passthrough configurations).
///
/// Recording is a bounds-checked array add — no `BTreeMap` walk, no key
/// allocation — and the map-shaped [`CacheStats`] is rendered only at
/// [`LocalCacheStats::snapshot`] time. Key-presence semantics match
/// [`CacheStats`] exactly: a zero-amount record still creates its map
/// entry in the snapshot (per-slot "seen" bitmasks).
#[derive(Debug)]
pub struct LocalCacheStats {
    class_accessed: [u64; CLASS_SLOTS],
    class_hits: [u64; CLASS_SLOTS],
    class_seen: u64,
    prio_accessed: [u64; PRIO_SLOTS],
    prio_hits: [u64; PRIO_SLOTS],
    prio_seen: [u64; PRIO_SLOTS / 64],
    actions: [u64; ACTION_SLOTS],
    actions_seen: u64,
}

impl Default for LocalCacheStats {
    fn default() -> Self {
        LocalCacheStats {
            class_accessed: [0; CLASS_SLOTS],
            class_hits: [0; CLASS_SLOTS],
            class_seen: 0,
            prio_accessed: [0; PRIO_SLOTS],
            prio_hits: [0; PRIO_SLOTS],
            prio_seen: [0; PRIO_SLOTS / 64],
            actions: [0; ACTION_SLOTS],
            actions_seen: 0,
        }
    }
}

impl LocalCacheStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `blocks` accessed of class `class`, of which `hits` were
    /// served from cache. Equivalent to [`CacheStats::record_class`].
    pub fn record_class(&mut self, class: RequestClass, blocks: u64, hits: u64) {
        let i = class as usize;
        self.class_seen |= 1 << i;
        self.class_accessed[i] += blocks;
        self.class_hits[i] += hits;
    }

    /// Records `blocks` accessed at priority `prio`, of which `hits` were
    /// served from cache. Equivalent to [`CacheStats::record_priority`].
    pub fn record_priority(&mut self, prio: u8, blocks: u64, hits: u64) {
        let i = prio as usize;
        self.prio_seen[i / 64] |= 1 << (i % 64);
        self.prio_accessed[i] += blocks;
        self.prio_hits[i] += hits;
    }

    /// Adds `blocks` to the counter of `action`. Equivalent to
    /// [`CacheStats::record_action`] (including the zero-amount case).
    pub fn record_action(&mut self, action: CacheAction, blocks: u64) {
        let i = action.index();
        self.actions_seen |= 1 << i;
        self.actions[i] += blocks;
    }

    /// Materializes the counters as a [`CacheStats`] (no device statistics
    /// and no residency — the owning system attaches both).
    pub fn snapshot(&self) -> CacheStats {
        let mut out = CacheStats::new();
        for (i, class) in RequestClass::all().iter().enumerate() {
            if self.class_seen & (1 << i) != 0 {
                out.per_class.insert(
                    class.label().to_string(),
                    ClassCounters {
                        accessed_blocks: self.class_accessed[i],
                        cache_hits: self.class_hits[i],
                    },
                );
            }
        }
        for i in 0..PRIO_SLOTS {
            if self.prio_seen[i / 64] & (1 << (i % 64)) != 0 {
                out.per_priority.insert(
                    i as u8,
                    ClassCounters {
                        accessed_blocks: self.prio_accessed[i],
                        cache_hits: self.prio_hits[i],
                    },
                );
            }
        }
        for (i, action) in CacheAction::ALL.iter().enumerate() {
            if self.actions_seen & (1 << i) != 0 {
                out.actions.insert(format!("{action:?}"), self.actions[i]);
            }
        }
        out
    }

    /// Zeroes every counter and every "seen" mask.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Exact-sample latency recorder with nearest-rank percentile queries.
///
/// The service layer records one sample per completed request (simulated
/// time between submission pickup and completion), and the benches report
/// p50/p99/p999 from the full sample set — no bucketing, no interpolation,
/// so the percentiles are deterministic for a deterministic workload.
/// Samples are stored as whole nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Recorded samples in nanoseconds, in arrival order.
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (truncated to whole nanoseconds).
    pub fn record(&mut self, latency: Duration) {
        self.samples
            .push(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram's samples into this one. Percentiles are
    /// order-independent, so merging per-worker histograms in any order
    /// yields the same summary.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-th percentile (`0 < q <= 100`) by the nearest-rank method:
    /// the smallest recorded sample such that at least `q` percent of all
    /// samples are `<=` it. `None` when empty. `q` values at or below zero
    /// return the minimum sample; values above 100 the maximum.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // Relative guard before ceil(): 99.9% of 10,000 computes to a hair
        // above 9,990.0 in f64, which would otherwise skip to rank 9,991.
        let exact = q * n as f64 / 100.0;
        let rank = (exact - exact.abs() * 1e-12).ceil() as usize;
        Some(Duration::from_nanos(sorted[rank.clamp(1, n) - 1]))
    }

    /// Median latency (`None` when empty).
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// 99th-percentile latency (`None` when empty).
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency (`None` when empty).
    pub fn p999(&self) -> Option<Duration> {
        self.percentile(99.9)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().max().map(|&n| Duration::from_nanos(n))
    }

    /// Arithmetic mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&n| n as u128).sum();
        Some(Duration::from_nanos(
            (sum / self.samples.len() as u128) as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_and_misses() {
        let c = ClassCounters {
            accessed_blocks: 200,
            cache_hits: 50,
        };
        assert!((c.hit_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(c.misses(), 150);
        assert_eq!(ClassCounters::default().hit_ratio(), 0.0);
    }

    #[test]
    fn record_and_query_by_class_and_priority() {
        let mut s = CacheStats::new();
        s.record_class(RequestClass::Random, 100, 90);
        s.record_class(RequestClass::Random, 10, 0);
        s.record_class(RequestClass::Sequential, 1000, 3);
        s.record_priority(2, 100, 90);
        s.record_priority(3, 10, 0);

        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 110);
        assert_eq!(s.class(RequestClass::Random).cache_hits, 90);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 3);
        assert_eq!(s.class(RequestClass::Update), ClassCounters::default());
        assert_eq!(s.priority(2).cache_hits, 90);
        assert_eq!(s.totals().accessed_blocks, 1110);
    }

    #[test]
    fn merge_sums_counters_and_residents() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::Eviction, 3);
        a.resident_blocks = 10;

        let mut b = CacheStats::new();
        b.record_class(RequestClass::Random, 50, 10);
        b.record_class(RequestClass::Sequential, 5, 0);
        b.record_action(CacheAction::Eviction, 1);
        b.record_action(CacheAction::Bypassing, 9);
        b.resident_blocks = 7;

        a.merge(&b);
        assert_eq!(a.class(RequestClass::Random).accessed_blocks, 150);
        assert_eq!(a.class(RequestClass::Random).cache_hits, 50);
        assert_eq!(a.class(RequestClass::Sequential).accessed_blocks, 5);
        assert_eq!(a.priority(2).cache_hits, 40);
        assert_eq!(a.action(CacheAction::Eviction), 4);
        assert_eq!(a.action(CacheAction::Bypassing), 9);
        assert_eq!(a.resident_blocks, 17);
    }

    #[test]
    fn merge_of_empty_snapshots_is_empty() {
        let mut a = CacheStats::new();
        a.merge(&CacheStats::new());
        assert_eq!(a, CacheStats::new());
    }

    #[test]
    fn merge_into_empty_copies_cache_level_state() {
        // Aggregating a single shard must reproduce its cache-level
        // counters exactly — the N=1 case of the sharded stats read path.
        let mut shard = CacheStats::new();
        shard.record_class(RequestClass::Update, 42, 7);
        shard.record_priority(0, 42, 7);
        shard.record_action(CacheAction::WriteBufferFlush, 11);
        shard.resident_blocks = 3;

        let mut aggregate = CacheStats::new();
        aggregate.merge(&shard);
        assert_eq!(aggregate, shard);
    }

    #[test]
    fn merge_with_empty_other_is_identity() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 10, 4);
        a.record_action(CacheAction::Eviction, 2);
        a.resident_blocks = 5;
        let before = a.clone();
        a.merge(&CacheStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_handles_asymmetric_shards() {
        // Shards only record what they saw: counters present on one side
        // and absent on the other must survive the merge in both
        // directions.
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::ReadAllocation, 60);

        let mut b = CacheStats::new();
        b.record_class(RequestClass::TemporaryData, 30, 30);
        b.record_priority(1, 30, 30);
        b.record_action(CacheAction::Trim, 30);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Merge is commutative on cache-level state.
        assert_eq!(ab, ba);
        assert_eq!(ab.class(RequestClass::Random).accessed_blocks, 100);
        assert_eq!(ab.class(RequestClass::TemporaryData).cache_hits, 30);
        assert_eq!(ab.priority(1).accessed_blocks, 30);
        assert_eq!(ab.priority(2).cache_hits, 40);
        assert_eq!(ab.action(CacheAction::ReadAllocation), 60);
        assert_eq!(ab.action(CacheAction::Trim), 30);
        assert_eq!(ab.totals().accessed_blocks, 130);
    }

    #[test]
    fn merge_never_touches_device_stats() {
        // Shards share one device pair, so per-shard snapshots must not
        // contribute device stats: the caller attaches them once on the
        // aggregate.
        let mut other = CacheStats::new();
        other.ssd = Some(hstorage_storage::DeviceStats {
            blocks_read: 999,
            ..Default::default()
        });
        other.hdd = Some(hstorage_storage::DeviceStats::default());

        let mut aggregate = CacheStats::new();
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, None);
        assert_eq!(aggregate.hdd, None);

        // And an aggregate that already has device stats keeps its own.
        let mine = hstorage_storage::DeviceStats {
            blocks_written: 5,
            ..Default::default()
        };
        aggregate.ssd = Some(mine.clone());
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, Some(mine));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(42));
        let v = Some(Duration::from_micros(42));
        assert_eq!(h.len(), 1);
        assert_eq!(h.percentile(0.0), v);
        assert_eq!(h.p50(), v);
        assert_eq!(h.p99(), v);
        assert_eq!(h.p999(), v);
        assert_eq!(h.percentile(100.0), v);
        assert_eq!(h.max(), v);
        assert_eq!(h.mean(), v);
    }

    #[test]
    fn nearest_rank_percentiles_on_a_known_set() {
        // 1..=10 ms: nearest rank for q% of 10 samples is ceil(q/10).
        let mut h = LatencyHistogram::new();
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.p50(), Some(Duration::from_millis(5)));
        assert_eq!(h.percentile(90.0), Some(Duration::from_millis(9)));
        assert_eq!(h.percentile(91.0), Some(Duration::from_millis(10)));
        assert_eq!(h.p99(), Some(Duration::from_millis(10)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(10)));
        // Out-of-range q values clamp to the extremes instead of panicking.
        assert_eq!(h.percentile(-3.0), Some(Duration::from_millis(1)));
        assert_eq!(h.percentile(250.0), Some(Duration::from_millis(10)));
        assert_eq!(h.mean(), Some(Duration::from_nanos(5_500_000)));
    }

    #[test]
    fn heavy_tail_separates_the_high_percentiles() {
        // 9,990 fast requests and 10 slow stragglers: the tail must be
        // invisible at p50/p99 and dominate p999/max.
        let mut h = LatencyHistogram::new();
        for _ in 0..9_990 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_secs(1));
        }
        assert_eq!(h.p50(), Some(Duration::from_micros(100)));
        assert_eq!(h.p99(), Some(Duration::from_micros(100)));
        // rank(99.9% of 10,000) = 9,990 → still fast; 99.91 crosses over.
        assert_eq!(h.p999(), Some(Duration::from_micros(100)));
        assert_eq!(h.percentile(99.91), Some(Duration::from_secs(1)));
        assert_eq!(h.max(), Some(Duration::from_secs(1)));
        // Recording order does not matter: an interleaved twin agrees.
        let mut twin = LatencyHistogram::new();
        for i in 0..10_000u64 {
            if i % 1_000 == 0 {
                twin.record(Duration::from_secs(1));
            } else {
                twin.record(Duration::from_micros(100));
            }
        }
        for q in [50.0, 99.0, 99.9, 99.91, 100.0] {
            assert_eq!(h.percentile(q), twin.percentile(q), "q = {q}");
        }
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ms in 1..=5u64 {
            a.record(Duration::from_millis(ms));
        }
        for ms in 6..=10u64 {
            b.record(Duration::from_millis(ms));
        }
        a.merge(&b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.p50(), Some(Duration::from_millis(5)));
        assert_eq!(a.max(), Some(Duration::from_millis(10)));
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn atomic_stats_snapshot_matches_locked_recording() {
        // The same record calls against the atomic and the mutex-era
        // mutable stats must materialize identical snapshots.
        let atomic = AtomicCacheStats::new();
        let mut locked = CacheStats::new();
        for (class, blocks, hits) in [
            (RequestClass::Random, 100, 90),
            (RequestClass::Random, 10, 0),
            (RequestClass::Sequential, 1_000, 3),
        ] {
            atomic.record_class(class, blocks, hits);
            locked.record_class(class, blocks, hits);
        }
        for (prio, blocks, hits) in [(2u8, 100, 90), (3, 10, 0), (2, 5, 5)] {
            atomic.record_priority(prio, blocks, hits);
            locked.record_priority(prio, blocks, hits);
        }
        for (action, blocks) in [
            (CacheAction::CacheHit, 98),
            (CacheAction::Eviction, 4),
            (CacheAction::CacheHit, 1),
        ] {
            atomic.record_action(action, blocks);
            locked.record_action(action, blocks);
        }
        assert_eq!(atomic.snapshot(), locked);
    }

    #[test]
    fn atomic_zero_amount_records_create_their_keys() {
        // BTreeMap presence semantics: recording zero still creates the
        // entry, and the equivalence suites compare whole maps.
        let atomic = AtomicCacheStats::new();
        let mut locked = CacheStats::new();
        atomic.record_action(CacheAction::WriteBufferFlush, 0);
        locked.record_action(CacheAction::WriteBufferFlush, 0);
        atomic.record_class(RequestClass::Update, 0, 0);
        locked.record_class(RequestClass::Update, 0, 0);
        atomic.record_priority(7, 0, 0);
        locked.record_priority(7, 0, 0);
        let snap = atomic.snapshot();
        assert_eq!(snap, locked);
        assert!(snap.actions.contains_key("WriteBufferFlush"));
        assert!(snap.per_class.contains_key("update"));
        assert!(snap.per_priority.contains_key(&7));
    }

    #[test]
    fn atomic_reset_clears_counters_and_presence() {
        let atomic = AtomicCacheStats::new();
        atomic.record_class(RequestClass::Random, 10, 4);
        atomic.record_priority(2, 10, 4);
        atomic.record_action(CacheAction::CacheHit, 4);
        atomic.record_lock_acquisition();
        atomic.record_fast_path_hit();
        atomic.reset();
        let snap = atomic.snapshot();
        assert_eq!(snap, CacheStats::new());
        assert!(snap.per_class.is_empty());
        assert!(snap.actions.is_empty());
        assert_eq!(snap.contention, ContentionCounters::default());
    }

    #[test]
    fn contention_is_excluded_from_equality_but_merged() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 10, 4);
        let mut b = a.clone();
        b.contention.lock_acquisitions = 99;
        b.contention.fast_path_hits = 1;
        // Same logical state, different execution paths: still equal.
        assert_eq!(a, b);
        a.merge(&b);
        assert_eq!(a.contention.lock_acquisitions, 99);
        assert_eq!(a.contention.fast_path_hits, 1);
        assert!((b.contention.fast_path_rate() - 0.01).abs() < 1e-9);
        assert_eq!(ContentionCounters::default().fast_path_rate(), 0.0);
    }

    #[test]
    fn local_stats_snapshot_matches_locked_recording() {
        let mut local = LocalCacheStats::new();
        let mut locked = CacheStats::new();
        for (class, blocks, hits) in [
            (RequestClass::Random, 100, 90),
            (RequestClass::Random, 10, 0),
            (RequestClass::Sequential, 1_000, 3),
        ] {
            local.record_class(class, blocks, hits);
            locked.record_class(class, blocks, hits);
        }
        for (prio, blocks, hits) in [(2u8, 100, 90), (3, 10, 0), (2, 5, 5)] {
            local.record_priority(prio, blocks, hits);
            locked.record_priority(prio, blocks, hits);
        }
        for (action, blocks) in [
            (CacheAction::CacheHit, 98),
            (CacheAction::Eviction, 4),
            (CacheAction::Trim, 0),
        ] {
            local.record_action(action, blocks);
            locked.record_action(action, blocks);
        }
        assert_eq!(local.snapshot(), locked);
        // Zero-amount records still create their keys, as in the map path.
        assert!(local.snapshot().actions.contains_key("Trim"));
        local.reset();
        assert_eq!(local.snapshot(), CacheStats::new());
    }

    #[test]
    fn enum_indexed_counters_render_the_exact_legacy_key_strings() {
        // The enum-indexed hot-path counters are an internal layout
        // change: the rendered snapshot is the wire format (serialized in
        // bench reports and compared across versions), so the BTreeMap
        // keys must stay byte-identical to the strings the old map-based
        // recording produced. Both the atomic and the local twin are
        // pinned here.
        let atomic = AtomicCacheStats::new();
        let mut local = LocalCacheStats::new();
        for class in RequestClass::all() {
            atomic.record_class(class, 1, 1);
            local.record_class(class, 1, 1);
        }
        for action in CacheAction::ALL {
            atomic.record_action(action, 1);
            local.record_action(action, 1);
        }
        for prio in [0u8, 1, 2, 7, 255] {
            atomic.record_priority(prio, 1, 0);
            local.record_priority(prio, 1, 0);
        }
        for snap in [atomic.snapshot(), local.snapshot()] {
            let classes: Vec<&str> = snap.per_class.keys().map(String::as_str).collect();
            assert_eq!(
                classes,
                ["random", "sequential", "temp-trim", "temporary", "update"],
                "per_class keys must keep the legacy label strings"
            );
            let actions: Vec<&str> = snap.actions.keys().map(String::as_str).collect();
            assert_eq!(
                actions,
                [
                    "Bypassing",
                    "CacheHit",
                    "Eviction",
                    "ReAllocation",
                    "ReadAllocation",
                    "Trim",
                    "WriteAllocation",
                    "WriteBufferFlush",
                ],
                "actions keys must keep the legacy Debug-format strings"
            );
            let prios: Vec<u8> = snap.per_priority.keys().copied().collect();
            assert_eq!(prios, [0, 1, 2, 7, 255]);
        }
    }

    #[test]
    fn actions_accumulate() {
        let mut s = CacheStats::new();
        s.record_action(CacheAction::Eviction, 5);
        s.record_action(CacheAction::Eviction, 7);
        s.record_action(CacheAction::Bypassing, 3);
        assert_eq!(s.action(CacheAction::Eviction), 12);
        assert_eq!(s.action(CacheAction::Bypassing), 3);
        assert_eq!(s.action(CacheAction::CacheHit), 0);
    }
}
