//! Cache statistics.
//!
//! The paper's evaluation reports, per query and per storage configuration,
//! the number of accessed blocks and cache hits broken down by request
//! class (Tables 4, 7) and by assigned priority (Tables 5, 6). These
//! counters are collected here, along with counts of the six cache actions
//! of Section 5.1.

use hstorage_storage::{DeviceStats, RequestClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// The six actions a cache may take for a request (Section 5.1), plus the
/// write-buffer flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheAction {
    /// Blocks already in cache.
    CacheHit,
    /// Blocks read from the second level into the cache.
    ReadAllocation,
    /// Blocks written into the cache.
    WriteAllocation,
    /// Blocks transferred directly between OS and second level.
    Bypassing,
    /// Cached blocks moved to a different priority group.
    ReAllocation,
    /// Cached blocks removed to make room.
    Eviction,
    /// Cached blocks invalidated by TRIM.
    Trim,
    /// Dirty write-buffer contents flushed to the second level.
    WriteBufferFlush,
}

/// Blocks accessed vs blocks served from cache, the unit of every
/// hit-ratio table in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Number of blocks accessed.
    pub accessed_blocks: u64,
    /// Of those, blocks that were cache hits.
    pub cache_hits: u64,
}

impl ClassCounters {
    /// Cache hit ratio in `[0, 1]`; zero when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.accessed_blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.accessed_blocks as f64
        }
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.accessed_blocks - self.cache_hits
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &ClassCounters) {
        self.accessed_blocks += other.accessed_blocks;
        self.cache_hits += other.cache_hits;
    }
}

/// Full statistics snapshot of a storage system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accessed blocks / hits per request class.
    pub per_class: BTreeMap<String, ClassCounters>,
    /// Accessed blocks / hits per assigned caching priority (hStorage-DB
    /// configurations only; the LRU baseline records the priority the
    /// request *would* have had, to reproduce Table 6).
    pub per_priority: BTreeMap<u8, ClassCounters>,
    /// Counts of each cache action, in blocks.
    pub actions: BTreeMap<String, u64>,
    /// Blocks currently resident in the cache.
    pub resident_blocks: u64,
    /// Statistics of the first-level (SSD) device, if present.
    pub ssd: Option<DeviceStats>,
    /// Statistics of the second-level (HDD) device, if present.
    pub hdd: Option<DeviceStats>,
}

impl CacheStats {
    /// Creates an empty statistics snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `blocks` accessed of class `class`, of which `hits` were
    /// served from cache.
    pub fn record_class(&mut self, class: RequestClass, blocks: u64, hits: u64) {
        let c = self.per_class.entry(class.label().to_string()).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Records `blocks` accessed at priority `prio`, of which `hits` were
    /// served from cache.
    pub fn record_priority(&mut self, prio: u8, blocks: u64, hits: u64) {
        let c = self.per_priority.entry(prio).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Adds `blocks` to the counter of `action`.
    pub fn record_action(&mut self, action: CacheAction, blocks: u64) {
        *self.actions.entry(format!("{action:?}")).or_default() += blocks;
    }

    /// Counter for one request class (zero if never seen).
    pub fn class(&self, class: RequestClass) -> ClassCounters {
        self.per_class
            .get(class.label())
            .copied()
            .unwrap_or_default()
    }

    /// Counter for one priority (zero if never seen).
    pub fn priority(&self, prio: u8) -> ClassCounters {
        self.per_priority.get(&prio).copied().unwrap_or_default()
    }

    /// Count of one action (zero if never taken).
    pub fn action(&self, action: CacheAction) -> u64 {
        self.actions
            .get(&format!("{action:?}"))
            .copied()
            .unwrap_or_default()
    }

    /// Totals across all request classes.
    pub fn totals(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in self.per_class.values() {
            t.merge(c);
        }
        t
    }

    /// Folds another snapshot into this one: class, priority and action
    /// counters are summed, and `resident_blocks` accumulates. Device
    /// statistics are *not* merged (shards share one device pair); the
    /// caller attaches them once on the aggregate. This is how the sharded
    /// cache's striped statistics are combined on read.
    pub fn merge(&mut self, other: &CacheStats) {
        for (class, counters) in &other.per_class {
            self.per_class
                .entry(class.clone())
                .or_default()
                .merge(counters);
        }
        for (prio, counters) in &other.per_priority {
            self.per_priority.entry(*prio).or_default().merge(counters);
        }
        for (action, count) in &other.actions {
            *self.actions.entry(action.clone()).or_default() += count;
        }
        self.resident_blocks += other.resident_blocks;
    }
}

/// Exact-sample latency recorder with nearest-rank percentile queries.
///
/// The service layer records one sample per completed request (simulated
/// time between submission pickup and completion), and the benches report
/// p50/p99/p999 from the full sample set — no bucketing, no interpolation,
/// so the percentiles are deterministic for a deterministic workload.
/// Samples are stored as whole nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Recorded samples in nanoseconds, in arrival order.
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (truncated to whole nanoseconds).
    pub fn record(&mut self, latency: Duration) {
        self.samples
            .push(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram's samples into this one. Percentiles are
    /// order-independent, so merging per-worker histograms in any order
    /// yields the same summary.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-th percentile (`0 < q <= 100`) by the nearest-rank method:
    /// the smallest recorded sample such that at least `q` percent of all
    /// samples are `<=` it. `None` when empty. `q` values at or below zero
    /// return the minimum sample; values above 100 the maximum.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // Relative guard before ceil(): 99.9% of 10,000 computes to a hair
        // above 9,990.0 in f64, which would otherwise skip to rank 9,991.
        let exact = q * n as f64 / 100.0;
        let rank = (exact - exact.abs() * 1e-12).ceil() as usize;
        Some(Duration::from_nanos(sorted[rank.clamp(1, n) - 1]))
    }

    /// Median latency (`None` when empty).
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// 99th-percentile latency (`None` when empty).
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency (`None` when empty).
    pub fn p999(&self) -> Option<Duration> {
        self.percentile(99.9)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().max().map(|&n| Duration::from_nanos(n))
    }

    /// Arithmetic mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&n| n as u128).sum();
        Some(Duration::from_nanos(
            (sum / self.samples.len() as u128) as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_and_misses() {
        let c = ClassCounters {
            accessed_blocks: 200,
            cache_hits: 50,
        };
        assert!((c.hit_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(c.misses(), 150);
        assert_eq!(ClassCounters::default().hit_ratio(), 0.0);
    }

    #[test]
    fn record_and_query_by_class_and_priority() {
        let mut s = CacheStats::new();
        s.record_class(RequestClass::Random, 100, 90);
        s.record_class(RequestClass::Random, 10, 0);
        s.record_class(RequestClass::Sequential, 1000, 3);
        s.record_priority(2, 100, 90);
        s.record_priority(3, 10, 0);

        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 110);
        assert_eq!(s.class(RequestClass::Random).cache_hits, 90);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 3);
        assert_eq!(s.class(RequestClass::Update), ClassCounters::default());
        assert_eq!(s.priority(2).cache_hits, 90);
        assert_eq!(s.totals().accessed_blocks, 1110);
    }

    #[test]
    fn merge_sums_counters_and_residents() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::Eviction, 3);
        a.resident_blocks = 10;

        let mut b = CacheStats::new();
        b.record_class(RequestClass::Random, 50, 10);
        b.record_class(RequestClass::Sequential, 5, 0);
        b.record_action(CacheAction::Eviction, 1);
        b.record_action(CacheAction::Bypassing, 9);
        b.resident_blocks = 7;

        a.merge(&b);
        assert_eq!(a.class(RequestClass::Random).accessed_blocks, 150);
        assert_eq!(a.class(RequestClass::Random).cache_hits, 50);
        assert_eq!(a.class(RequestClass::Sequential).accessed_blocks, 5);
        assert_eq!(a.priority(2).cache_hits, 40);
        assert_eq!(a.action(CacheAction::Eviction), 4);
        assert_eq!(a.action(CacheAction::Bypassing), 9);
        assert_eq!(a.resident_blocks, 17);
    }

    #[test]
    fn merge_of_empty_snapshots_is_empty() {
        let mut a = CacheStats::new();
        a.merge(&CacheStats::new());
        assert_eq!(a, CacheStats::new());
    }

    #[test]
    fn merge_into_empty_copies_cache_level_state() {
        // Aggregating a single shard must reproduce its cache-level
        // counters exactly — the N=1 case of the sharded stats read path.
        let mut shard = CacheStats::new();
        shard.record_class(RequestClass::Update, 42, 7);
        shard.record_priority(0, 42, 7);
        shard.record_action(CacheAction::WriteBufferFlush, 11);
        shard.resident_blocks = 3;

        let mut aggregate = CacheStats::new();
        aggregate.merge(&shard);
        assert_eq!(aggregate, shard);
    }

    #[test]
    fn merge_with_empty_other_is_identity() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 10, 4);
        a.record_action(CacheAction::Eviction, 2);
        a.resident_blocks = 5;
        let before = a.clone();
        a.merge(&CacheStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_handles_asymmetric_shards() {
        // Shards only record what they saw: counters present on one side
        // and absent on the other must survive the merge in both
        // directions.
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::ReadAllocation, 60);

        let mut b = CacheStats::new();
        b.record_class(RequestClass::TemporaryData, 30, 30);
        b.record_priority(1, 30, 30);
        b.record_action(CacheAction::Trim, 30);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Merge is commutative on cache-level state.
        assert_eq!(ab, ba);
        assert_eq!(ab.class(RequestClass::Random).accessed_blocks, 100);
        assert_eq!(ab.class(RequestClass::TemporaryData).cache_hits, 30);
        assert_eq!(ab.priority(1).accessed_blocks, 30);
        assert_eq!(ab.priority(2).cache_hits, 40);
        assert_eq!(ab.action(CacheAction::ReadAllocation), 60);
        assert_eq!(ab.action(CacheAction::Trim), 30);
        assert_eq!(ab.totals().accessed_blocks, 130);
    }

    #[test]
    fn merge_never_touches_device_stats() {
        // Shards share one device pair, so per-shard snapshots must not
        // contribute device stats: the caller attaches them once on the
        // aggregate.
        let mut other = CacheStats::new();
        other.ssd = Some(hstorage_storage::DeviceStats {
            blocks_read: 999,
            ..Default::default()
        });
        other.hdd = Some(hstorage_storage::DeviceStats::default());

        let mut aggregate = CacheStats::new();
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, None);
        assert_eq!(aggregate.hdd, None);

        // And an aggregate that already has device stats keeps its own.
        let mine = hstorage_storage::DeviceStats {
            blocks_written: 5,
            ..Default::default()
        };
        aggregate.ssd = Some(mine.clone());
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, Some(mine));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(42));
        let v = Some(Duration::from_micros(42));
        assert_eq!(h.len(), 1);
        assert_eq!(h.percentile(0.0), v);
        assert_eq!(h.p50(), v);
        assert_eq!(h.p99(), v);
        assert_eq!(h.p999(), v);
        assert_eq!(h.percentile(100.0), v);
        assert_eq!(h.max(), v);
        assert_eq!(h.mean(), v);
    }

    #[test]
    fn nearest_rank_percentiles_on_a_known_set() {
        // 1..=10 ms: nearest rank for q% of 10 samples is ceil(q/10).
        let mut h = LatencyHistogram::new();
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.p50(), Some(Duration::from_millis(5)));
        assert_eq!(h.percentile(90.0), Some(Duration::from_millis(9)));
        assert_eq!(h.percentile(91.0), Some(Duration::from_millis(10)));
        assert_eq!(h.p99(), Some(Duration::from_millis(10)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(10)));
        // Out-of-range q values clamp to the extremes instead of panicking.
        assert_eq!(h.percentile(-3.0), Some(Duration::from_millis(1)));
        assert_eq!(h.percentile(250.0), Some(Duration::from_millis(10)));
        assert_eq!(h.mean(), Some(Duration::from_nanos(5_500_000)));
    }

    #[test]
    fn heavy_tail_separates_the_high_percentiles() {
        // 9,990 fast requests and 10 slow stragglers: the tail must be
        // invisible at p50/p99 and dominate p999/max.
        let mut h = LatencyHistogram::new();
        for _ in 0..9_990 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_secs(1));
        }
        assert_eq!(h.p50(), Some(Duration::from_micros(100)));
        assert_eq!(h.p99(), Some(Duration::from_micros(100)));
        // rank(99.9% of 10,000) = 9,990 → still fast; 99.91 crosses over.
        assert_eq!(h.p999(), Some(Duration::from_micros(100)));
        assert_eq!(h.percentile(99.91), Some(Duration::from_secs(1)));
        assert_eq!(h.max(), Some(Duration::from_secs(1)));
        // Recording order does not matter: an interleaved twin agrees.
        let mut twin = LatencyHistogram::new();
        for i in 0..10_000u64 {
            if i % 1_000 == 0 {
                twin.record(Duration::from_secs(1));
            } else {
                twin.record(Duration::from_micros(100));
            }
        }
        for q in [50.0, 99.0, 99.9, 99.91, 100.0] {
            assert_eq!(h.percentile(q), twin.percentile(q), "q = {q}");
        }
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ms in 1..=5u64 {
            a.record(Duration::from_millis(ms));
        }
        for ms in 6..=10u64 {
            b.record(Duration::from_millis(ms));
        }
        a.merge(&b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.p50(), Some(Duration::from_millis(5)));
        assert_eq!(a.max(), Some(Duration::from_millis(10)));
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn actions_accumulate() {
        let mut s = CacheStats::new();
        s.record_action(CacheAction::Eviction, 5);
        s.record_action(CacheAction::Eviction, 7);
        s.record_action(CacheAction::Bypassing, 3);
        assert_eq!(s.action(CacheAction::Eviction), 12);
        assert_eq!(s.action(CacheAction::Bypassing), 3);
        assert_eq!(s.action(CacheAction::CacheHit), 0);
    }
}
