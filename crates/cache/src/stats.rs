//! Cache statistics.
//!
//! The paper's evaluation reports, per query and per storage configuration,
//! the number of accessed blocks and cache hits broken down by request
//! class (Tables 4, 7) and by assigned priority (Tables 5, 6). These
//! counters are collected here, along with counts of the six cache actions
//! of Section 5.1.

use hstorage_storage::{DeviceStats, RequestClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The six actions a cache may take for a request (Section 5.1), plus the
/// write-buffer flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheAction {
    /// Blocks already in cache.
    CacheHit,
    /// Blocks read from the second level into the cache.
    ReadAllocation,
    /// Blocks written into the cache.
    WriteAllocation,
    /// Blocks transferred directly between OS and second level.
    Bypassing,
    /// Cached blocks moved to a different priority group.
    ReAllocation,
    /// Cached blocks removed to make room.
    Eviction,
    /// Cached blocks invalidated by TRIM.
    Trim,
    /// Dirty write-buffer contents flushed to the second level.
    WriteBufferFlush,
}

/// Blocks accessed vs blocks served from cache, the unit of every
/// hit-ratio table in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Number of blocks accessed.
    pub accessed_blocks: u64,
    /// Of those, blocks that were cache hits.
    pub cache_hits: u64,
}

impl ClassCounters {
    /// Cache hit ratio in `[0, 1]`; zero when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.accessed_blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.accessed_blocks as f64
        }
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.accessed_blocks - self.cache_hits
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &ClassCounters) {
        self.accessed_blocks += other.accessed_blocks;
        self.cache_hits += other.cache_hits;
    }
}

/// Full statistics snapshot of a storage system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accessed blocks / hits per request class.
    pub per_class: BTreeMap<String, ClassCounters>,
    /// Accessed blocks / hits per assigned caching priority (hStorage-DB
    /// configurations only; the LRU baseline records the priority the
    /// request *would* have had, to reproduce Table 6).
    pub per_priority: BTreeMap<u8, ClassCounters>,
    /// Counts of each cache action, in blocks.
    pub actions: BTreeMap<String, u64>,
    /// Blocks currently resident in the cache.
    pub resident_blocks: u64,
    /// Statistics of the first-level (SSD) device, if present.
    pub ssd: Option<DeviceStats>,
    /// Statistics of the second-level (HDD) device, if present.
    pub hdd: Option<DeviceStats>,
}

impl CacheStats {
    /// Creates an empty statistics snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `blocks` accessed of class `class`, of which `hits` were
    /// served from cache.
    pub fn record_class(&mut self, class: RequestClass, blocks: u64, hits: u64) {
        let c = self.per_class.entry(class.label().to_string()).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Records `blocks` accessed at priority `prio`, of which `hits` were
    /// served from cache.
    pub fn record_priority(&mut self, prio: u8, blocks: u64, hits: u64) {
        let c = self.per_priority.entry(prio).or_default();
        c.accessed_blocks += blocks;
        c.cache_hits += hits;
    }

    /// Adds `blocks` to the counter of `action`.
    pub fn record_action(&mut self, action: CacheAction, blocks: u64) {
        *self.actions.entry(format!("{action:?}")).or_default() += blocks;
    }

    /// Counter for one request class (zero if never seen).
    pub fn class(&self, class: RequestClass) -> ClassCounters {
        self.per_class
            .get(class.label())
            .copied()
            .unwrap_or_default()
    }

    /// Counter for one priority (zero if never seen).
    pub fn priority(&self, prio: u8) -> ClassCounters {
        self.per_priority.get(&prio).copied().unwrap_or_default()
    }

    /// Count of one action (zero if never taken).
    pub fn action(&self, action: CacheAction) -> u64 {
        self.actions
            .get(&format!("{action:?}"))
            .copied()
            .unwrap_or_default()
    }

    /// Totals across all request classes.
    pub fn totals(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in self.per_class.values() {
            t.merge(c);
        }
        t
    }

    /// Folds another snapshot into this one: class, priority and action
    /// counters are summed, and `resident_blocks` accumulates. Device
    /// statistics are *not* merged (shards share one device pair); the
    /// caller attaches them once on the aggregate. This is how the sharded
    /// cache's striped statistics are combined on read.
    pub fn merge(&mut self, other: &CacheStats) {
        for (class, counters) in &other.per_class {
            self.per_class
                .entry(class.clone())
                .or_default()
                .merge(counters);
        }
        for (prio, counters) in &other.per_priority {
            self.per_priority.entry(*prio).or_default().merge(counters);
        }
        for (action, count) in &other.actions {
            *self.actions.entry(action.clone()).or_default() += count;
        }
        self.resident_blocks += other.resident_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_and_misses() {
        let c = ClassCounters {
            accessed_blocks: 200,
            cache_hits: 50,
        };
        assert!((c.hit_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(c.misses(), 150);
        assert_eq!(ClassCounters::default().hit_ratio(), 0.0);
    }

    #[test]
    fn record_and_query_by_class_and_priority() {
        let mut s = CacheStats::new();
        s.record_class(RequestClass::Random, 100, 90);
        s.record_class(RequestClass::Random, 10, 0);
        s.record_class(RequestClass::Sequential, 1000, 3);
        s.record_priority(2, 100, 90);
        s.record_priority(3, 10, 0);

        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 110);
        assert_eq!(s.class(RequestClass::Random).cache_hits, 90);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 3);
        assert_eq!(s.class(RequestClass::Update), ClassCounters::default());
        assert_eq!(s.priority(2).cache_hits, 90);
        assert_eq!(s.totals().accessed_blocks, 1110);
    }

    #[test]
    fn merge_sums_counters_and_residents() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::Eviction, 3);
        a.resident_blocks = 10;

        let mut b = CacheStats::new();
        b.record_class(RequestClass::Random, 50, 10);
        b.record_class(RequestClass::Sequential, 5, 0);
        b.record_action(CacheAction::Eviction, 1);
        b.record_action(CacheAction::Bypassing, 9);
        b.resident_blocks = 7;

        a.merge(&b);
        assert_eq!(a.class(RequestClass::Random).accessed_blocks, 150);
        assert_eq!(a.class(RequestClass::Random).cache_hits, 50);
        assert_eq!(a.class(RequestClass::Sequential).accessed_blocks, 5);
        assert_eq!(a.priority(2).cache_hits, 40);
        assert_eq!(a.action(CacheAction::Eviction), 4);
        assert_eq!(a.action(CacheAction::Bypassing), 9);
        assert_eq!(a.resident_blocks, 17);
    }

    #[test]
    fn merge_of_empty_snapshots_is_empty() {
        let mut a = CacheStats::new();
        a.merge(&CacheStats::new());
        assert_eq!(a, CacheStats::new());
    }

    #[test]
    fn merge_into_empty_copies_cache_level_state() {
        // Aggregating a single shard must reproduce its cache-level
        // counters exactly — the N=1 case of the sharded stats read path.
        let mut shard = CacheStats::new();
        shard.record_class(RequestClass::Update, 42, 7);
        shard.record_priority(0, 42, 7);
        shard.record_action(CacheAction::WriteBufferFlush, 11);
        shard.resident_blocks = 3;

        let mut aggregate = CacheStats::new();
        aggregate.merge(&shard);
        assert_eq!(aggregate, shard);
    }

    #[test]
    fn merge_with_empty_other_is_identity() {
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 10, 4);
        a.record_action(CacheAction::Eviction, 2);
        a.resident_blocks = 5;
        let before = a.clone();
        a.merge(&CacheStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_handles_asymmetric_shards() {
        // Shards only record what they saw: counters present on one side
        // and absent on the other must survive the merge in both
        // directions.
        let mut a = CacheStats::new();
        a.record_class(RequestClass::Random, 100, 40);
        a.record_priority(2, 100, 40);
        a.record_action(CacheAction::ReadAllocation, 60);

        let mut b = CacheStats::new();
        b.record_class(RequestClass::TemporaryData, 30, 30);
        b.record_priority(1, 30, 30);
        b.record_action(CacheAction::Trim, 30);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Merge is commutative on cache-level state.
        assert_eq!(ab, ba);
        assert_eq!(ab.class(RequestClass::Random).accessed_blocks, 100);
        assert_eq!(ab.class(RequestClass::TemporaryData).cache_hits, 30);
        assert_eq!(ab.priority(1).accessed_blocks, 30);
        assert_eq!(ab.priority(2).cache_hits, 40);
        assert_eq!(ab.action(CacheAction::ReadAllocation), 60);
        assert_eq!(ab.action(CacheAction::Trim), 30);
        assert_eq!(ab.totals().accessed_blocks, 130);
    }

    #[test]
    fn merge_never_touches_device_stats() {
        // Shards share one device pair, so per-shard snapshots must not
        // contribute device stats: the caller attaches them once on the
        // aggregate.
        let mut other = CacheStats::new();
        other.ssd = Some(hstorage_storage::DeviceStats {
            blocks_read: 999,
            ..Default::default()
        });
        other.hdd = Some(hstorage_storage::DeviceStats::default());

        let mut aggregate = CacheStats::new();
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, None);
        assert_eq!(aggregate.hdd, None);

        // And an aggregate that already has device stats keeps its own.
        let mine = hstorage_storage::DeviceStats {
            blocks_written: 5,
            ..Default::default()
        };
        aggregate.ssd = Some(mine.clone());
        aggregate.merge(&other);
        assert_eq!(aggregate.ssd, Some(mine));
    }

    #[test]
    fn actions_accumulate() {
        let mut s = CacheStats::new();
        s.record_action(CacheAction::Eviction, 5);
        s.record_action(CacheAction::Eviction, 7);
        s.record_action(CacheAction::Bypassing, 3);
        assert_eq!(s.action(CacheAction::Eviction), 12);
        assert_eq!(s.action(CacheAction::Bypassing), 3);
        assert_eq!(s.action(CacheAction::CacheHit), 0);
    }
}
