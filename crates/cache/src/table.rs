//! Open-addressing hash tables for the cache hot path.
//!
//! The paper's per-request metadata lookup (`lbn → (pbn, prio, state)`,
//! Section 5.2) sits on the submit path of every shard, and after the
//! lock-light refactor the remaining cost is the probe itself. This module
//! replaces the `std::HashMap` there with a flat, cache-line-friendly
//! open-addressing table:
//!
//! * power-of-two capacity with Fibonacci hashing (a single multiply and
//!   shift — no SipHash state, no per-lookup hasher construction);
//! * linear probing, so a probe touches consecutive slots of one dense
//!   array instead of chasing bucket pointers;
//! * backward-shift deletion instead of tombstones, so probe chains never
//!   grow from churn and the table needs no rehash-on-delete heuristics.
//!
//! [`OpenMap`] is the generic engine (`u64` keys, `Copy` values), and
//! [`BlockTable`] the shard-metadata wrapper whose slots colocate the
//! [`CacheEntry`] with a `u32` policy-node index so a single probe can
//! reach both the metadata and the owning list node.

use crate::metadata::{BlockState, CacheEntry};
use hstorage_storage::{BlockAddr, CachePriority};

/// Fibonacci-hashing multiplier: `2^64 / φ`, the canonical odd constant.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest table capacity ever allocated (slots, power of two).
const MIN_CAPACITY: usize = 8;

/// Sentinel for "no policy node attached" in a [`BlockTable`] slot.
pub const NO_NODE: u32 = u32::MAX;

/// A flat open-addressing hash map from `u64` keys to `Copy` values.
///
/// Linear probing over a power-of-two slot array, grown at 7/8 load;
/// deletions backward-shift the following probe chain, so the table never
/// holds tombstones and every lookup terminates at the first empty slot.
/// Iteration order is unspecified (slot order) — callers that need a
/// deterministic order must sort, exactly as with `std::HashMap`.
#[derive(Debug, Clone)]
pub struct OpenMap<V> {
    keys: Vec<u64>,
    values: Vec<V>,
    used: Vec<bool>,
    len: usize,
    /// `64 - log2(capacity)`: maps the 64-bit hash onto a slot index.
    shift: u32,
}

impl<V: Copy + Default> Default for OpenMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> OpenMap<V> {
    /// Creates an empty map with the minimum capacity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty map pre-sized so `items` entries fit without
    /// growing (capacity is the next power of two above `items / (7/8)`).
    pub fn with_capacity(items: usize) -> Self {
        let cap = items
            .saturating_mul(8)
            .div_ceil(7)
            .max(MIN_CAPACITY)
            .next_power_of_two();
        OpenMap {
            keys: vec![0; cap],
            values: vec![V::default(); cap],
            used: vec![false; cap],
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// The slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        while self.used[i] {
            if self.keys[i] == key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.values[i])
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.values[i])
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(i) = self.find(key) {
            return Some(std::mem::replace(&mut self.values[i], value));
        }
        // Grow *before* placing so the probe chain is computed against the
        // final capacity.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        while self.used[i] {
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.values[i] = value;
        self.used[i] = true;
        self.len += 1;
        None
    }

    /// Removes `key`, returning its value if it was present. The probe
    /// chain behind the vacated slot is backward-shifted, so no tombstone
    /// is left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let removed = self.values[i];
        let mask = self.keys.len() - 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if !self.used[j] {
                break;
            }
            // Slot j's entry may backfill the hole at i only if its home
            // slot does not lie in the circular range (i, j] — i.e. the
            // entry's displacement from home spans the hole.
            let home = self.home(self.keys[j]);
            if (j.wrapping_sub(home)) & mask >= (j.wrapping_sub(i)) & mask {
                self.keys[i] = self.keys[j];
                self.values[i] = self.values[j];
                i = j;
            }
        }
        self.used[i] = false;
        self.len -= 1;
        Some(removed)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.used.iter_mut().for_each(|u| *u = false);
        self.len = 0;
    }

    /// Iterates all `(key, value)` pairs in unspecified (slot) order.
    pub fn iter(&self) -> OpenMapIter<'_, V> {
        OpenMapIter { map: self, pos: 0 }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![V::default(); new_cap]);
        let old_used = std::mem::replace(&mut self.used, vec![false; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for (slot, was_used) in old_used.into_iter().enumerate() {
            if !was_used {
                continue;
            }
            let key = old_keys[slot];
            let mut i = self.home(key);
            while self.used[i] {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.values[i] = old_values[slot];
            self.used[i] = true;
        }
    }

    /// Asserts the open-addressing invariant the backward-shift deletion
    /// must preserve: walking from any entry's home slot to the slot it
    /// occupies crosses no empty slot (otherwise a lookup would terminate
    /// early and miss the entry).
    #[cfg(test)]
    fn assert_probe_invariant(&self) {
        let mask = self.keys.len() - 1;
        for slot in 0..self.keys.len() {
            if !self.used[slot] {
                continue;
            }
            let mut i = self.home(self.keys[slot]);
            while i != slot {
                assert!(
                    self.used[i],
                    "probe chain for key {} crosses empty slot {} before {}",
                    self.keys[slot], i, slot
                );
                i = (i + 1) & mask;
            }
        }
    }
}

/// Iterator over an [`OpenMap`]'s `(key, value)` pairs in slot order.
pub struct OpenMapIter<'a, V> {
    map: &'a OpenMap<V>,
    pos: usize,
}

impl<'a, V> Iterator for OpenMapIter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.map.keys.len() {
            let i = self.pos;
            self.pos += 1;
            if self.map.used[i] {
                return Some((self.map.keys[i], &self.map.values[i]));
            }
        }
        None
    }
}

/// One [`BlockTable`] slot: the block's metadata entry plus the owning
/// policy's `u32` list-node index (or [`NO_NODE`]), colocated so a single
/// probe reaches both.
#[derive(Debug, Clone, Copy)]
pub struct TableSlot {
    /// The resident block's metadata.
    pub entry: CacheEntry,
    /// Arena index of the list node tracking this block, or [`NO_NODE`].
    pub node: u32,
}

impl Default for TableSlot {
    fn default() -> Self {
        TableSlot {
            entry: CacheEntry {
                pbn: 0,
                priority: CachePriority(0),
                state: BlockState::Clean,
            },
            node: NO_NODE,
        }
    }
}

/// The shard-metadata table `lbn → (CacheEntry, node)` on the flat
/// [`OpenMap`] engine — the drop-in interior behind
/// [`CacheMetadata`](crate::metadata::CacheMetadata).
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    map: OpenMap<TableSlot>,
}

impl BlockTable {
    /// Creates an empty table with the minimum capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table pre-sized for `items` resident blocks.
    pub fn with_capacity(items: usize) -> Self {
        BlockTable {
            map: OpenMap::with_capacity(items),
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a block's metadata.
    #[inline]
    pub fn get(&self, lbn: BlockAddr) -> Option<&CacheEntry> {
        self.map.get(lbn.0).map(|slot| &slot.entry)
    }

    /// Mutable metadata lookup.
    #[inline]
    pub fn get_mut(&mut self, lbn: BlockAddr) -> Option<&mut CacheEntry> {
        self.map.get_mut(lbn.0).map(|slot| &mut slot.entry)
    }

    /// Whether a block is resident.
    #[inline]
    pub fn contains(&self, lbn: BlockAddr) -> bool {
        self.map.contains(lbn.0)
    }

    /// Inserts (or replaces) a block's metadata, returning the previous
    /// entry if it existed. A replace keeps the slot's node index; a fresh
    /// insert starts it at [`NO_NODE`].
    pub fn insert(&mut self, lbn: BlockAddr, entry: CacheEntry) -> Option<CacheEntry> {
        match self.map.get_mut(lbn.0) {
            Some(slot) => Some(std::mem::replace(&mut slot.entry, entry)),
            None => {
                self.map.insert(
                    lbn.0,
                    TableSlot {
                        entry,
                        node: NO_NODE,
                    },
                );
                None
            }
        }
    }

    /// Removes a block, returning its metadata.
    pub fn remove(&mut self, lbn: BlockAddr) -> Option<CacheEntry> {
        self.map.remove(lbn.0).map(|slot| slot.entry)
    }

    /// The policy-node index attached to a resident block.
    #[inline]
    pub fn node(&self, lbn: BlockAddr) -> Option<u32> {
        self.map.get(lbn.0).map(|slot| slot.node)
    }

    /// Attaches a policy-node index to a resident block. Returns `false`
    /// if the block is not resident.
    pub fn set_node(&mut self, lbn: BlockAddr, node: u32) -> bool {
        match self.map.get_mut(lbn.0) {
            Some(slot) => {
                slot.node = node;
                true
            }
            None => false,
        }
    }

    /// Iterates all `(lbn, entry)` pairs in unspecified (slot) order.
    pub fn iter(&self) -> BlockTableIter<'_> {
        BlockTableIter {
            inner: self.map.iter(),
        }
    }
}

/// Iterator over a [`BlockTable`]'s `(lbn, entry)` pairs in slot order.
pub struct BlockTableIter<'a> {
    inner: OpenMapIter<'a, TableSlot>,
}

impl<'a> Iterator for BlockTableIter<'a> {
    type Item = (BlockAddr, &'a CacheEntry);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner
            .next()
            .map(|(key, slot)| (BlockAddr(key), &slot.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn entry(pbn: u64) -> CacheEntry {
        CacheEntry {
            pbn,
            priority: CachePriority(2),
            state: BlockState::Clean,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = BlockTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(BlockAddr(5), entry(50)), None);
        assert!(t.contains(BlockAddr(5)));
        assert_eq!(t.get(BlockAddr(5)).unwrap().pbn, 50);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(BlockAddr(5)).unwrap().pbn, 50);
        assert!(t.is_empty());
        assert_eq!(t.remove(BlockAddr(5)), None);
    }

    #[test]
    fn replace_keeps_the_node_hint() {
        let mut t = BlockTable::new();
        t.insert(BlockAddr(9), entry(1));
        assert_eq!(t.node(BlockAddr(9)), Some(NO_NODE));
        assert!(t.set_node(BlockAddr(9), 7));
        let old = t.insert(BlockAddr(9), entry(2));
        assert_eq!(old.unwrap().pbn, 1);
        assert_eq!(t.node(BlockAddr(9)), Some(7), "replace keeps the node");
        assert!(!t.set_node(BlockAddr(42), 0), "absent block has no node");
        assert_eq!(t.node(BlockAddr(42)), None);
    }

    #[test]
    fn grows_past_the_load_factor_and_keeps_every_entry() {
        let mut t = BlockTable::new();
        for i in 0..1000u64 {
            t.insert(BlockAddr(i), entry(i * 10));
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(t.get(BlockAddr(i)).unwrap().pbn, i * 10, "lbn {i}");
        }
        t.map.assert_probe_invariant();
    }

    #[test]
    fn extreme_keys_are_legal() {
        // BlockAddr legitimately spans the full u64 range — the table has
        // no sentinel key, only occupancy flags.
        let mut t = BlockTable::new();
        t.insert(BlockAddr(0), entry(1));
        t.insert(BlockAddr(u64::MAX), entry(2));
        assert_eq!(t.get(BlockAddr(0)).unwrap().pbn, 1);
        assert_eq!(t.get(BlockAddr(u64::MAX)).unwrap().pbn, 2);
    }

    #[test]
    fn with_capacity_presizes_above_the_load_factor() {
        let t = OpenMap::<u32>::with_capacity(1000);
        // 1000 entries at 7/8 load need ≥ 1143 slots → 2048.
        assert_eq!(t.capacity(), 2048);
        let small = OpenMap::<u32>::with_capacity(0);
        assert_eq!(small.capacity(), MIN_CAPACITY);
    }

    #[test]
    fn backward_shift_closes_probe_chains() {
        // Force a dense cluster, then delete from its middle: lookups for
        // every survivor must still succeed and the invariant must hold.
        let mut m = OpenMap::<u64>::new();
        for i in 0..7u64 {
            m.insert(i, i);
        }
        m.remove(3);
        m.map_invariant_and_all_present(&[0, 1, 2, 4, 5, 6]);
        m.remove(0);
        m.map_invariant_and_all_present(&[1, 2, 4, 5, 6]);
    }

    impl OpenMap<u64> {
        fn map_invariant_and_all_present(&self, keys: &[u64]) {
            self.assert_probe_invariant();
            for &k in keys {
                assert_eq!(self.get(k), Some(&k), "key {k} lost");
            }
            assert_eq!(self.len(), keys.len());
        }
    }

    #[test]
    fn clear_empties_without_shrinking() {
        let mut m = OpenMap::<u32>::new();
        for i in 0..100 {
            m.insert(i, i as u32);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 1);
        assert_eq!(m.get(5), Some(&1));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The open-addressing table agrees with a `HashMap` model on any
        /// insert/remove/lookup trace, and the backward-shift invariant —
        /// no probe chain ever crosses an empty slot — holds after every
        /// operation.
        #[test]
        fn open_map_matches_a_hash_map_model(
            ops in proptest::collection::vec(
                (0u64..48, proptest::prelude::any::<bool>(), 0u64..1000),
                1..400,
            ),
        ) {
            use proptest::prelude::prop_assert_eq;
            let mut map = OpenMap::<u64>::new();
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (key, is_remove, value) in ops {
                if is_remove {
                    prop_assert_eq!(map.remove(key), model.remove(&key));
                } else {
                    prop_assert_eq!(map.insert(key, value), model.insert(key, value));
                }
                map.assert_probe_invariant();
                prop_assert_eq!(map.len(), model.len());
                for (&k, v) in &model {
                    prop_assert_eq!(map.get(k), Some(v));
                }
            }
            // The iterator visits exactly the model's pairs.
            let mut seen: Vec<(u64, u64)> = map.iter().map(|(k, v)| (k, *v)).collect();
            seen.sort_unstable();
            let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
            expect.sort_unstable();
            prop_assert_eq!(seen, expect);
        }
    }
}
