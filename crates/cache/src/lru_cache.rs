//! The classification-blind LRU baseline.
//!
//! This emulates "the classical approach when cache is managed by the LRU
//! algorithm" used throughout the paper's evaluation: every miss allocates
//! cache space regardless of request type, all cached blocks live in a
//! single LRU stack, and the LRU block is evicted when space is needed.
//!
//! Statistics are still broken down by request class and by the priority
//! the request *would* have carried, to reproduce the lower halves of
//! Tables 4, 6 and 7 (the paper notes that "although we record statistics
//! separately for requests of different priorities, all requests are
//! managed through a single LRU stack").
//!
//! The baseline shares the `&self` [`StorageSystem`] interface; since a
//! single LRU stack is one global structure by definition, it serializes
//! behind one mutex rather than lock-striping (it is a comparison point,
//! not a scale target).

use crate::allocator::SlotAllocator;
use crate::arena::{ListArena, ListHandle};
use crate::metadata::{BlockState, CacheEntry};
use crate::stats::{CacheAction, CacheStats, LocalCacheStats};
use crate::system::StorageSystem;
use crate::table::BlockTable;
use hstorage_storage::{
    BlockAddr, BlockRange, CachePriority, ClassifiedRequest, Direction, HddDevice, IoRequest,
    PolicyConfig, SimClock, SsdDevice, StorageDevice, TrimCommand,
};
use parking_lot::Mutex;
use std::time::Duration;

/// The mutable cache-management state, all behind one lock.
///
/// The single mutex makes this baseline the one cache whose metadata and
/// recency state share a structure: each [`BlockTable`] slot colocates
/// the block's [`CacheEntry`] with the index of its LRU arena node, so a
/// hit resolves membership, metadata and stack position in one probe
/// chain and touches the stack with two or three arena-index writes.
struct LruInner {
    table: BlockTable,
    arena: ListArena,
    lru: ListHandle,
    alloc: SlotAllocator,
    stats: LocalCacheStats,
}

impl LruInner {
    fn evict_one(&mut self) -> u64 {
        let victim = self
            .lru
            .pop_back(&mut self.arena)
            .expect("evicting from an empty cache");
        let entry = self.table.remove(victim).expect("LRU/metadata mismatch");
        self.stats.record_action(CacheAction::Eviction, 1);
        self.alloc.release(entry.pbn);
        if entry.is_dirty() {
            1
        } else {
            0
        }
    }

    fn allocate_slot(&mut self) -> (u64, u64) {
        let mut dirty_writebacks = 0;
        loop {
            if let Some(pbn) = self.alloc.allocate() {
                return (pbn, dirty_writebacks);
            }
            dirty_writebacks += self.evict_one();
        }
    }
}

/// SSD cache over HDD managed by plain LRU.
pub struct LruCache {
    policy: PolicyConfig,
    cache_capacity: u64,
    clock: SimClock,
    ssd: SsdDevice,
    hdd: HddDevice,
    inner: Mutex<LruInner>,
}

impl LruCache {
    /// Creates an LRU-managed cache of `cache_capacity_blocks` blocks with
    /// the paper's device models.
    pub fn new(cache_capacity_blocks: u64) -> Self {
        let clock = SimClock::new();
        Self::with_devices(
            cache_capacity_blocks,
            SsdDevice::intel_320(clock.clone()),
            HddDevice::cheetah(clock.clone()),
            clock,
        )
    }

    /// Creates an LRU cache over explicitly constructed devices.
    pub fn with_devices(
        cache_capacity_blocks: u64,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        LruCache {
            policy: PolicyConfig::paper_default(),
            cache_capacity: cache_capacity_blocks,
            clock,
            ssd,
            hdd,
            inner: Mutex::new(LruInner {
                table: BlockTable::with_capacity(cache_capacity_blocks as usize),
                arena: ListArena::new(),
                lru: ListHandle::new(),
                alloc: SlotAllocator::new(cache_capacity_blocks),
                stats: LocalCacheStats::new(),
            }),
        }
    }

    /// Cache capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.cache_capacity
    }

    /// Whether `lbn` is currently resident in the cache.
    pub fn contains_block(&self, lbn: BlockAddr) -> bool {
        self.inner.lock().table.contains(lbn)
    }
}

impl StorageSystem for LruCache {
    fn name(&self) -> &str {
        "LRU"
    }

    fn submit(&self, req: ClassifiedRequest) {
        let prio = self.policy.resolve(req.policy);
        let mut hits = 0u64;
        let mut ssd_read = 0u64;
        let mut ssd_write = 0u64;
        let mut hdd_read = 0u64;
        let mut hdd_write = 0u64;

        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        for lbn in req.io.range.iter() {
            if let Some(node) = inner.table.node(lbn) {
                hits += 1;
                inner.lru.move_front(&mut inner.arena, node);
                inner.stats.record_action(CacheAction::CacheHit, 1);
                match req.io.direction {
                    Direction::Read => ssd_read += 1,
                    Direction::Write => {
                        ssd_write += 1;
                        if let Some(e) = inner.table.get_mut(lbn) {
                            e.state = BlockState::Dirty;
                        }
                    }
                }
            } else {
                // LRU admits everything.
                let (pbn, writebacks) = inner.allocate_slot();
                hdd_write += writebacks;
                let state = match req.io.direction {
                    Direction::Read => {
                        inner.stats.record_action(CacheAction::ReadAllocation, 1);
                        hdd_read += 1;
                        ssd_write += 1;
                        BlockState::Clean
                    }
                    Direction::Write => {
                        inner.stats.record_action(CacheAction::WriteAllocation, 1);
                        ssd_write += 1;
                        BlockState::Dirty
                    }
                };
                inner.table.insert(
                    lbn,
                    CacheEntry {
                        pbn,
                        // The LRU cache has a single stack; the recorded
                        // priority is informational only.
                        priority: CachePriority(prio.0),
                        state,
                    },
                );
                let node = inner.lru.push_front(&mut inner.arena, lbn);
                inner.table.set_node(lbn, node);
            }
        }

        let blocks = req.blocks();
        inner.stats.record_class(req.class, blocks, hits);
        inner.stats.record_priority(prio.0, blocks, hits);
        drop(guard);

        let seq = req.io.sequential;
        let start = req.io.range.start;
        if hdd_read > 0 {
            self.hdd
                .serve(&IoRequest::read(BlockRange::new(start, hdd_read), seq));
        }
        if hdd_write > 0 {
            self.hdd
                .serve(&IoRequest::write(BlockRange::new(start, hdd_write), false));
        }
        if ssd_read > 0 {
            self.ssd
                .serve(&IoRequest::read(BlockRange::new(start, ssd_read), seq));
        }
        if ssd_write > 0 {
            self.ssd
                .serve(&IoRequest::write(BlockRange::new(start, ssd_write), seq));
        }
    }

    fn trim(&self, _cmd: &TrimCommand) {
        // A legacy (non-DSS) storage system ignores TRIM semantics for cache
        // management: stale temporary data stays cached until LRU ages it
        // out. This is precisely the behaviour the paper contrasts against.
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let mut s = inner.stats.snapshot();
        s.resident_blocks = inner.table.len() as u64;
        drop(inner);
        s.ssd = Some(self.ssd.stats());
        s.hdd = Some(self.hdd.stats());
        s
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&self) {
        self.inner.lock().stats.reset();
        self.ssd.reset_stats();
        self.hdd.reset_stats();
    }

    fn resident_blocks(&self) -> u64 {
        self.inner.lock().table.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{QosPolicy, RequestClass};

    fn read_req(start: u64, len: u64, class: RequestClass) -> ClassifiedRequest {
        let sequential = matches!(class, RequestClass::Sequential);
        let policy = match class {
            RequestClass::Sequential => QosPolicy::NonCachingNonEviction,
            RequestClass::TemporaryData => QosPolicy::priority(1),
            _ => QosPolicy::priority(2),
        };
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), sequential),
            class,
            policy,
        )
    }

    #[test]
    fn lru_admits_sequential_data() {
        let c = LruCache::new(100);
        c.submit(read_req(0, 100, RequestClass::Sequential));
        // Unlike hStorage-DB, the scan fills the cache.
        assert_eq!(c.resident_blocks(), 100);
        // And pays SSD write traffic for the allocation.
        assert_eq!(c.stats().ssd.unwrap().blocks_written, 100);
    }

    #[test]
    fn lru_evicts_oldest_regardless_of_type() {
        let c = LruCache::new(10);
        // Hot random blocks...
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random));
        }
        // ...are wiped out by a big sequential scan (cache pollution).
        c.submit(read_req(1000, 10, RequestClass::Sequential));
        for i in 0..10u64 {
            assert!(!c.contains_block(BlockAddr(i)));
        }
    }

    #[test]
    fn lru_hits_on_reuse() {
        let c = LruCache::new(50);
        for _ in 0..3 {
            for i in 0..20u64 {
                c.submit(read_req(i, 1, RequestClass::Random));
            }
        }
        let counters = c.stats().class(RequestClass::Random);
        assert_eq!(counters.accessed_blocks, 60);
        assert_eq!(counters.cache_hits, 40);
    }

    #[test]
    fn trim_is_ignored() {
        let c = LruCache::new(50);
        c.submit(read_req(0, 20, RequestClass::TemporaryData));
        c.trim(&TrimCommand::single(BlockRange::new(0u64, 20)));
        // Stale temporary data stays resident.
        assert_eq!(c.resident_blocks(), 20);
    }

    #[test]
    fn capacity_is_respected() {
        let c = LruCache::new(32);
        for i in 0..500u64 {
            c.submit(read_req(i, 1, RequestClass::Random));
            assert!(c.resident_blocks() <= 32);
        }
    }

    #[test]
    fn concurrent_submits_are_serialized_but_complete() {
        let c = LruCache::new(256);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100u64 {
                        c.submit(read_req(t * 1_000 + i, 1, RequestClass::Random));
                    }
                });
            }
        });
        assert_eq!(c.stats().class(RequestClass::Random).accessed_blocks, 400);
        assert_eq!(c.resident_blocks(), 256);
    }
}
