//! Crash recovery: replaying a [`JournalSnapshot`] into a fresh engine.
//!
//! The crash model is simple and brutal: at an arbitrary record offset
//! the machine dies, everything volatile (the whole [`CacheEngine`]) is
//! lost, and the journal prefix that reached the simulated persistent
//! device is all that survives ([`JournalSnapshot::crash_at`]).
//! [`recover`] rebuilds the pre-crash state by replaying the committed
//! batches of that prefix — in order, through the same [`StorageSystem`]
//! entry points that produced them — into a freshly built engine.
//!
//! # Convergence invariant
//!
//! Because the engine is deterministic end to end (simulated devices,
//! pure policy state, no wall-clock inputs), replaying the committed
//! operation prefix reproduces *exactly* the state a clean run of those
//! operations would have: resident set, clean/dirty bits, statistics,
//! simulated clock, write-buffer occupancy, migration counters and
//! learned heat. An uncommitted tail batch is discarded wholesale, so a
//! drain torn by the crash either never happened (commit missing) or
//! happened completely (commit present) — dirty write-buffer blocks are
//! durably on the HDD or cleanly lost, never half-debited.
//! [`verify_convergence`] checks the invariant between a recovered
//! engine and a clean twin.
//!
//! Recovery time is a first-class measurement: [`RecoveryOutcome`]
//! carries both the wall-clock replay time and the deterministic
//! simulated time the replayed traffic consumed.

use crate::engine::CacheEngine;
use crate::journal::{JournalOp, JournalRecord, JournalSnapshot};
use crate::system::StorageSystem;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a journal image could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The engine handed to [`recover`] has already served traffic; a
    /// replay would layer the log on top of existing state.
    NotFresh(String),
    /// The record stream violates the framing grammar *before* its
    /// tail — e.g. an operation outside any batch, or a commit whose id
    /// does not match the open batch. (A well-formed prefix truncated
    /// anywhere is never corrupt: truncation only ever tears the tail.)
    Corrupt {
        /// Offset of the offending record.
        offset: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NotFresh(why) => write!(f, "recovery target is not fresh: {why}"),
            RecoveryError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at record {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The committed content of a journal image: what replay will apply,
/// and how much of the image it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPlan {
    /// The committed operations, in log order.
    pub ops: Vec<JournalOp>,
    /// Number of committed batches.
    pub batches: u64,
    /// Records covered by committed batches (framing and notes
    /// included).
    pub records_committed: usize,
    /// Trailing records discarded as a torn (uncommitted) tail.
    pub records_discarded: usize,
}

impl ReplayPlan {
    /// Whether the image ended inside an uncommitted batch.
    pub fn torn_tail(&self) -> bool {
        self.records_discarded > 0
    }
}

/// What [`recover`] did, with recovery time as a measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Records in the recovered image.
    pub records_scanned: usize,
    /// Records covered by committed batches (the replayed span).
    pub records_replayed: usize,
    /// Records discarded as the torn tail.
    pub records_discarded: usize,
    /// Logical operations re-executed.
    pub ops_applied: usize,
    /// Committed batches replayed.
    pub batches_replayed: u64,
    /// Whether the image ended inside an uncommitted batch.
    pub torn_tail: bool,
    /// Wall-clock time the replay took (machine-dependent).
    pub replay_wall: Duration,
    /// Simulated device time the replayed traffic consumed
    /// (deterministic — the `sim: recovery` bench rows pin it).
    pub replay_sim: Duration,
    /// Blocks resident in the recovered cache.
    pub resident_blocks: u64,
    /// Write-buffer occupancy of the recovered cache.
    pub write_buffer_resident: u64,
}

/// Parses the framing of a journal image into the operations recovery
/// will apply. Strict everywhere except the tail: a trailing open batch
/// is the torn tail a crash legitimately leaves; any other grammar
/// violation is [`RecoveryError::Corrupt`].
pub fn replay_plan(snapshot: &JournalSnapshot) -> Result<ReplayPlan, RecoveryError> {
    let records = snapshot.records();
    let mut ops = Vec::new();
    let mut pending: Vec<JournalOp> = Vec::new();
    let mut open: Option<u64> = None;
    let mut batches = 0u64;
    let mut records_committed = 0usize;
    for (offset, record) in records.iter().enumerate() {
        match record {
            JournalRecord::BatchBegin { batch } => {
                if open.is_some() {
                    return Err(RecoveryError::Corrupt {
                        offset,
                        reason: format!("batch {batch} begins while another batch is open"),
                    });
                }
                open = Some(*batch);
                pending.clear();
            }
            JournalRecord::Op(op) => {
                if open.is_none() {
                    return Err(RecoveryError::Corrupt {
                        offset,
                        reason: "operation record outside any batch".to_string(),
                    });
                }
                pending.push(op.clone());
            }
            // Informational; legal anywhere, never replayed.
            JournalRecord::DrainNote { .. } => {}
            JournalRecord::BatchCommit { batch } => {
                if open != Some(*batch) {
                    return Err(RecoveryError::Corrupt {
                        offset,
                        reason: match open {
                            Some(id) => format!("commit of batch {batch} while batch {id} is open"),
                            None => format!("commit of batch {batch} with no batch open"),
                        },
                    });
                }
                ops.append(&mut pending);
                batches += 1;
                records_committed = offset + 1;
                open = None;
            }
        }
    }
    Ok(ReplayPlan {
        ops,
        batches,
        records_committed,
        records_discarded: records.len() - records_committed,
    })
}

/// Re-executes one journaled operation through the storage-system entry
/// point that originally produced it.
pub fn apply_op(system: &dyn StorageSystem, op: &JournalOp) {
    match op {
        JournalOp::Submit(req) => system.submit(*req),
        JournalOp::SubmitBatch(reqs) => system.submit_batch(reqs.clone()),
        JournalOp::Trim(cmd) => system.trim(cmd),
        JournalOp::MigrationPulse => {
            system.migrate_idle();
        }
        JournalOp::StatsReset => system.reset_stats(),
    }
}

/// Replays the committed prefix of `snapshot` into `fresh`, which must
/// be a just-built engine configured identically to the crashed one
/// (same policy, capacity, sharding, knobs — journaling included, so
/// that recovering a recovered engine's journal is the identity).
/// Returns the recovered engine and the measured outcome.
pub fn recover(
    snapshot: &JournalSnapshot,
    fresh: CacheEngine,
) -> Result<(CacheEngine, RecoveryOutcome), RecoveryError> {
    if fresh.now() != Duration::ZERO {
        return Err(RecoveryError::NotFresh(
            "its simulated clock has already advanced".to_string(),
        ));
    }
    if fresh.resident_blocks() != 0 {
        return Err(RecoveryError::NotFresh(
            "its cache already holds blocks".to_string(),
        ));
    }
    let plan = replay_plan(snapshot)?;
    let started = Instant::now();
    for op in &plan.ops {
        apply_op(&fresh, op);
    }
    let replay_wall = started.elapsed();
    let outcome = RecoveryOutcome {
        records_scanned: snapshot.len(),
        records_replayed: plan.records_committed,
        records_discarded: plan.records_discarded,
        ops_applied: plan.ops.len(),
        batches_replayed: plan.batches,
        torn_tail: plan.torn_tail(),
        replay_wall,
        replay_sim: fresh.now(),
        resident_blocks: fresh.resident_blocks(),
        write_buffer_resident: fresh.write_buffer_resident(),
    };
    Ok((fresh, outcome))
}

/// Deterministic seed → crash-point mapping (splitmix64), yielding an
/// offset in `0..=log_len`: 0 loses everything, `log_len` loses
/// nothing.
pub fn crash_offset(seed: u64, log_len: usize) -> usize {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % (log_len as u64 + 1)) as usize
}

/// Asserts the convergence invariant between a recovered engine and a
/// clean twin that executed the same committed operations: identical
/// simulated clock, statistics, resident set (priorities and dirty
/// bits included), write-buffer occupancy, migration counters and
/// learned heat. Returns every divergence found.
pub fn verify_convergence(recovered: &CacheEngine, clean: &CacheEngine) -> Result<(), Vec<String>> {
    let mut divergences = Vec::new();
    if recovered.now() != clean.now() {
        divergences.push(format!(
            "sim clock diverged: recovered {:?}, clean {:?}",
            recovered.now(),
            clean.now()
        ));
    }
    if recovered.stats() != clean.stats() {
        divergences.push("statistics diverged".to_string());
    }
    if recovered.resident_set() != clean.resident_set() {
        divergences.push(format!(
            "resident set diverged: recovered {} blocks, clean {} blocks",
            recovered.resident_set().len(),
            clean.resident_set().len()
        ));
    }
    if recovered.write_buffer_resident() != clean.write_buffer_resident() {
        divergences.push(format!(
            "write-buffer occupancy diverged: recovered {}, clean {}",
            recovered.write_buffer_resident(),
            clean.write_buffer_resident()
        ));
    }
    if recovered.migration_stats() != clean.migration_stats() {
        divergences.push("migration counters diverged".to_string());
    }
    if recovered.heat_snapshot() != clean.heat_snapshot() {
        divergences.push("learned heat diverged".to_string());
    }
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(divergences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalConfig, JournalRecord};
    use hstorage_storage::{
        BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
    };

    fn read(lbn: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(lbn, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    }

    fn journaled_engine(capacity: u64) -> CacheEngine {
        CacheEngine::new(PolicyConfig::paper_default(), capacity).with_journal(JournalConfig::on())
    }

    #[test]
    fn crash_offset_is_deterministic_and_in_range() {
        for seed in 0..100u64 {
            let a = crash_offset(seed, 37);
            let b = crash_offset(seed, 37);
            assert_eq!(a, b);
            assert!(a <= 37);
        }
        assert_eq!(crash_offset(7, 0), 0);
        // The mapping actually spreads over the range.
        let distinct: std::collections::HashSet<usize> =
            (0..100u64).map(|s| crash_offset(s, 1000)).collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn torn_tail_is_discarded_not_corrupt() {
        let snapshot = JournalSnapshot::from_records(vec![
            JournalRecord::BatchBegin { batch: 0 },
            JournalRecord::Op(crate::journal::JournalOp::Submit(read(1))),
            JournalRecord::BatchCommit { batch: 0 },
            JournalRecord::BatchBegin { batch: 1 },
            JournalRecord::Op(crate::journal::JournalOp::Submit(read(2))),
        ]);
        let plan = replay_plan(&snapshot).expect("well-formed prefix");
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.batches, 1);
        assert_eq!(plan.records_committed, 3);
        assert_eq!(plan.records_discarded, 2);
        assert!(plan.torn_tail());
    }

    #[test]
    fn framing_violations_are_corrupt() {
        let orphan_op = JournalSnapshot::from_records(vec![JournalRecord::Op(
            crate::journal::JournalOp::Submit(read(1)),
        )]);
        assert!(matches!(
            replay_plan(&orphan_op),
            Err(RecoveryError::Corrupt { offset: 0, .. })
        ));
        let mismatched_commit = JournalSnapshot::from_records(vec![
            JournalRecord::BatchBegin { batch: 0 },
            JournalRecord::BatchCommit { batch: 7 },
        ]);
        assert!(matches!(
            replay_plan(&mismatched_commit),
            Err(RecoveryError::Corrupt { offset: 1, .. })
        ));
        let nested_begin = JournalSnapshot::from_records(vec![
            JournalRecord::BatchBegin { batch: 0 },
            JournalRecord::BatchBegin { batch: 1 },
        ]);
        assert!(matches!(
            replay_plan(&nested_begin),
            Err(RecoveryError::Corrupt { offset: 1, .. })
        ));
    }

    #[test]
    fn recover_rejects_an_engine_that_served_traffic() {
        let used = journaled_engine(16);
        used.submit(read(1));
        let err = match recover(&JournalSnapshot::default(), used) {
            Err(err) => err,
            Ok(_) => panic!("recovery into a used engine must be rejected"),
        };
        assert!(matches!(err, RecoveryError::NotFresh(_)));
    }

    #[test]
    fn recover_replays_the_committed_prefix_exactly() {
        let original = journaled_engine(16);
        for lbn in 0..4 {
            original.submit(read(lbn));
        }
        let snapshot = original.journal_snapshot().expect("journal attached");
        // Tear the last batch: drop its commit record.
        let torn = snapshot.crash_at(snapshot.len() - 1);
        let (recovered, outcome) = recover(&torn, journaled_engine(16)).expect("recovers");
        assert_eq!(outcome.ops_applied, 3);
        assert_eq!(outcome.batches_replayed, 3);
        assert!(outcome.torn_tail);
        assert_eq!(outcome.resident_blocks, 3);
        // The clean twin: the same first three submits, never crashed.
        let clean = journaled_engine(16);
        for lbn in 0..3 {
            clean.submit(read(lbn));
        }
        verify_convergence(&recovered, &clean).expect("recovered state converges");
        assert_eq!(outcome.replay_sim, clean.now());
    }

    #[test]
    fn verify_convergence_reports_divergence() {
        let a = journaled_engine(16);
        a.submit(read(1));
        let b = journaled_engine(16);
        b.submit(read(2));
        let divergences = verify_convergence(&a, &b).unwrap_err();
        assert!(!divergences.is_empty());
    }
}
