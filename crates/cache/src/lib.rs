//! The hybrid storage system of the hStorage-DB paper, plus the baselines
//! it is evaluated against.
//!
//! The paper's storage prototype (Section 5) is a two-level hierarchy: an
//! SSD cache on top of HDDs, managed with *selective allocation* and
//! *selective eviction* over per-priority LRU groups. Four storage
//! configurations are used in the evaluation:
//!
//! * **HDD-only** — every request goes straight to the disk ([`passthrough`]),
//! * **SSD-only** — the ideal case, everything served by the SSD ([`passthrough`]),
//! * **LRU** — the SSD cache managed by a classification-blind LRU
//!   ([`lru_cache`]),
//! * **hStorage-DB** — the SSD cache managed by the priority mechanism
//!   ([`hybrid`]).
//!
//! All four implement the [`StorageSystem`] trait so the query engine can
//! drive them interchangeably.
//!
//! The hybrid cache itself is split into a policy-agnostic [`engine`]
//! (shards, allocator, write buffer, batched device submission) and a
//! pluggable [`policy`] framework: the paper's semantic priority policy is
//! one [`CachePolicy`] among several ([`policy::LruPolicy`],
//! [`policy::CflruPolicy`], [`policy::TwoQPolicy`], the adaptive
//! [`policy::ArcPolicy`] and the [`policy::PerStreamPolicy`] compositor),
//! selectable — knobs included — via [`CachePolicyKind`] on
//! [`StorageConfig`] so the same engine can compare replacement
//! algorithms under identical mechanism.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod arena;
pub mod config;
pub mod engine;
pub mod hybrid;
pub mod journal;
pub mod lru;
pub mod lru_cache;
pub mod metadata;
pub mod migration;
pub mod passthrough;
pub mod policy;
pub mod priority_group;
pub mod recovery;
pub mod stats;
pub mod system;
pub mod table;
pub mod trace;

pub use arena::{ListArena, ListHandle};
pub use config::{StorageConfig, StorageConfigKind};
pub use engine::CacheEngine;
pub use hybrid::HybridCache;
pub use journal::{Journal, JournalConfig, JournalOp, JournalRecord, JournalSnapshot};
pub use lru::ListBackend;
pub use lru_cache::LruCache;
pub use migration::{HeatTracker, MigrationConfig, MigrationStats};
pub use passthrough::{HddOnly, SsdOnly};
pub use policy::{
    CachePolicy, CachePolicyKind, HitOutcome, PolicyRequest, RemoveReason, StreamPolicyKind,
    StreamRouting,
};
pub use recovery::{
    apply_op, crash_offset, recover, replay_plan, verify_convergence, RecoveryError,
    RecoveryOutcome, ReplayPlan,
};
pub use stats::{
    AtomicCacheStats, CacheAction, CacheStats, ClassCounters, ContentionCounters, LatencyHistogram,
    LocalCacheStats,
};
pub use system::StorageSystem;
pub use table::{BlockTable, OpenMap};
pub use trace::{Trace, TraceEvent, TraceRecorder};
