//! Priority groups (Section 5.1).
//!
//! Cached blocks are organised into `N` priority groups; group `k` only
//! contains blocks of priority `k`, and each group is managed by LRU.
//! Selective eviction first identifies the *lowest-priority* (largest `k`)
//! non-empty group and then evicts its least-recently-used block.
//!
//! We keep one extra group at index 0 for the write buffer, which the
//! paper describes as a special priority that "wins" cache space over any
//! other priority — i.e. it is evicted last.

use crate::lru::{ListBackend, LruList};
use hstorage_storage::{BlockAddr, CachePriority};

/// The set of per-priority LRU groups.
#[derive(Debug, Clone)]
pub struct PriorityGroups {
    /// `groups[k]` holds blocks of priority `k`; index 0 is the write buffer.
    groups: Vec<LruList>,
}

impl PriorityGroups {
    /// Creates groups for priorities `0..=total_priorities`.
    pub fn new(total_priorities: u8) -> Self {
        Self::with_backend(total_priorities, ListBackend::default())
    }

    /// Creates groups for priorities `0..=total_priorities` on an explicit
    /// interior backend.
    pub fn with_backend(total_priorities: u8, backend: ListBackend) -> Self {
        let groups = (0..=total_priorities as usize)
            .map(|_| LruList::with_backend(backend))
            .collect();
        PriorityGroups { groups }
    }

    /// Number of priority levels (including the write-buffer group 0 and the
    /// two non-caching groups, which normally stay empty).
    pub fn levels(&self) -> usize {
        self.groups.len()
    }

    /// Total number of blocks across all groups.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Whether all groups are empty.
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(|g| g.is_empty())
    }

    /// Number of blocks in the group for `prio`.
    pub fn group_len(&self, prio: CachePriority) -> usize {
        self.groups
            .get(prio.0 as usize)
            .map(|g| g.len())
            .unwrap_or(0)
    }

    /// Inserts `lbn` into the group for `prio` at the MRU position.
    pub fn insert(&mut self, lbn: BlockAddr, prio: CachePriority) {
        self.groups[prio.0 as usize].insert_mru(lbn);
    }

    /// Marks `lbn` (known to live in group `prio`) as most recently used.
    pub fn touch(&mut self, lbn: BlockAddr, prio: CachePriority) -> bool {
        self.groups[prio.0 as usize].touch(&lbn)
    }

    /// Removes `lbn` from the group for `prio`. Returns whether it was there.
    pub fn remove(&mut self, lbn: BlockAddr, prio: CachePriority) -> bool {
        self.groups[prio.0 as usize].remove(&lbn)
    }

    /// Re-allocation (action 5 of Section 5.1): moves a block from its old
    /// group to a new one, placing it at the MRU position of the new group.
    pub fn reallocate(&mut self, lbn: BlockAddr, old: CachePriority, new: CachePriority) {
        self.groups[old.0 as usize].remove(&lbn);
        self.groups[new.0 as usize].insert_mru(lbn);
    }

    /// The eviction victim according to selective eviction: the LRU block of
    /// the lowest-priority (largest priority number) non-empty group.
    ///
    /// Returns the block and the priority of the group it came from, without
    /// removing it.
    pub fn peek_victim(&self) -> Option<(BlockAddr, CachePriority)> {
        for (k, group) in self.groups.iter().enumerate().rev() {
            if let Some(&lbn) = group.peek_lru() {
                return Some((lbn, CachePriority(k as u8)));
            }
        }
        None
    }

    /// Removes and returns the selective-eviction victim.
    pub fn pop_victim(&mut self) -> Option<(BlockAddr, CachePriority)> {
        for (k, group) in self.groups.iter_mut().enumerate().rev() {
            if let Some(lbn) = group.pop_lru() {
                return Some((lbn, CachePriority(k as u8)));
            }
        }
        None
    }

    /// The lowest priority (largest number) of any cached block, i.e. the
    /// priority the next victim would come from.
    pub fn lowest_occupied_priority(&self) -> Option<CachePriority> {
        self.peek_victim().map(|(_, p)| p)
    }

    /// Iterates all blocks in the group for `prio`, MRU first.
    pub fn iter_group(&self, prio: CachePriority) -> impl Iterator<Item = &BlockAddr> {
        self.groups[prio.0 as usize].iter_mru()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn victim_comes_from_lowest_priority_group() {
        let mut g = PriorityGroups::new(8);
        g.insert(b(1), CachePriority(1));
        g.insert(b(2), CachePriority(3));
        g.insert(b(3), CachePriority(3));
        g.insert(b(4), CachePriority(2));
        // Group 3 is the lowest-priority occupied group; block 2 is its LRU.
        assert_eq!(g.peek_victim(), Some((b(2), CachePriority(3))));
        assert_eq!(g.pop_victim(), Some((b(2), CachePriority(3))));
        assert_eq!(g.pop_victim(), Some((b(3), CachePriority(3))));
        assert_eq!(g.pop_victim(), Some((b(4), CachePriority(2))));
        assert_eq!(g.pop_victim(), Some((b(1), CachePriority(1))));
        assert_eq!(g.pop_victim(), None);
    }

    #[test]
    fn write_buffer_group_is_evicted_last() {
        let mut g = PriorityGroups::new(8);
        g.insert(b(10), CachePriority(0)); // write buffer
        g.insert(b(11), CachePriority(1));
        assert_eq!(g.pop_victim(), Some((b(11), CachePriority(1))));
        assert_eq!(g.pop_victim(), Some((b(10), CachePriority(0))));
    }

    #[test]
    fn reallocate_moves_between_groups() {
        let mut g = PriorityGroups::new(8);
        g.insert(b(1), CachePriority(2));
        assert_eq!(g.group_len(CachePriority(2)), 1);
        g.reallocate(b(1), CachePriority(2), CachePriority(5));
        assert_eq!(g.group_len(CachePriority(2)), 0);
        assert_eq!(g.group_len(CachePriority(5)), 1);
        assert_eq!(g.peek_victim(), Some((b(1), CachePriority(5))));
    }

    #[test]
    fn lru_within_a_group() {
        let mut g = PriorityGroups::new(4);
        g.insert(b(1), CachePriority(2));
        g.insert(b(2), CachePriority(2));
        g.insert(b(3), CachePriority(2));
        g.touch(b(1), CachePriority(2));
        assert_eq!(g.pop_victim(), Some((b(2), CachePriority(2))));
        assert_eq!(g.pop_victim(), Some((b(3), CachePriority(2))));
        assert_eq!(g.pop_victim(), Some((b(1), CachePriority(2))));
    }

    #[test]
    fn len_and_lowest_priority() {
        let mut g = PriorityGroups::new(8);
        assert!(g.is_empty());
        assert_eq!(g.lowest_occupied_priority(), None);
        g.insert(b(1), CachePriority(1));
        g.insert(b(2), CachePriority(6));
        assert_eq!(g.len(), 2);
        assert_eq!(g.lowest_occupied_priority(), Some(CachePriority(6)));
        g.remove(b(2), CachePriority(6));
        assert_eq!(g.lowest_occupied_priority(), Some(CachePriority(1)));
    }
}
