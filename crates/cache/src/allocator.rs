//! Physical block allocator for the SSD cache.
//!
//! The cache device is invisible to the OS (Section 5.2), so cached blocks
//! live at physical block numbers handed out by this allocator. Slots are
//! recycled when blocks are evicted or invalidated.

/// A fixed-capacity free-slot allocator over physical block numbers
/// `0..capacity`.
#[derive(Debug, Clone)]
pub struct SlotAllocator {
    capacity: u64,
    next_fresh: u64,
    free: Vec<u64>,
}

impl SlotAllocator {
    /// Creates an allocator over `capacity` physical blocks.
    pub fn new(capacity: u64) -> Self {
        SlotAllocator {
            capacity,
            next_fresh: 0,
            free: Vec::new(),
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of slots currently allocated.
    pub fn allocated(&self) -> u64 {
        self.next_fresh - self.free.len() as u64
    }

    /// Number of slots still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated()
    }

    /// Whether every slot is in use.
    pub fn is_full(&self) -> bool {
        self.available() == 0
    }

    /// Allocates a slot, or returns `None` if the cache is full.
    pub fn allocate(&mut self) -> Option<u64> {
        if let Some(pbn) = self.free.pop() {
            return Some(pbn);
        }
        if self.next_fresh < self.capacity {
            let pbn = self.next_fresh;
            self.next_fresh += 1;
            Some(pbn)
        } else {
            None
        }
    }

    /// Returns a slot to the free pool.
    ///
    /// # Panics
    /// Panics if `pbn` was never handed out (out of range), which would
    /// indicate metadata corruption.
    pub fn release(&mut self, pbn: u64) {
        assert!(pbn < self.next_fresh, "releasing unallocated slot {pbn}");
        self.free.push(pbn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_none() {
        let mut a = SlotAllocator::new(3);
        assert_eq!(a.allocate(), Some(0));
        assert_eq!(a.allocate(), Some(1));
        assert_eq!(a.allocate(), Some(2));
        assert!(a.is_full());
        assert_eq!(a.allocate(), None);
    }

    #[test]
    fn release_makes_slot_reusable() {
        let mut a = SlotAllocator::new(2);
        let s0 = a.allocate().unwrap();
        let _s1 = a.allocate().unwrap();
        assert!(a.is_full());
        a.release(s0);
        assert_eq!(a.available(), 1);
        assert_eq!(a.allocate(), Some(s0));
    }

    #[test]
    fn counters_are_consistent() {
        let mut a = SlotAllocator::new(10);
        for _ in 0..7 {
            a.allocate().unwrap();
        }
        assert_eq!(a.allocated(), 7);
        assert_eq!(a.available(), 3);
        a.release(3);
        a.release(5);
        assert_eq!(a.allocated(), 5);
        assert_eq!(a.available(), 5);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn releasing_unallocated_slot_panics() {
        let mut a = SlotAllocator::new(10);
        a.release(0);
    }

    #[test]
    fn zero_capacity_allocator_is_always_exhausted() {
        let mut a = SlotAllocator::new(0);
        assert_eq!(a.capacity(), 0);
        assert!(a.is_full());
        assert_eq!(a.available(), 0);
        assert_eq!(a.allocate(), None);
        // Still exhausted after the failed attempt — no state corruption.
        assert_eq!(a.allocate(), None);
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    fn exhaustion_then_full_release_makes_every_slot_reusable() {
        let mut a = SlotAllocator::new(4);
        let slots: Vec<u64> = (0..4).map(|_| a.allocate().unwrap()).collect();
        assert!(a.is_full());
        assert_eq!(a.allocate(), None);
        for &s in &slots {
            a.release(s);
        }
        assert_eq!(a.allocated(), 0);
        assert_eq!(a.available(), 4);
        // Re-allocation hands out exactly the released slots, no fresh
        // numbers beyond the original capacity.
        let mut reused: Vec<u64> = (0..4).map(|_| a.allocate().unwrap()).collect();
        assert_eq!(a.allocate(), None);
        reused.sort_unstable();
        assert_eq!(reused, slots);
    }

    #[test]
    fn freed_slots_are_preferred_over_fresh_ones() {
        // Recycling before minting keeps the physical address space dense,
        // which is what keeps `release`'s range check sound.
        let mut a = SlotAllocator::new(10);
        let s0 = a.allocate().unwrap();
        let _s1 = a.allocate().unwrap();
        a.release(s0);
        assert_eq!(a.allocate(), Some(s0), "freed slot reused before fresh");
        assert_eq!(a.allocate(), Some(2), "then the next fresh slot");
    }

    #[test]
    fn interleaved_churn_never_exceeds_capacity_or_duplicates_slots() {
        let mut a = SlotAllocator::new(8);
        let mut live: Vec<u64> = Vec::new();
        for round in 0u64..100 {
            // Allocate until full, then free a varying subset.
            while let Some(pbn) = a.allocate() {
                assert!(pbn < a.capacity(), "slot {pbn} out of range");
                assert!(!live.contains(&pbn), "slot {pbn} double-allocated");
                live.push(pbn);
            }
            assert!(a.is_full());
            assert_eq!(live.len() as u64, a.capacity());
            let keep = (round % 7) as usize;
            for pbn in live.split_off(keep) {
                a.release(pbn);
            }
            assert_eq!(a.allocated(), live.len() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn releasing_a_never_minted_slot_panics_even_with_free_slots() {
        let mut a = SlotAllocator::new(10);
        a.allocate().unwrap();
        // Slot 5 was never handed out (only slot 0 was minted).
        a.release(5);
    }
}
