//! Adaptive Replacement Cache (ARC) behind the [`CachePolicy`] trait.
//!
//! ARC (Megiddo & Modha, FAST 2003) splits residency into a recency list
//! `T1` (blocks seen exactly once recently) and a frequency list `T2`
//! (blocks seen at least twice), each backed by a [`GhostList`] of
//! recently evicted addresses (`B1` behind `T1`, `B2` behind `T2`). A
//! self-tuning target `p` — the desired size of `T1` — moves toward
//! recency every time a miss lands on `B1` ("we evicted a once-seen block
//! too early") and toward frequency on a `B2` ghost hit, so the policy
//! continuously re-balances itself between LRU-like and LFU-like
//! behaviour without a workload-specific knob. One-shot scans churn
//! through `T1` without displacing the re-referenced working set in `T2`.
//!
//! Fit to the engine contract: the engine resolves a miss as
//! `admits` → (`pop_victim` when the shard is full) → `on_insert`, so the
//! canonical algorithm's steps map as
//!
//! * ghost-hit adaptation of `p` happens in [`CachePolicy::pop_victim`]
//!   (before `REPLACE`, as in the paper) when the shard is full, or in
//!   [`CachePolicy::on_insert`] when a free slot made `REPLACE`
//!   unnecessary — an internal marker prevents double adaptation;
//! * `REPLACE` is split across the selection-only `pop_victim` (which
//!   picks the list and victim, including the `x ∈ B2` tie-break — why
//!   the trait passes the incoming block address) and the engine's
//!   follow-up `on_remove_reasoned` with `Evict`, which untracks the
//!   victim and remembers it in the matching ghost directory;
//! * the directory bound (`|T1| + |B1| ≤ c`, total ≤ `2c`) is enforced at
//!   insertion of a complete miss, as in the paper's case IV.

use crate::policy::{CachePolicy, GhostList, HitOutcome, PolicyRequest, RemoveReason};
use hstorage_storage::{BlockAddr, CachePriority};

use crate::lru::{ListBackend, LruList};

/// The self-tuning recency/frequency policy. Invariants (asserted by the
/// property tests): `|T1| + |T2| ≤ c`, `p ∈ [0, c]`, `|B1| ≤ c`,
/// `|B2| ≤ c`.
pub struct ArcPolicy {
    /// Resident blocks seen exactly once since entering the cache.
    t1: LruList,
    /// Resident blocks seen at least twice (the frequency-protected set).
    t2: LruList,
    /// Ghost directory of recent `T1` evictions.
    b1: GhostList,
    /// Ghost directory of recent `T2` evictions.
    b2: GhostList,
    /// Cache capacity `c` of this shard, in blocks.
    capacity: usize,
    /// Self-tuning target size of `T1`, `0 ..= c`.
    p: usize,
    /// Miss address whose ghost-hit adaptation already ran in
    /// `pop_victim`, so `on_insert` must not adapt a second time.
    adapted: Option<BlockAddr>,
}

impl ArcPolicy {
    /// Creates the policy for a shard of `shard_capacity` slots. Each
    /// ghost directory remembers up to `c` addresses.
    pub fn new(shard_capacity: u64) -> Self {
        Self::new_backed(shard_capacity, ListBackend::default())
    }

    /// Creates the policy on an explicit interior backend.
    pub fn new_backed(shard_capacity: u64, backend: ListBackend) -> Self {
        let capacity = (shard_capacity.max(1)) as usize;
        ArcPolicy {
            t1: LruList::with_backend(backend),
            t2: LruList::with_backend(backend),
            b1: GhostList::with_backend(capacity, backend),
            b2: GhostList::with_backend(capacity, backend),
            capacity,
            p: 0,
            adapted: None,
        }
    }

    /// Cache capacity `c` in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current self-tuning target for `|T1|`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of resident once-seen blocks.
    pub fn t1_len(&self) -> usize {
        self.t1.len()
    }

    /// Number of resident frequency-protected blocks.
    pub fn t2_len(&self) -> usize {
        self.t2.len()
    }

    /// Number of remembered recency ghosts.
    pub fn b1_len(&self) -> usize {
        self.b1.len()
    }

    /// Number of remembered frequency ghosts.
    pub fn b2_len(&self) -> usize {
        self.b2.len()
    }

    /// The selection half of `REPLACE` (paper Fig. 4): name the victim
    /// from `T1` while it exceeds its target — with a tie-break toward
    /// `T1` when `prefer_t1_on_tie` (the miss is a `B2` ghost hit) —
    /// otherwise from `T2`, without removing it. The engine's Evict
    /// notification completes the step, moving the victim into the
    /// matching ghost directory (see
    /// [`CachePolicy::on_remove_reasoned`]).
    fn peek_replace(&self, prefer_t1_on_tie: bool) -> Option<BlockAddr> {
        let from_t1 = !self.t1.is_empty()
            && (self.t1.len() > self.p || (self.t1.len() == self.p && prefer_t1_on_tie));
        if from_t1 {
            return self.t1.peek_lru().copied();
        }
        if let Some(&victim) = self.t2.peek_lru() {
            return Some(victim);
        }
        // T2 empty (e.g. p ≥ |T1| on a cold full shard): fall back to T1.
        self.t1.peek_lru().copied()
    }

    /// Applies the ghost-hit adaptation of `p` for a miss on `lbn`, at
    /// most once per miss (pop_victim and on_insert both call this; the
    /// `adapted` marker makes the second call a no-op).
    fn maybe_adapt(&mut self, lbn: BlockAddr) {
        if self.adapted == Some(lbn) {
            return;
        }
        if self.b1.contains(lbn) {
            // Recency ghost hit: grow the recency side.
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            self.adapted = Some(lbn);
        } else if self.b2.contains(lbn) {
            // Frequency ghost hit: shrink the recency side.
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.adapted = Some(lbn);
        }
    }
}

impl CachePolicy for ArcPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        _current: CachePriority,
        _req: &PolicyRequest,
    ) -> HitOutcome {
        // Any hit proves reuse: the block moves to (or refreshes in) the
        // frequency-protected list.
        if self.t1.remove(&lbn) {
            self.t2.insert_mru(lbn);
        } else {
            self.t2.touch(&lbn);
        }
        HitOutcome::Unchanged
    }

    fn admits(&self, _req: &PolicyRequest) -> bool {
        true
    }

    // The first hit moves the block T1 → T2 (or refreshes it in T2); the
    // repeat finds it already at the T2 MRU, so the second `touch` changes
    // nothing. The adaptation of `p` happens only on misses (ghost hits in
    // `pop_victim`), never on hits, so skipping the repeat is safe.
    fn repeat_hit_idempotent(&self) -> bool {
        true
    }

    fn pop_victim(&mut self, incoming: BlockAddr, _req: &PolicyRequest) -> Option<BlockAddr> {
        // Adapt p on a ghost hit *before* REPLACE, as in the paper, and
        // apply the paper's tie-break toward T1 when the miss is a B2
        // ghost hit.
        self.maybe_adapt(incoming);
        self.peek_replace(self.b2.contains(incoming))
    }

    fn steal_victim(&mut self, _req: &PolicyRequest) -> Option<BlockAddr> {
        // The freed slot will host another stream's block that this
        // policy never tracks: plain REPLACE under the current p, with no
        // ghost consultation and no adaptation for the foreign address.
        self.peek_replace(false)
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        // Free-slot misses skip pop_victim, so the ghost adaptation runs
        // here in that case (the marker makes it a no-op otherwise).
        self.maybe_adapt(lbn);
        self.adapted = None;
        if self.b1.forget(lbn) || self.b2.forget(lbn) {
            // Ghost hit: the address was evicted recently — seen at least
            // twice overall, so it enters the frequency list directly.
            // (Total directory size is unchanged: one ghost became one
            // resident.)
            self.t2.insert_mru(lbn);
        } else {
            // Complete miss: track the newcomer in T1, then re-establish
            // the paper's directory bounds (case IV deletions) by aging
            // out the oldest ghosts — set-equivalent to deleting them
            // before REPLACE, and it keeps the REPLACE-fresh ghost alive.
            self.t1.insert_mru(lbn);
            while self.t1.len() + self.b1.len() > self.capacity {
                if self.b1.pop_oldest().is_none() {
                    break;
                }
            }
            while self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() > 2 * self.capacity
            {
                if self.b2.pop_oldest().is_none() {
                    break;
                }
            }
        }
        req.prio
    }

    fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
        if !self.t1.remove(&lbn) {
            self.t2.remove(&lbn);
        }
    }

    fn on_remove_reasoned(&mut self, lbn: BlockAddr, group: CachePriority, reason: RemoveReason) {
        match reason {
            RemoveReason::Trim => {
                // Lifetime over: forget the block entirely, history
                // included (a resident block is never ghosted, but the
                // forget is kept defensive for compositor fan-out).
                self.on_remove(lbn, group);
                self.b1.forget(lbn);
                self.b2.forget(lbn);
            }
            RemoveReason::Evict => {
                // The removal half of REPLACE (whether the victim was our
                // own selection or a compositor steal): untrack the block
                // and remember it in the ghost directory of the list it
                // left.
                if self.t1.remove(&lbn) {
                    self.b1.remember(lbn);
                } else if self.t2.remove(&lbn) {
                    self.b2.remember(lbn);
                }
            }
        }
    }

    fn on_trim_absent(&mut self, lbn: BlockAddr) {
        // The address may be recycled for unrelated data: a stale ghost
        // would fake a reuse signal and mis-tune p.
        self.b1.forget(lbn);
        self.b2.forget(lbn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{Direction, PolicyConfig, QosPolicy, RequestClass};

    fn req() -> PolicyRequest {
        let config = PolicyConfig::paper_default();
        PolicyRequest {
            direction: Direction::Read,
            class: RequestClass::Random,
            qos: QosPolicy::priority(2),
            prio: config.resolve(QosPolicy::priority(2)),
        }
    }

    /// Engine-contract harness: replays accesses against the policy the
    /// way the engine would (hit → on_hit; miss → pop_victim when full →
    /// on_insert), tracking residency.
    struct Harness {
        policy: ArcPolicy,
        resident: std::collections::HashSet<BlockAddr>,
        capacity: usize,
    }

    impl Harness {
        fn new(capacity: u64) -> Self {
            Harness {
                policy: ArcPolicy::new(capacity),
                resident: std::collections::HashSet::new(),
                capacity: capacity as usize,
            }
        }

        fn access(&mut self, lbn: BlockAddr) {
            if self.resident.contains(&lbn) {
                self.policy.on_hit(lbn, CachePriority(2), &req());
                return;
            }
            if self.resident.len() == self.capacity {
                match self.policy.pop_victim(lbn, &req()) {
                    Some(victim) => {
                        assert!(self.resident.remove(&victim), "victim {victim:?} tracked");
                        // The engine completes the eviction it was handed.
                        self.policy.on_remove_reasoned(
                            victim,
                            CachePriority(2),
                            RemoveReason::Evict,
                        );
                    }
                    None => return, // bypass
                }
            }
            self.policy.on_insert(lbn, &req());
            self.resident.insert(lbn);
        }
    }

    #[test]
    fn one_shot_scan_does_not_displace_the_reused_set() {
        let mut h = Harness::new(8);
        // Establish a reused set: touch 0..4 twice (second touch promotes
        // to T2).
        for round in 0..2 {
            for i in 0..4u64 {
                h.access(BlockAddr(i));
            }
            let _ = round;
        }
        assert_eq!(h.policy.t2_len(), 4);
        // A long one-shot scan must churn T1 and leave T2 alone.
        for i in 100..200u64 {
            h.access(BlockAddr(i));
        }
        for i in 0..4u64 {
            assert!(h.resident.contains(&BlockAddr(i)), "hot block {i} evicted");
        }
        assert_eq!(h.policy.t2_len(), 4);
    }

    #[test]
    fn cold_sequential_fill_keeps_no_ghosts() {
        // With |T1| at capacity, the directory bound |T1| + |B1| ≤ c
        // leaves no room for recency ghosts — the paper's case IV(b):
        // pure one-shot traffic is forgotten entirely.
        let mut h = Harness::new(4);
        for i in 0..10u64 {
            h.access(BlockAddr(i));
        }
        assert_eq!(h.policy.t1_len(), 4);
        assert_eq!(h.policy.b1_len(), 0);
    }

    #[test]
    fn b1_ghost_hit_grows_p_and_reinserts_into_t2() {
        let mut h = Harness::new(4);
        // Two re-referenced blocks in T2, two once-seen in T1.
        for i in 0..2u64 {
            h.access(BlockAddr(i));
            h.access(BlockAddr(i));
        }
        h.access(BlockAddr(10));
        h.access(BlockAddr(11));
        assert_eq!((h.policy.t1_len(), h.policy.t2_len()), (2, 2));
        // Overflow: the T1 LRU block (10) is evicted and remembered in B1
        // (|T1| < c, so the directory has room for the ghost).
        h.access(BlockAddr(12));
        assert!(h.policy.b1_len() > 0);
        let p_before = h.policy.p();
        // Miss on the B1 ghost: p grows, the block lands in T2.
        h.access(BlockAddr(10));
        assert!(h.policy.p() > p_before, "B1 hit must grow p");
        assert!(h.policy.t2_len() >= 3);
    }

    #[test]
    fn b2_ghost_hit_shrinks_p() {
        let mut h = Harness::new(2);
        // Build a T2 block, then force it out so B2 remembers it.
        h.access(BlockAddr(1));
        h.access(BlockAddr(1)); // promote to T2
        h.access(BlockAddr(2));
        h.access(BlockAddr(3)); // evictions begin
        h.access(BlockAddr(4));
        h.access(BlockAddr(5));
        // By now T2's block 1 has been replaced; find the state where B2
        // holds it (the exact step depends on p's trajectory).
        if h.policy.b2_len() > 0 {
            // Grow p first so the shrink is observable.
            let grow = h.policy.capacity();
            h.policy.p = grow;
            h.access(BlockAddr(1));
            assert!(h.policy.p() < grow, "B2 hit must shrink p");
        }
    }

    #[test]
    fn p_and_residency_stay_within_bounds_under_churn() {
        let mut h = Harness::new(16);
        // Establish a reused set in T2 …
        for i in 0..4u64 {
            h.access(BlockAddr(i));
            h.access(BlockAddr(i));
        }
        for i in 0..2_000u64 {
            // … then churn with a blend of short-distance reuse and
            // one-shot traffic.
            let addr = if i % 4 < 2 { i % 8 } else { 1_000 + i };
            h.access(BlockAddr(addr));
            assert!(h.policy.t1_len() + h.policy.t2_len() <= h.policy.capacity());
            assert!(h.policy.p() <= h.policy.capacity());
            assert!(h.policy.b1_len() <= h.policy.capacity());
            assert!(h.policy.b2_len() <= h.policy.capacity());
            assert!(h.policy.t1_len() + h.policy.b1_len() <= h.policy.capacity());
        }
        // The reused set must have been promoted at some point.
        assert!(h.policy.t2_len() > 0);
    }

    #[test]
    fn trim_forgets_residents_and_ghosts() {
        let mut h = Harness::new(2);
        h.access(BlockAddr(0));
        h.access(BlockAddr(0)); // T2
        h.access(BlockAddr(1)); // T1; full
        h.access(BlockAddr(2)); // evicts 1 into B1 (|T1| < c leaves room)
        let ghosted = BlockAddr(1);
        assert!(h.policy.b1.contains(ghosted));
        // Resident trim.
        let resident = *h.resident.iter().next().expect("something resident");
        h.policy
            .on_remove_reasoned(resident, CachePriority(2), RemoveReason::Trim);
        assert_eq!(h.policy.t1_len() + h.policy.t2_len(), h.resident.len() - 1);
        // Absent trim clears the ghost, so a later re-use is a cold miss.
        h.policy.on_trim_absent(ghosted);
        assert!(!h.policy.b1.contains(ghosted));
        assert!(!h.policy.b2.contains(ghosted));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The ARC structural invariants hold on any access/TRIM trace
        /// replayed under the engine contract: residency never exceeds
        /// the capacity (`|T1| + |T2| ≤ c` and matches the model's
        /// resident set), the self-tuning target stays in `[0, c]`, and
        /// every directory stays bounded.
        #[test]
        fn arc_invariants_hold_on_arbitrary_traces(
            capacity in 1u64..32,
            events in proptest::collection::vec(
                (0u64..64, proptest::prelude::any::<bool>()),
                1..300,
            ),
        ) {
            use proptest::prelude::prop_assert;
            let mut h = Harness::new(capacity);
            for (addr, is_trim) in events {
                let lbn = BlockAddr(addr);
                if is_trim {
                    if h.resident.remove(&lbn) {
                        h.policy
                            .on_remove_reasoned(lbn, CachePriority(2), RemoveReason::Trim);
                    } else {
                        h.policy.on_trim_absent(lbn);
                    }
                } else {
                    h.access(lbn);
                }
                let c = h.policy.capacity();
                prop_assert!(h.policy.t1_len() + h.policy.t2_len() <= c);
                prop_assert!(h.policy.t1_len() + h.policy.t2_len() == h.resident.len());
                prop_assert!(h.policy.p() <= c);
                prop_assert!(h.policy.b1_len() <= c);
                prop_assert!(h.policy.b2_len() <= c);
                prop_assert!(h.policy.t1_len() + h.policy.b1_len() <= c);
            }
        }
    }

    #[test]
    fn steal_victim_replaces_without_adapting() {
        let mut p = ArcPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req());
        let p_before = p.p();
        // A compositor steals a slot for a foreign block: plain REPLACE,
        // completed by the engine's Evict notification.
        let victim = p.steal_victim(&req()).expect("resident blocks exist");
        assert_eq!(victim, BlockAddr(1), "T1 LRU under p = 0");
        p.on_remove_reasoned(victim, CachePriority(2), RemoveReason::Evict);
        assert_eq!(p.p(), p_before, "no adaptation for a foreign insert");
        assert!(p.b1.contains(BlockAddr(1)), "victim ghosted as usual");
        // A later genuine miss on the ghost still adapts normally.
        p.on_insert(BlockAddr(1), &req());
        assert!(p.p() > p_before, "B1 ghost hit must still grow p");
        assert!(!p.b1.contains(BlockAddr(1)));
    }

    #[test]
    fn external_evict_is_remembered_as_a_ghost() {
        let mut p = ArcPolicy::new(4);
        p.on_insert(BlockAddr(1), &req()); // T1
        p.on_insert(BlockAddr(2), &req());
        p.on_hit(BlockAddr(2), CachePriority(2), &req()); // T2
        p.on_remove_reasoned(BlockAddr(1), CachePriority(2), RemoveReason::Evict);
        p.on_remove_reasoned(BlockAddr(2), CachePriority(2), RemoveReason::Evict);
        assert!(p.b1.contains(BlockAddr(1)), "T1 evict lands in B1");
        assert!(p.b2.contains(BlockAddr(2)), "T2 evict lands in B2");
        assert_eq!(p.t1_len() + p.t2_len(), 0);
        // Re-inserting a ghosted address goes straight to T2.
        p.on_insert(BlockAddr(1), &req());
        assert_eq!(p.t2_len(), 1);
    }
}
