//! A bounded ghost list: recency-ordered history of *non-resident* block
//! addresses.
//!
//! Ghost-keeping policies remember addresses they recently evicted so a
//! re-reference can be told apart from a first touch: 2Q promotes a block
//! to its main queue only when the address is found on `A1out`, and ARC
//! steers its self-tuning target `p` by which of its two ghost lists (`B1`
//! for recency victims, `B2` for frequency victims) a miss lands on. The
//! plumbing is identical in both — insert at the MRU end, age out at the
//! LRU end when over capacity, forget on TRIM — so it lives here once.
//!
//! A ghost entry holds **no cache space**; only the address is remembered.

use crate::lru::{ListBackend, LruList};
use hstorage_storage::BlockAddr;

/// A capacity-bounded FIFO/LRU of remembered block addresses.
#[derive(Debug, Clone)]
pub struct GhostList {
    list: LruList,
    capacity: usize,
}

impl GhostList {
    /// Creates an empty ghost list remembering at most `capacity`
    /// addresses. A capacity of 0 remembers nothing (every
    /// [`GhostList::remember`] is immediately aged out).
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(capacity, ListBackend::default())
    }

    /// Creates an empty ghost list on an explicit interior backend.
    pub fn with_backend(capacity: usize, backend: ListBackend) -> Self {
        GhostList {
            list: LruList::with_backend(backend),
            capacity,
        }
    }

    /// Maximum number of addresses remembered.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of addresses currently remembered.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no address is remembered.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Whether `lbn` is remembered.
    pub fn contains(&self, lbn: BlockAddr) -> bool {
        self.list.contains(&lbn)
    }

    /// Remembers `lbn` at the most-recent end, aging out the oldest
    /// remembered address while the list is over capacity. Re-remembering
    /// an address moves it to the most-recent end without duplicating it.
    pub fn remember(&mut self, lbn: BlockAddr) {
        self.list.insert_mru(lbn);
        while self.list.len() > self.capacity {
            self.list.pop_lru();
        }
    }

    /// Forgets `lbn` (ghost hit consumed, or the block's lifetime ended in
    /// a TRIM). Returns `true` if the address was remembered.
    pub fn forget(&mut self, lbn: BlockAddr) -> bool {
        self.list.remove(&lbn)
    }

    /// Removes and returns the oldest remembered address (directory
    /// trimming, e.g. ARC's bound on `|T1| + |B1|`).
    pub fn pop_oldest(&mut self) -> Option<BlockAddr> {
        self.list.pop_lru()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remember_trims_to_capacity_in_fifo_order() {
        let mut g = GhostList::new(3);
        for i in 0..5u64 {
            g.remember(BlockAddr(i));
        }
        assert_eq!(g.len(), 3);
        assert_eq!(g.capacity(), 3);
        // The two oldest were aged out.
        assert!(!g.contains(BlockAddr(0)));
        assert!(!g.contains(BlockAddr(1)));
        for i in 2..5u64 {
            assert!(g.contains(BlockAddr(i)), "ghost {i} must survive");
        }
        assert_eq!(g.pop_oldest(), Some(BlockAddr(2)));
    }

    #[test]
    fn duplicate_remember_refreshes_without_duplicating() {
        let mut g = GhostList::new(2);
        g.remember(BlockAddr(1));
        g.remember(BlockAddr(2));
        // Re-remembering 1 moves it to the MRU end; the list must not
        // grow, and 2 is now the oldest.
        g.remember(BlockAddr(1));
        assert_eq!(g.len(), 2);
        g.remember(BlockAddr(3));
        assert!(!g.contains(BlockAddr(2)), "2 aged out, not the refreshed 1");
        assert!(g.contains(BlockAddr(1)));
        assert!(g.contains(BlockAddr(3)));
    }

    #[test]
    fn hit_forgets_exactly_the_hit_address() {
        let mut g = GhostList::new(4);
        for i in 0..3u64 {
            g.remember(BlockAddr(i));
        }
        // A ghost hit consumes the entry: the promoted address leaves the
        // list, everything else stays.
        assert!(g.forget(BlockAddr(1)));
        assert!(!g.contains(BlockAddr(1)));
        assert!(!g.forget(BlockAddr(1)), "second forget finds nothing");
        assert_eq!(g.len(), 2);
        assert!(g.contains(BlockAddr(0)));
        assert!(g.contains(BlockAddr(2)));
    }

    #[test]
    fn zero_capacity_remembers_nothing() {
        let mut g = GhostList::new(0);
        g.remember(BlockAddr(7));
        assert!(g.is_empty());
        assert!(!g.contains(BlockAddr(7)));
        assert_eq!(g.pop_oldest(), None);
    }
}
