//! Per-stream policy mixing: one inner [`CachePolicy`] per request class.
//!
//! Mixed workloads have no single best replacement algorithm — the
//! paper's semantic policy is unbeatable where QoS priorities carry real
//! information (scans, temporary data, buffered updates), while an
//! adaptive or scan-resistant algorithm can do better on anonymous random
//! point reads. The [`PerStreamPolicy`] compositor routes every request
//! to an inner policy chosen by its [`RequestClass`]
//! ([`StreamRouting`]), behind the same [`CachePolicy`] trait, so the
//! engine (and therefore sharding, batching, statistics and the write
//! buffer) is unaware that several algorithms share a shard.
//!
//! Ownership: each resident block belongs to exactly one inner policy —
//! the one its *inserting* request was routed to. Hits are forwarded to
//! the owner (not re-routed by the hitting request's class, which may
//! differ), and engine-initiated removals fan out with their
//! [`RemoveReason`]: a TRIM also tells every *other* inner to drop any
//! ghost history for the dead address.
//!
//! The engine's write buffer is one more stream, identified by its QoS
//! rather than its class: any request that resolves to the write-buffer
//! priority (group 0) is routed to the write-buffering inner (if the
//! routing has one) regardless of request class, so every group-0 block
//! is owned by the inner the buffer drain visits and the engine's
//! occupancy accounting can never strand.

use crate::lru::ListBackend;
use crate::policy::{
    ArcPolicy, CachePolicy, CflruPolicy, HitOutcome, LruPolicy, PolicyRequest, RemoveReason,
    SemanticPriorityPolicy, TwoQPolicy,
};
use crate::table::OpenMap;
use hstorage_storage::{BlockAddr, CachePriority, PolicyConfig, RequestClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A leaf policy assignable to one stream of the compositor — every
/// shipped algorithm except the compositor itself (nesting would add
/// indirection without adding routing power).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamPolicyKind {
    /// The paper's semantic priority policy. The default for every stream
    /// whose requests carry meaningful QoS information.
    #[default]
    SemanticPriority,
    /// Plain LRU.
    Lru,
    /// Clean-first LRU; `window_pct` as in
    /// [`CachePolicyKind::Cflru`](crate::policy::CachePolicyKind::Cflru).
    Cflru {
        /// Clean-first window as a percentage of the shard capacity.
        window_pct: u8,
    },
    /// Scan-resistant 2Q; knobs as in
    /// [`CachePolicyKind::TwoQ`](crate::policy::CachePolicyKind::TwoQ).
    TwoQ {
        /// Probationary-queue target as a percentage of the shard capacity.
        kin_pct: u8,
        /// Ghost-list capacity as a percentage of the shard capacity.
        kout_pct: u8,
    },
    /// Self-tuning adaptive replacement.
    Arc,
}

impl StreamPolicyKind {
    /// 2Q with its default knobs.
    pub fn two_q() -> StreamPolicyKind {
        StreamPolicyKind::TwoQ {
            kin_pct: TwoQPolicy::DEFAULT_KIN_PCT,
            kout_pct: TwoQPolicy::DEFAULT_KOUT_PCT,
        }
    }

    /// CFLRU with its default window.
    pub fn cflru() -> StreamPolicyKind {
        StreamPolicyKind::Cflru {
            window_pct: CflruPolicy::DEFAULT_WINDOW_PCT,
        }
    }

    /// Short label for routing descriptions.
    pub fn label(&self) -> &'static str {
        match self {
            StreamPolicyKind::SemanticPriority => "semantic-priority",
            StreamPolicyKind::Lru => "lru",
            StreamPolicyKind::Cflru { .. } => "cflru",
            StreamPolicyKind::TwoQ { .. } => "2q",
            StreamPolicyKind::Arc => "arc",
        }
    }

    /// Validates the knob ranges — the single source of truth for the
    /// leaf bounds; the top-level [`CachePolicyKind::validate`] delegates
    /// here for its non-compositor variants.
    ///
    /// [`CachePolicyKind::validate`]: crate::policy::CachePolicyKind::validate
    pub fn validate(&self) -> Result<(), String> {
        match self {
            StreamPolicyKind::Cflru { window_pct } => {
                if !(1..=100).contains(window_pct) {
                    return Err(format!(
                        "CFLRU window_pct = {window_pct} must be in 1..=100"
                    ));
                }
                Ok(())
            }
            StreamPolicyKind::TwoQ { kin_pct, kout_pct } => {
                if !(1..=100).contains(kin_pct) {
                    return Err(format!("2Q kin_pct = {kin_pct} must be in 1..=100"));
                }
                if !(1..=200).contains(kout_pct) {
                    return Err(format!("2Q kout_pct = {kout_pct} must be in 1..=200"));
                }
                Ok(())
            }
            StreamPolicyKind::SemanticPriority | StreamPolicyKind::Lru | StreamPolicyKind::Arc => {
                Ok(())
            }
        }
    }

    /// Builds the policy instance for a shard of `shard_capacity` slots —
    /// the single leaf-construction dispatch, also used by
    /// [`CachePolicyKind::build`] for its non-compositor variants.
    /// Windows and ghost capacities are sized against the full shard
    /// capacity — the compositor's streams share the shard's slots, so
    /// each inner is given the shard-level sizing it would have
    /// standalone.
    ///
    /// [`CachePolicyKind::build`]: crate::policy::CachePolicyKind::build
    pub fn build(&self, config: &PolicyConfig, shard_capacity: u64) -> Box<dyn CachePolicy> {
        self.build_backed(config, shard_capacity, ListBackend::default())
    }

    /// Like [`StreamPolicyKind::build`], on an explicit interior backend.
    pub fn build_backed(
        &self,
        config: &PolicyConfig,
        shard_capacity: u64,
        backend: ListBackend,
    ) -> Box<dyn CachePolicy> {
        match self {
            StreamPolicyKind::SemanticPriority => {
                Box::new(SemanticPriorityPolicy::new_backed(*config, backend))
            }
            StreamPolicyKind::Lru => Box::new(LruPolicy::with_backend(backend)),
            StreamPolicyKind::Cflru { window_pct } => Box::new(CflruPolicy::with_window_backed(
                shard_capacity,
                *window_pct,
                backend,
            )),
            StreamPolicyKind::TwoQ { kin_pct, kout_pct } => Box::new(
                TwoQPolicy::with_knobs_backed(shard_capacity, *kin_pct, *kout_pct, backend),
            ),
            StreamPolicyKind::Arc => Box::new(ArcPolicy::new_backed(shard_capacity, backend)),
        }
    }
}

impl fmt::Display for StreamPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which inner policy serves each request stream. `TemporaryDataTrim`
/// requests (the end-of-lifetime accesses of temporary data) are routed
/// with the `temporary` stream — they address the same blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamRouting {
    /// Policy for `RequestClass::Sequential` (table scans).
    pub sequential: StreamPolicyKind,
    /// Policy for `RequestClass::Random` (index-driven point reads).
    pub random: StreamPolicyKind,
    /// Policy for `RequestClass::TemporaryData` and
    /// `RequestClass::TemporaryDataTrim`.
    pub temporary: StreamPolicyKind,
    /// Policy for `RequestClass::Update` (buffered writes).
    pub update: StreamPolicyKind,
}

impl Default for StreamRouting {
    /// The shipped mix: semantic wherever QoS priorities carry
    /// information (scan bypassing, temporary-data lifetimes, the write
    /// buffer), self-tuning ARC for anonymous random point reads.
    fn default() -> Self {
        StreamRouting {
            sequential: StreamPolicyKind::SemanticPriority,
            random: StreamPolicyKind::Arc,
            temporary: StreamPolicyKind::SemanticPriority,
            update: StreamPolicyKind::SemanticPriority,
        }
    }
}

impl StreamRouting {
    /// The four stream assignments in routing order (sequential, random,
    /// temporary, update).
    pub fn streams(&self) -> [StreamPolicyKind; 4] {
        [self.sequential, self.random, self.temporary, self.update]
    }

    /// The inner policy kind serving `class`.
    pub fn for_class(&self, class: RequestClass) -> StreamPolicyKind {
        match class {
            RequestClass::Sequential => self.sequential,
            RequestClass::Random => self.random,
            RequestClass::TemporaryData | RequestClass::TemporaryDataTrim => self.temporary,
            RequestClass::Update => self.update,
        }
    }

    /// Validates every leaf and the write-buffer contract: the engine's
    /// write buffer is fed by `WriteBuffer`-QoS requests, which the DBMS
    /// issues on the update stream — so when any stream runs the
    /// (write-buffering) semantic policy, the update stream must run it
    /// too, otherwise buffered blocks would be tracked by an inner the
    /// buffer drain never visits.
    pub fn validate(&self) -> Result<(), String> {
        for kind in self.streams() {
            kind.validate()?;
        }
        let uses_semantic = self.streams().contains(&StreamPolicyKind::SemanticPriority);
        if uses_semantic && self.update != StreamPolicyKind::SemanticPriority {
            return Err(format!(
                "per-stream routing assigns the semantic (write-buffering) policy to some \
                 stream but `{}` to the update stream; buffered updates would never be \
                 drained — route update to semantic-priority too, or use no semantic \
                 stream at all",
                self.update.label()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for StreamRouting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={},rand={},temp={},upd={}",
            self.sequential, self.random, self.temporary, self.update
        )
    }
}

/// The compositor: routes block events to per-stream inner policies and
/// keeps the block → owner mapping.
///
/// Inner policies are deduplicated by kind — with the default routing the
/// sequential, temporary and update streams share **one**
/// `SemanticPriorityPolicy` instance, so those streams compete in one
/// priority-group structure exactly as they would under the plain
/// semantic policy.
pub struct PerStreamPolicy {
    /// Distinct inner policies, in first-use order of the routing.
    inners: Vec<Box<dyn CachePolicy>>,
    /// Routing table: `RequestClass` slot → index into `inners`.
    route: [usize; 5],
    /// Index of the write-buffering inner, if the routing has one: every
    /// request resolving to group 0 routes here irrespective of class.
    buffering: Option<usize>,
    /// Which inner tracks each resident block (contains/point lookups
    /// only, so the flat open-addressing map serves both backends).
    owner: OpenMap<u32>,
    /// Resident block count per inner (drives victim-stealing fallback).
    owned: Vec<usize>,
}

impl PerStreamPolicy {
    /// Builds the compositor for one shard. Panics on an invalid
    /// `routing` (see [`StreamRouting::validate`]) — the configuration
    /// layers validate earlier, but direct construction is checked too.
    pub fn new(config: PolicyConfig, shard_capacity: u64, routing: StreamRouting) -> Self {
        Self::new_backed(config, shard_capacity, routing, ListBackend::default())
    }

    /// Builds the compositor on an explicit interior backend (threaded
    /// into every inner policy).
    pub fn new_backed(
        config: PolicyConfig,
        shard_capacity: u64,
        routing: StreamRouting,
        backend: ListBackend,
    ) -> Self {
        routing
            .validate()
            .expect("invalid per-stream routing configuration");
        let picks = [
            routing.for_class(RequestClass::Sequential),
            routing.for_class(RequestClass::Random),
            routing.for_class(RequestClass::TemporaryData),
            routing.for_class(RequestClass::TemporaryDataTrim),
            routing.for_class(RequestClass::Update),
        ];
        let mut kinds: Vec<StreamPolicyKind> = Vec::new();
        let mut route = [0usize; 5];
        for (slot, kind) in picks.iter().enumerate() {
            let idx = match kinds.iter().position(|k| k == kind) {
                Some(i) => i,
                None => {
                    kinds.push(*kind);
                    kinds.len() - 1
                }
            };
            route[slot] = idx;
        }
        let inners: Vec<Box<dyn CachePolicy>> = kinds
            .iter()
            .map(|k| k.build_backed(&config, shard_capacity, backend))
            .collect();
        let buffering = inners
            .iter()
            .position(|p| p.write_buffered(CachePriority(0)));
        let owned = vec![0; inners.len()];
        PerStreamPolicy {
            inners,
            route,
            buffering,
            owner: OpenMap::new(),
            owned,
        }
    }

    /// Number of distinct inner policies (after deduplication).
    pub fn inner_count(&self) -> usize {
        self.inners.len()
    }

    fn slot(class: RequestClass) -> usize {
        match class {
            RequestClass::Sequential => 0,
            RequestClass::Random => 1,
            RequestClass::TemporaryData => 2,
            RequestClass::TemporaryDataTrim => 3,
            RequestClass::Update => 4,
        }
    }

    fn route_of(&self, class: RequestClass) -> usize {
        self.route[Self::slot(class)]
    }

    /// The inner serving `req`: write-buffer traffic (group 0) goes to
    /// the buffering inner whatever its class, everything else routes by
    /// request class.
    fn route_for(&self, req: &PolicyRequest) -> usize {
        if req.prio == CachePriority(0) {
            if let Some(idx) = self.buffering {
                return idx;
            }
        }
        self.route_of(req.class)
    }
}

impl CachePolicy for PerStreamPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        current: CachePriority,
        req: &PolicyRequest,
    ) -> HitOutcome {
        // Hits go to the block's owner: the class of the *hitting*
        // request may differ from the class that inserted the block (a
        // scan re-reading random-cached pages must not consult the wrong
        // inner).
        match self.owner.get(lbn.0) {
            Some(&idx) => self.inners[idx as usize].on_hit(lbn, current, req),
            None => {
                debug_assert!(false, "hit on unowned block {lbn:?}");
                HitOutcome::Unchanged
            }
        }
    }

    fn admits(&self, req: &PolicyRequest) -> bool {
        self.inners[self.route_for(req)].admits(req)
    }

    // A hit only routes to the block's owning inner; the compositor keeps
    // no hit-order state of its own, so the repeat is idempotent exactly
    // when every inner's is.
    fn repeat_hit_idempotent(&self) -> bool {
        self.inners
            .iter()
            .all(|inner| inner.repeat_hit_idempotent())
    }

    fn pop_victim(&mut self, incoming: BlockAddr, req: &PolicyRequest) -> Option<BlockAddr> {
        // The stream's own inner chooses first. If it *has* residents and
        // still declines (the semantic policy refusing to displace
        // higher-priority data), the refusal stands — the request
        // bypasses. Only when the inner owns nothing is a victim stolen
        // from the other streams, in deterministic inner order, so a new
        // stream can carve space out of a cache another stream filled.
        // Selection only: ownership bookkeeping (and the robbed inner's
        // untracking/ghosting) happens when the engine completes the
        // eviction via `on_remove_reasoned`.
        let primary = self.route_for(req);
        if self.owned[primary] > 0 {
            let victim = self.inners[primary].pop_victim(incoming, req)?;
            debug_assert_eq!(
                self.owner.get(victim.0),
                Some(&(primary as u32)),
                "victim owned by its inner"
            );
            return Some(victim);
        }
        for idx in (0..self.inners.len()).filter(|&i| i != primary) {
            if self.owned[idx] == 0 {
                continue;
            }
            // Stolen space hosts a block the robbed inner will never
            // track, so the adaptation-free steal hook is used — ARC must
            // not tune `p` (or consume ghost state) for a foreign insert.
            if let Some(victim) = self.inners[idx].steal_victim(req) {
                debug_assert_eq!(
                    self.owner.get(victim.0),
                    Some(&(idx as u32)),
                    "stolen victim owned by the robbed inner"
                );
                return Some(victim);
            }
        }
        None
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        let idx = self.route_for(req);
        self.owner.insert(lbn.0, idx as u32);
        self.owned[idx] += 1;
        self.inners[idx].on_insert(lbn, req)
    }

    fn on_remove(&mut self, lbn: BlockAddr, group: CachePriority) {
        if let Some(idx) = self.owner.remove(lbn.0) {
            let idx = idx as usize;
            self.owned[idx] -= 1;
            self.inners[idx].on_remove(lbn, group);
        }
    }

    fn on_remove_reasoned(&mut self, lbn: BlockAddr, group: CachePriority, reason: RemoveReason) {
        if let Some(idx) = self.owner.remove(lbn.0) {
            let idx = idx as usize;
            self.owned[idx] -= 1;
            self.inners[idx].on_remove_reasoned(lbn, group, reason);
            if reason == RemoveReason::Trim {
                // The address is dead for every stream: ghost-keeping
                // inners that ever saw it must forget it too.
                for (j, inner) in self.inners.iter_mut().enumerate() {
                    if j != idx {
                        inner.on_trim_absent(lbn);
                    }
                }
            }
        }
    }

    fn on_trim_absent(&mut self, lbn: BlockAddr) {
        for inner in &mut self.inners {
            inner.on_trim_absent(lbn);
        }
    }

    fn write_buffered(&self, group: CachePriority) -> bool {
        self.inners.iter().any(|i| i.write_buffered(group))
    }

    fn drain_write_buffer(&mut self) -> Vec<BlockAddr> {
        // Selection only: the inners merely name their buffered blocks;
        // ownership is released by the engine's per-block Evict
        // notifications.
        let mut drained = Vec::new();
        for inner in &mut self.inners {
            drained.extend(inner.drain_write_buffer());
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{Direction, QosPolicy};

    fn preq(class: RequestClass, qos: QosPolicy, direction: Direction) -> PolicyRequest {
        let config = PolicyConfig::paper_default();
        PolicyRequest {
            direction,
            class,
            qos,
            prio: config.resolve(qos),
        }
    }

    fn policy() -> PerStreamPolicy {
        PerStreamPolicy::new(PolicyConfig::paper_default(), 64, StreamRouting::default())
    }

    #[test]
    fn default_routing_dedups_to_two_inners() {
        let p = policy();
        // sequential/temporary/update share one semantic instance; random
        // gets ARC.
        assert_eq!(p.inner_count(), 2);
        assert_eq!(p.route_of(RequestClass::Sequential), 0);
        assert_eq!(p.route_of(RequestClass::TemporaryData), 0);
        assert_eq!(p.route_of(RequestClass::TemporaryDataTrim), 0);
        assert_eq!(p.route_of(RequestClass::Update), 0);
        assert_eq!(p.route_of(RequestClass::Random), 1);
    }

    #[test]
    fn admission_is_routed_by_class() {
        let p = policy();
        // A scan miss consults the semantic inner: bypass.
        assert!(!p.admits(&preq(
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
            Direction::Read
        )));
        // The same QoS on the random stream consults ARC: admitted (ARC
        // is classification-blind and admits everything).
        assert!(p.admits(&preq(
            RequestClass::Random,
            QosPolicy::NonCachingNonEviction,
            Direction::Read
        )));
    }

    #[test]
    fn hits_are_forwarded_to_the_owner_not_the_hitting_class() {
        let mut p = policy();
        let random = preq(
            RequestClass::Random,
            QosPolicy::priority(2),
            Direction::Read,
        );
        p.on_insert(BlockAddr(7), &random);
        // A sequential re-read of the ARC-owned block must reach ARC (a
        // T1→T2 promotion), not the semantic inner (which would panic in
        // debug: it never tracked the block).
        let scan = preq(
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
            Direction::Read,
        );
        assert_eq!(
            p.on_hit(BlockAddr(7), CachePriority(2), &scan),
            HitOutcome::Unchanged
        );
    }

    #[test]
    fn empty_stream_steals_a_victim_from_other_streams() {
        let mut p = policy();
        let random = preq(
            RequestClass::Random,
            QosPolicy::priority(2),
            Direction::Read,
        );
        for i in 0..4u64 {
            p.on_insert(BlockAddr(i), &random);
        }
        // A temporary-data write arrives with the (shared) semantic inner
        // empty: the victim must come from ARC's stock.
        let temp = preq(
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
            Direction::Write,
        );
        let victim = p.pop_victim(BlockAddr(100), &temp).expect("steal succeeds");
        p.on_remove_reasoned(victim, CachePriority(2), RemoveReason::Evict);
        assert_eq!(p.owned[1], 3, "ARC gave up one block");
    }

    #[test]
    fn primary_refusal_is_respected_when_it_owns_blocks() {
        let mut p = policy();
        // Fill the semantic inner with top-priority temporary data.
        let temp = preq(
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
            Direction::Write,
        );
        for i in 0..4u64 {
            p.on_insert(BlockAddr(i), &temp);
        }
        // A lower-priority update-stream read routed to the same semantic
        // inner: it declines (prio 5 cannot displace prio 1), and the
        // compositor must not steal from elsewhere on its behalf.
        let weak = preq(
            RequestClass::Update,
            QosPolicy::priority(5),
            Direction::Read,
        );
        assert_eq!(p.pop_victim(BlockAddr(200), &weak), None);
        assert_eq!(p.owned[0], 4);
    }

    #[test]
    fn trim_fans_ghost_forgetting_out_to_every_inner() {
        let routing = StreamRouting {
            random: StreamPolicyKind::two_q(),
            sequential: StreamPolicyKind::Lru,
            temporary: StreamPolicyKind::Lru,
            update: StreamPolicyKind::Lru,
        };
        assert!(routing.validate().is_ok());
        let mut p = PerStreamPolicy::new(PolicyConfig::paper_default(), 8, routing);
        let random = preq(
            RequestClass::Random,
            QosPolicy::priority(2),
            Direction::Read,
        );
        // Insert on the 2Q stream, evict it (ghosted), then trim the
        // absent address: the ghost must die so a re-use is a cold start.
        p.on_insert(BlockAddr(3), &random);
        let victim = p.pop_victim(BlockAddr(4), &random).expect("2Q evicts");
        assert_eq!(victim, BlockAddr(3));
        p.on_remove_reasoned(victim, CachePriority(2), RemoveReason::Evict);
        p.on_trim_absent(BlockAddr(3));
        p.on_insert(BlockAddr(3), &random);
        p.on_insert(BlockAddr(4), &random);
        p.on_insert(BlockAddr(5), &random);
        // Were the ghost alive, 3 would sit protected in Am and the
        // probationary FIFO would give up 4; after the trim, 3 is a
        // first-touch block again and evicts first.
        assert_eq!(p.pop_victim(BlockAddr(6), &random), Some(BlockAddr(3)));
    }

    #[test]
    fn resident_trim_fans_out_with_its_reason() {
        let mut p = policy();
        let random = preq(
            RequestClass::Random,
            QosPolicy::priority(2),
            Direction::Read,
        );
        p.on_insert(BlockAddr(9), &random);
        p.on_remove_reasoned(BlockAddr(9), CachePriority(2), RemoveReason::Trim);
        assert_eq!(p.owned[1], 0);
        // Unknown blocks are ignored (engine never reports them, but the
        // fan-out must not underflow).
        p.on_remove_reasoned(BlockAddr(9), CachePriority(2), RemoveReason::Trim);
    }

    #[test]
    fn write_buffer_is_served_by_the_semantic_inner() {
        let mut p = policy();
        let upd = preq(
            RequestClass::Update,
            QosPolicy::WriteBuffer,
            Direction::Write,
        );
        assert!(p.write_buffered(CachePriority(0)));
        assert!(!p.write_buffered(CachePriority(2)));
        p.on_insert(BlockAddr(1), &upd);
        p.on_insert(
            BlockAddr(2),
            &preq(
                RequestClass::Random,
                QosPolicy::priority(2),
                Direction::Read,
            ),
        );
        let mut drained = p.drain_write_buffer();
        drained.sort();
        assert_eq!(drained, vec![BlockAddr(1)]);
        // The engine completes the drain with one Evict per block.
        for lbn in &drained {
            p.on_remove_reasoned(*lbn, CachePriority(0), RemoveReason::Evict);
        }
        assert_eq!(p.owned[0], 0);
        assert_eq!(p.owned[1], 1, "the ARC block stays");
    }

    #[test]
    fn write_buffer_qos_on_a_foreign_stream_routes_to_the_buffering_inner() {
        let mut p = policy();
        // A WriteBuffer-QoS request arriving with Random class (a stream
        // routed to ARC) resolves to group 0, so it must be owned by the
        // buffering semantic inner — otherwise the engine would count it
        // as buffered while the drain could never reach it, stranding the
        // occupancy accounting.
        let odd = preq(
            RequestClass::Random,
            QosPolicy::WriteBuffer,
            Direction::Write,
        );
        assert_eq!(p.on_insert(BlockAddr(5), &odd), CachePriority(0));
        assert_eq!(p.owned[0], 1, "owned by the buffering semantic inner");
        assert_eq!(p.owned[1], 0);
        assert_eq!(p.drain_write_buffer(), vec![BlockAddr(5)]);
        p.on_remove_reasoned(BlockAddr(5), CachePriority(0), RemoveReason::Evict);
        assert_eq!(p.owned[0], 0);
    }

    #[test]
    fn stealing_uses_the_adaptation_free_hook() {
        let mut p = policy();
        let random = preq(
            RequestClass::Random,
            QosPolicy::priority(2),
            Direction::Read,
        );
        // Make address 100 a B1 ghost of the ARC inner.
        p.on_insert(BlockAddr(100), &random);
        p.on_insert(BlockAddr(101), &random);
        p.on_hit(BlockAddr(101), CachePriority(2), &random); // 101 → T2
        let ghosted = p.pop_victim(BlockAddr(102), &random).expect("ARC evicts");
        assert_eq!(ghosted, BlockAddr(100));
        p.on_remove_reasoned(ghosted, CachePriority(2), RemoveReason::Evict);
        p.on_insert(BlockAddr(102), &random);
        // A temp-stream miss for the ghosted address steals from ARC (the
        // semantic inner owns nothing): ARC must neither consume the
        // ghost nor tune p for a block it will never track, so a later
        // genuine random-stream re-use of the address still reads as a
        // ghost hit (insert into T2, i.e. protected from the next steal).
        let temp = preq(
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
            Direction::Write,
        );
        let stolen = p.pop_victim(BlockAddr(100), &temp).expect("steal succeeds");
        p.on_remove_reasoned(stolen, CachePriority(2), RemoveReason::Evict);
        p.on_insert(BlockAddr(100), &temp); // owned by semantic now
        assert_eq!(p.owned[0], 1);
    }

    #[test]
    #[should_panic(expected = "invalid per-stream routing configuration")]
    fn direct_construction_validates_the_routing() {
        let bad = StreamRouting {
            random: StreamPolicyKind::Cflru { window_pct: 0 },
            ..StreamRouting::default()
        };
        let _ = PerStreamPolicy::new(PolicyConfig::paper_default(), 64, bad);
    }

    #[test]
    fn routing_validation_enforces_the_write_buffer_contract() {
        let bad = StreamRouting {
            sequential: StreamPolicyKind::SemanticPriority,
            random: StreamPolicyKind::Arc,
            temporary: StreamPolicyKind::SemanticPriority,
            update: StreamPolicyKind::Lru,
        };
        assert!(bad.validate().is_err());
        // All-baseline routings need no semantic update stream.
        let ok = StreamRouting {
            sequential: StreamPolicyKind::Lru,
            random: StreamPolicyKind::Arc,
            temporary: StreamPolicyKind::two_q(),
            update: StreamPolicyKind::cflru(),
        };
        assert!(ok.validate().is_ok());
        // Leaf knobs are validated too.
        let bad_knob = StreamRouting {
            random: StreamPolicyKind::Cflru { window_pct: 0 },
            ..StreamRouting::default()
        };
        assert!(bad_knob.validate().is_err());
    }
}
