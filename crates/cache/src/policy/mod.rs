//! The pluggable cache-policy framework.
//!
//! The hybrid cache is split into a policy-agnostic *engine*
//! ([`crate::engine::CacheEngine`]) and a [`CachePolicy`] that owns every
//! *decision* the engine must make per block: whether a missing block may
//! be admitted, which resident block to displace when the cache is full,
//! and how a hit changes the block's standing. The engine keeps the
//! mechanism — shards, slot allocation, metadata, write-buffer accounting,
//! statistics and batched device submission — so one engine serves any
//! replacement algorithm.
//!
//! Shipped policies:
//!
//! * [`SemanticPriorityPolicy`] — the paper's selective allocation /
//!   selective eviction over per-priority LRU groups (the default),
//! * [`LruPolicy`] — a single classification-blind LRU stack,
//! * [`CflruPolicy`] — clean-first LRU: prefers evicting clean blocks to
//!   save write-backs (tunable clean-first window),
//! * [`TwoQPolicy`] — scan-resistant 2Q with a probationary FIFO and a
//!   ghost list (tunable `Kin`/`Kout`),
//! * [`ArcPolicy`] — adaptive replacement: two resident LRU lists backed
//!   by two [`GhostList`]s and a self-tuning recency/frequency target,
//! * [`PerStreamPolicy`] — a compositor that routes each request class to
//!   its own inner policy ([`StreamRouting`]), so mixed workloads get the
//!   best algorithm per stream.
//!
//! A policy instance is **per shard**: the engine builds one via
//! [`CachePolicyKind::build`] (or a custom factory) for each of its lock
//! stripes, so implementations need no internal synchronisation.

mod arc;
mod cflru;
mod ghost;
mod lru;
mod per_stream;
mod semantic;
mod two_q;

pub use arc::ArcPolicy;
pub use cflru::CflruPolicy;
pub use ghost::GhostList;
pub use lru::LruPolicy;
pub use per_stream::{PerStreamPolicy, StreamPolicyKind, StreamRouting};
pub use semantic::SemanticPriorityPolicy;
pub use two_q::TwoQPolicy;

use hstorage_storage::{
    BlockAddr, CachePriority, Direction, PolicyConfig, QosPolicy, RequestClass,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The per-block view of a request that a policy decides on: the I/O
/// direction, the request class the DBMS derived from semantic
/// information, the QoS policy the request carries, and the caching
/// priority it resolves to under the active [`PolicyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRequest {
    /// Read or write.
    pub direction: Direction,
    /// The request class (stream) the DBMS classified the request into —
    /// what [`PerStreamPolicy`] routes on.
    pub class: RequestClass,
    /// The QoS policy attached to the request by the DBMS storage manager.
    pub qos: QosPolicy,
    /// The priority the QoS policy resolves to (write buffer = 0).
    pub prio: CachePriority,
}

/// What a hit did to the block's residency bookkeeping, which the engine
/// must mirror in its metadata and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitOutcome {
    /// The block stayed in its group (possibly refreshed in recency).
    Unchanged,
    /// The block moved to a new priority group: the engine updates the
    /// metadata label, the write-buffer accounting and records a
    /// re-allocation.
    Moved(CachePriority),
}

/// Why the engine removed a tracked block without asking the policy for a
/// victim — the lifetime hint behind
/// [`CachePolicy::on_remove_reasoned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemoveReason {
    /// A TRIM invalidated the block: its lifetime has **ended** and the
    /// address may be re-used for unrelated data. History-keeping policies
    /// must forget everything about the address (like the semantic
    /// policy's end-of-lifetime handling of `NonCachingEviction` data).
    Trim,
    /// The engine displaced the block — it was selected by
    /// [`CachePolicy::pop_victim`] / [`CachePolicy::steal_victim`] or
    /// swept up by a write-buffer drain — and its slot was released. The
    /// address is still live, so ghost-keeping policies may remember it
    /// exactly as they would one of their own evictions.
    Evict,
}

/// A cache-replacement algorithm: the decision half of the hybrid cache.
///
/// The engine calls exactly one method per block event and mirrors the
/// outcome in its own metadata; the policy maintains whatever ordering
/// structures it needs (LRU lists, FIFO queues, ghost lists) and must keep
/// them consistent with the engine's resident set:
///
/// * every block passed to [`CachePolicy::on_insert`] is tracked until the
///   engine announces its removal via
///   [`CachePolicy::on_remove_reasoned`] — with [`RemoveReason::Trim`]
///   when a TRIM invalidates it, with [`RemoveReason::Evict`] when the
///   engine releases the slot itself (after the policy selected the block
///   via [`CachePolicy::pop_victim`] / [`CachePolicy::steal_victim`], or
///   after a write-buffer drain returned it);
/// * [`CachePolicy::pop_victim`], [`CachePolicy::steal_victim`] and
///   [`CachePolicy::drain_write_buffer`] are **selection-only**: they name
///   tracked blocks without untracking them — the follow-up
///   `on_remove_reasoned(…, Evict)` call does that. (Legacy policies that
///   eagerly untrack inside `pop_victim` keep working, because the default
///   removal hooks tolerate already-absent blocks.)
///
/// # Worked example: a custom FIFO policy
///
/// A policy that evicts in plain insertion order — no recency, no
/// semantics — plugs into the engine through
/// [`CacheEngine::with_policy_factory`](crate::engine::CacheEngine::with_policy_factory):
///
/// ```
/// use hstorage_cache::policy::{CachePolicy, HitOutcome, PolicyRequest};
/// use hstorage_cache::{CacheEngine, StorageSystem};
/// use hstorage_storage::{
///     BlockAddr, BlockRange, CachePriority, ClassifiedRequest, IoRequest, PolicyConfig,
///     QosPolicy, RequestClass,
/// };
/// use std::collections::VecDeque;
///
/// #[derive(Default)]
/// struct FifoPolicy {
///     queue: VecDeque<BlockAddr>,
/// }
///
/// impl CachePolicy for FifoPolicy {
///     fn on_hit(
///         &mut self,
///         _lbn: BlockAddr,
///         _current: CachePriority,
///         _req: &PolicyRequest,
///     ) -> HitOutcome {
///         HitOutcome::Unchanged // FIFO ignores recency entirely
///     }
///
///     fn admits(&self, _req: &PolicyRequest) -> bool {
///         true // admit everything, like the classical baselines
///     }
///
///     fn pop_victim(&mut self, _incoming: BlockAddr, _req: &PolicyRequest) -> Option<BlockAddr> {
///         // Selection only: the engine follows up with
///         // `on_remove_reasoned(…, RemoveReason::Evict)`, which lands in
///         // `on_remove` below and dequeues the block.
///         self.queue.front().copied()
///     }
///
///     fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
///         self.queue.push_back(lbn);
///         req.prio // recorded in the metadata, informational for FIFO
///     }
///
///     fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
///         self.queue.retain(|&b| b != lbn);
///     }
/// }
///
/// // A two-slot FIFO cache: the third insert evicts the *first* block,
/// // even though it was touched more recently than the second.
/// let engine = CacheEngine::new(PolicyConfig::paper_default(), 2)
///     .with_policy_factory("fifo", |_shard_capacity| Box::<FifoPolicy>::default());
/// let read = |lbn: u64| {
///     ClassifiedRequest::new(
///         IoRequest::read(BlockRange::new(lbn, 1), false),
///         RequestClass::Random,
///         QosPolicy::priority(2),
///     )
/// };
/// engine.submit(read(10));
/// engine.submit(read(11));
/// engine.submit(read(10)); // hit — FIFO order unchanged
/// engine.submit(read(12)); // full: evicts block 10, the oldest insert
/// assert_eq!(engine.name(), "fifo");
/// assert!(!engine.contains_block(BlockAddr(10)));
/// assert!(engine.contains_block(BlockAddr(11)));
/// assert!(engine.contains_block(BlockAddr(12)));
/// ```
pub trait CachePolicy: Send {
    /// Called when `lbn` (tracked, currently labelled `current`) is hit.
    /// The policy refreshes its internal ordering and reports whether the
    /// block moved to a different group.
    fn on_hit(&mut self, lbn: BlockAddr, current: CachePriority, req: &PolicyRequest)
        -> HitOutcome;

    /// Whether a block missing from the cache may be admitted at all under
    /// this request. Returning `false` bypasses the cache (the transfer
    /// goes straight to the second-level device).
    fn admits(&self, req: &PolicyRequest) -> bool;

    /// Whether a *repeat* hit is a no-op: calling [`CachePolicy::on_hit`]
    /// twice in a row with identical arguments (same block, same label,
    /// same request shape, no other policy event in between) leaves the
    /// policy in exactly the state the first call produced, and returns
    /// [`HitOutcome::Unchanged`] the second time.
    ///
    /// Policies declaring `true` opt their blocks into the engine's
    /// optimistic read path: a single-block read that repeats the
    /// immediately preceding hit on its shard is served through the shared
    /// metadata read view — statistics and device timing recorded, policy
    /// untouched — without acquiring the stripe mutex. That is only sound
    /// when the skipped `on_hit` is provably a no-op, which is exactly
    /// this contract. Every shipped policy satisfies it (an LRU touch of
    /// the block that is already most-recent does not reorder anything);
    /// the conservative default is `false`, so custom policies keep the
    /// always-locked behaviour unless they opt in.
    fn repeat_hit_idempotent(&self) -> bool {
        false
    }

    /// The shard is full and `incoming` (the missing block of `req`) was
    /// admitted: name the tracked block to displace, or `None` if the
    /// incoming block is not worth a resident one (the request then
    /// bypasses the cache). This is **selection-only** — the policy keeps
    /// tracking the named block until the engine completes the eviction
    /// with [`CachePolicy::on_remove_reasoned`] and
    /// [`RemoveReason::Evict`]. Most policies ignore `incoming`; ARC
    /// consults its ghost lists for it to bias the recency/frequency
    /// trade-off of its `REPLACE` step.
    fn pop_victim(&mut self, incoming: BlockAddr, req: &PolicyRequest) -> Option<BlockAddr>;

    /// Like [`CachePolicy::pop_victim`] (and equally selection-only), but
    /// on behalf of a block this policy will **never** track — a
    /// compositor stealing space for another stream's insert.
    /// Implementations must not update any per-address state for the
    /// request (ARC overrides this to skip its ghost-hit adaptation of
    /// `p`); the default simply delegates with a sentinel address, which
    /// is correct for every policy whose victim choice ignores the
    /// incoming block.
    fn steal_victim(&mut self, req: &PolicyRequest) -> Option<BlockAddr> {
        self.pop_victim(BlockAddr(u64::MAX), req)
    }

    /// `lbn` was just allocated a slot: start tracking it. The returned
    /// priority is recorded as the block's group label in the engine's
    /// metadata (and handed back via `current` on later events).
    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority;

    /// `lbn` (labelled `group`) is gone from the engine's resident set —
    /// a TRIM invalidated it, or the engine completed an eviction the
    /// policy selected: stop tracking it. Must tolerate blocks that are
    /// already untracked.
    fn on_remove(&mut self, lbn: BlockAddr, group: CachePriority);

    /// Reason-aware variant of [`CachePolicy::on_remove`]: the engine (or
    /// a compositor) reports *why* the block went away, so policies can
    /// exploit lifetime hints — a [`RemoveReason::Trim`] means the address
    /// is dead and any ghost history for it must be dropped, while a
    /// [`RemoveReason::Evict`] completes a displacement the policy (or a
    /// sibling stream's steal) selected, which ghost-keeping policies may
    /// remember like one of their own evictions. The default forwards to
    /// [`CachePolicy::on_remove`], so existing policies compile (and
    /// behave) unchanged.
    fn on_remove_reasoned(&mut self, lbn: BlockAddr, group: CachePriority, reason: RemoveReason) {
        let _ = reason;
        self.on_remove(lbn, group);
    }

    /// A TRIM invalidated `lbn` while it was **not** resident. The block's
    /// lifetime has ended and its address may be re-used for unrelated
    /// data, so policies that keep history about non-resident addresses
    /// (e.g. 2Q's ghost list) must forget it. Most policies keep no such
    /// history; the default does nothing.
    fn on_trim_absent(&mut self, lbn: BlockAddr) {
        let _ = lbn;
    }

    /// Whether blocks labelled `group` occupy the engine's write buffer.
    /// Only the semantic policy buffers writes; the baselines treat
    /// buffered updates as ordinary cached writes.
    ///
    /// The engine's write-buffer mechanism (occupancy limit, flush
    /// trigger, batch run-splitting) is keyed to **group 0** — the
    /// priority that `WriteBuffer` requests resolve to. A policy may
    /// therefore only ever return `true` for `CachePriority(0)`; the
    /// engine asserts this when the policy is installed.
    fn write_buffered(&self, group: CachePriority) -> bool {
        let _ = group;
        false
    }

    /// Name every write-buffered block (called by the engine when the
    /// buffer exceeds its share of the cache). Selection-only, like
    /// [`CachePolicy::pop_victim`]: the engine completes each removal via
    /// [`CachePolicy::on_remove_reasoned`] with [`RemoveReason::Evict`].
    /// Policies without a write buffer return nothing.
    fn drain_write_buffer(&mut self) -> Vec<BlockAddr> {
        Vec::new()
    }
}

/// Which [`CachePolicy`] the cache engine runs — the configuration-level
/// selector threaded from `StorageConfig` / `SystemConfig` down to the
/// engine. The tunable policies carry their knobs as variant fields
/// (validated by [`CachePolicyKind::validate`]); the bare constructors
/// ([`CachePolicyKind::cflru`], [`CachePolicyKind::two_q`],
/// [`CachePolicyKind::per_stream`]) fill in the paper-exact defaults, so
/// a configuration that never touches a knob behaves bit-identically to
/// the pre-knob framework.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// The paper's semantic, priority-driven policy (selective allocation
    /// and eviction). The default.
    #[default]
    SemanticPriority,
    /// Classification-blind single-stack LRU.
    Lru,
    /// Clean-first LRU: prefers clean victims within a window of the LRU
    /// end to save dirty write-backs.
    Cflru {
        /// Clean-first window as an integer percentage of the shard
        /// capacity, in `1..=100`. Default
        /// ([`CflruPolicy::DEFAULT_WINDOW_PCT`]): 25.
        window_pct: u8,
    },
    /// Scan-resistant 2Q: probationary FIFO + ghost list + main LRU.
    TwoQ {
        /// Probationary-queue (`A1in`) target as an integer percentage of
        /// the shard capacity, in `1..=100`. Default
        /// ([`TwoQPolicy::DEFAULT_KIN_PCT`]): 25.
        kin_pct: u8,
        /// Ghost-list (`A1out`) capacity as an integer percentage of the
        /// shard capacity, in `1..=200` (the ghost directory may exceed
        /// the resident capacity — it holds addresses, not blocks).
        /// Default ([`TwoQPolicy::DEFAULT_KOUT_PCT`]): 50.
        kout_pct: u8,
    },
    /// Adaptive replacement (ARC): recency and frequency lists with ghost
    /// directories and a self-tuning balance — no knobs by design.
    Arc,
    /// Per-stream compositor: each request class is served by its own
    /// inner policy as described by the [`StreamRouting`].
    PerStream(StreamRouting),
}

impl CachePolicyKind {
    /// All selectable policies (with default knobs), semantic first.
    pub fn all() -> [CachePolicyKind; 6] {
        [
            CachePolicyKind::SemanticPriority,
            CachePolicyKind::Lru,
            CachePolicyKind::cflru(),
            CachePolicyKind::two_q(),
            CachePolicyKind::Arc,
            CachePolicyKind::per_stream(),
        ]
    }

    /// CFLRU with the default clean-first window (25% — the PR-4-exact
    /// value).
    pub fn cflru() -> CachePolicyKind {
        CachePolicyKind::Cflru {
            window_pct: CflruPolicy::DEFAULT_WINDOW_PCT,
        }
    }

    /// 2Q with the 2Q paper's recommended fractions (`Kin` 25%, `Kout`
    /// 50% — the PR-4-exact values).
    pub fn two_q() -> CachePolicyKind {
        CachePolicyKind::TwoQ {
            kin_pct: TwoQPolicy::DEFAULT_KIN_PCT,
            kout_pct: TwoQPolicy::DEFAULT_KOUT_PCT,
        }
    }

    /// The per-stream compositor under its default routing (semantic for
    /// sequential/temporary/update streams, ARC for random point reads).
    pub fn per_stream() -> CachePolicyKind {
        CachePolicyKind::PerStream(StreamRouting::default())
    }

    /// Short lower-case label for reports, bench IDs and the CI policy
    /// matrix. The label identifies the policy *family*; knob values are
    /// rendered by [`CachePolicyKind::describe`].
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicyKind::SemanticPriority => "semantic-priority",
            CachePolicyKind::Lru => "lru",
            CachePolicyKind::Cflru { .. } => "cflru",
            CachePolicyKind::TwoQ { .. } => "2q",
            CachePolicyKind::Arc => "arc",
            CachePolicyKind::PerStream(_) => "per-stream",
        }
    }

    /// Parses a [`CachePolicyKind::label`] back into a kind with default
    /// knobs — how the CI policy-matrix env var selects a policy.
    pub fn from_label(label: &str) -> Option<CachePolicyKind> {
        Some(match label {
            "semantic-priority" => CachePolicyKind::SemanticPriority,
            "lru" => CachePolicyKind::Lru,
            "cflru" => CachePolicyKind::cflru(),
            "2q" => CachePolicyKind::two_q(),
            "arc" => CachePolicyKind::Arc,
            "per-stream" => CachePolicyKind::per_stream(),
            _ => return None,
        })
    }

    /// The label plus the knob values in force, e.g. `2q(kin=25%,kout=50%)`
    /// — what the ablation reports print.
    pub fn describe(&self) -> String {
        match self {
            CachePolicyKind::Cflru { window_pct } => format!("cflru(window={window_pct}%)"),
            CachePolicyKind::TwoQ { kin_pct, kout_pct } => {
                format!("2q(kin={kin_pct}%,kout={kout_pct}%)")
            }
            CachePolicyKind::PerStream(routing) => format!("per-stream({routing})"),
            other => other.label().to_string(),
        }
    }

    /// The storage-system display name of an engine running this policy.
    /// The semantic default keeps the paper's "hStorage-DB" label.
    pub fn system_name(&self) -> &'static str {
        match self {
            CachePolicyKind::SemanticPriority => "hStorage-DB",
            CachePolicyKind::Lru => "hybrid-lru",
            CachePolicyKind::Cflru { .. } => "hybrid-cflru",
            CachePolicyKind::TwoQ { .. } => "hybrid-2q",
            CachePolicyKind::Arc => "hybrid-arc",
            CachePolicyKind::PerStream(_) => "hybrid-per-stream",
        }
    }

    /// The equivalent routing leaf for the non-compositor kinds — the
    /// single place knob ranges and leaf construction live
    /// ([`StreamPolicyKind`] is the source of truth; this conversion is
    /// what keeps the two enums from drifting apart).
    fn stream_kind(&self) -> Option<StreamPolicyKind> {
        Some(match self {
            CachePolicyKind::SemanticPriority => StreamPolicyKind::SemanticPriority,
            CachePolicyKind::Lru => StreamPolicyKind::Lru,
            CachePolicyKind::Cflru { window_pct } => StreamPolicyKind::Cflru {
                window_pct: *window_pct,
            },
            CachePolicyKind::TwoQ { kin_pct, kout_pct } => StreamPolicyKind::TwoQ {
                kin_pct: *kin_pct,
                kout_pct: *kout_pct,
            },
            CachePolicyKind::Arc => StreamPolicyKind::Arc,
            CachePolicyKind::PerStream(_) => return None,
        })
    }

    /// Validates the knob ranges (and, for the compositor, the routing).
    /// Leaf bounds are checked by [`StreamPolicyKind::validate`], the
    /// shared source of truth.
    pub fn validate(&self) -> Result<(), String> {
        match (self, self.stream_kind()) {
            (CachePolicyKind::PerStream(routing), _) => routing.validate(),
            (_, Some(leaf)) => leaf.validate(),
            (_, None) => unreachable!("every non-compositor kind has a stream leaf"),
        }
    }

    /// Builds one per-shard policy instance for a shard managing
    /// `shard_capacity` cache slots. Leaf construction is shared with the
    /// compositor via [`StreamPolicyKind::build`].
    pub fn build(&self, config: &PolicyConfig, shard_capacity: u64) -> Box<dyn CachePolicy> {
        self.build_backed(config, shard_capacity, crate::lru::ListBackend::default())
    }

    /// Like [`CachePolicyKind::build`], on an explicit interior backend
    /// (threaded into every recency list the policy keeps).
    pub fn build_backed(
        &self,
        config: &PolicyConfig,
        shard_capacity: u64,
        backend: crate::lru::ListBackend,
    ) -> Box<dyn CachePolicy> {
        match (self, self.stream_kind()) {
            (CachePolicyKind::PerStream(routing), _) => Box::new(PerStreamPolicy::new_backed(
                *config,
                shard_capacity,
                *routing,
                backend,
            )),
            (_, Some(leaf)) => leaf.build_backed(config, shard_capacity, backend),
            (_, None) => unreachable!("every non-compositor kind has a stream leaf"),
        }
    }
}

impl fmt::Display for CachePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_names_are_unique() {
        let labels: std::collections::HashSet<_> =
            CachePolicyKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 6);
        let names: std::collections::HashSet<_> = CachePolicyKind::all()
            .iter()
            .map(|k| k.system_name())
            .collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn default_is_the_paper_policy() {
        assert_eq!(
            CachePolicyKind::default(),
            CachePolicyKind::SemanticPriority
        );
        assert_eq!(CachePolicyKind::default().system_name(), "hStorage-DB");
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in CachePolicyKind::all() {
            assert_eq!(CachePolicyKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(CachePolicyKind::from_label("no-such-policy"), None);
    }

    #[test]
    fn default_knob_constructors_match_the_pr4_constants() {
        assert_eq!(
            CachePolicyKind::cflru(),
            CachePolicyKind::Cflru { window_pct: 25 }
        );
        assert_eq!(
            CachePolicyKind::two_q(),
            CachePolicyKind::TwoQ {
                kin_pct: 25,
                kout_pct: 50
            }
        );
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_knobs() {
        for kind in CachePolicyKind::all() {
            assert!(kind.validate().is_ok(), "{kind}");
        }
        assert!(CachePolicyKind::Cflru { window_pct: 0 }.validate().is_err());
        assert!(CachePolicyKind::Cflru { window_pct: 101 }
            .validate()
            .is_err());
        assert!(CachePolicyKind::TwoQ {
            kin_pct: 0,
            kout_pct: 50
        }
        .validate()
        .is_err());
        assert!(CachePolicyKind::TwoQ {
            kin_pct: 25,
            kout_pct: 201
        }
        .validate()
        .is_err());
        // In-range custom knobs pass.
        assert!(CachePolicyKind::TwoQ {
            kin_pct: 10,
            kout_pct: 150
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn describe_renders_the_knobs() {
        assert_eq!(
            CachePolicyKind::Cflru { window_pct: 40 }.describe(),
            "cflru(window=40%)"
        );
        assert_eq!(
            CachePolicyKind::TwoQ {
                kin_pct: 10,
                kout_pct: 80
            }
            .describe(),
            "2q(kin=10%,kout=80%)"
        );
        assert_eq!(CachePolicyKind::Arc.describe(), "arc");
    }

    #[test]
    fn build_constructs_every_kind() {
        let config = PolicyConfig::paper_default();
        for kind in CachePolicyKind::all() {
            let policy = kind.build(&config, 64);
            // Every freshly built policy admits a plain random read.
            let req = PolicyRequest {
                direction: Direction::Read,
                class: RequestClass::Random,
                qos: QosPolicy::priority(2),
                prio: CachePriority(2),
            };
            assert!(policy.admits(&req), "{kind}");
        }
    }
}
