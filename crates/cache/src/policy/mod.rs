//! The pluggable cache-policy framework.
//!
//! The hybrid cache is split into a policy-agnostic *engine*
//! ([`crate::engine::CacheEngine`]) and a [`CachePolicy`] that owns every
//! *decision* the engine must make per block: whether a missing block may
//! be admitted, which resident block to displace when the cache is full,
//! and how a hit changes the block's standing. The engine keeps the
//! mechanism — shards, slot allocation, metadata, write-buffer accounting,
//! statistics and batched device submission — so one engine serves any
//! replacement algorithm.
//!
//! Shipped policies:
//!
//! * [`SemanticPriorityPolicy`] — the paper's selective allocation /
//!   selective eviction over per-priority LRU groups (the default),
//! * [`LruPolicy`] — a single classification-blind LRU stack,
//! * [`CflruPolicy`] — clean-first LRU: prefers evicting clean blocks to
//!   save write-backs,
//! * [`TwoQPolicy`] — scan-resistant 2Q with a probationary FIFO and a
//!   ghost list.
//!
//! A policy instance is **per shard**: the engine builds one via
//! [`CachePolicyKind::build`] (or a custom factory) for each of its lock
//! stripes, so implementations need no internal synchronisation.

mod cflru;
mod lru;
mod semantic;
mod two_q;

pub use cflru::CflruPolicy;
pub use lru::LruPolicy;
pub use semantic::SemanticPriorityPolicy;
pub use two_q::TwoQPolicy;

use hstorage_storage::{BlockAddr, CachePriority, Direction, PolicyConfig, QosPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The per-block view of a request that a policy decides on: the I/O
/// direction, the QoS policy the request carries, and the caching priority
/// it resolves to under the active [`PolicyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRequest {
    /// Read or write.
    pub direction: Direction,
    /// The QoS policy attached to the request by the DBMS storage manager.
    pub qos: QosPolicy,
    /// The priority the QoS policy resolves to (write buffer = 0).
    pub prio: CachePriority,
}

/// What a hit did to the block's residency bookkeeping, which the engine
/// must mirror in its metadata and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitOutcome {
    /// The block stayed in its group (possibly refreshed in recency).
    Unchanged,
    /// The block moved to a new priority group: the engine updates the
    /// metadata label, the write-buffer accounting and records a
    /// re-allocation.
    Moved(CachePriority),
}

/// A cache-replacement algorithm: the decision half of the hybrid cache.
///
/// The engine calls exactly one method per block event and mirrors the
/// outcome in its own metadata; the policy maintains whatever ordering
/// structures it needs (LRU lists, FIFO queues, ghost lists) and must keep
/// them consistent with the engine's resident set:
///
/// * every block passed to [`CachePolicy::on_insert`] is tracked until the
///   policy itself returns it from [`CachePolicy::pop_victim`] /
///   [`CachePolicy::drain_write_buffer`], or the engine announces its
///   removal via [`CachePolicy::on_remove`] (TRIM);
/// * [`CachePolicy::pop_victim`] must only ever return *tracked* blocks.
///
/// # Worked example: a custom FIFO policy
///
/// A policy that evicts in plain insertion order — no recency, no
/// semantics — plugs into the engine through
/// [`CacheEngine::with_policy_factory`](crate::engine::CacheEngine::with_policy_factory):
///
/// ```
/// use hstorage_cache::policy::{CachePolicy, HitOutcome, PolicyRequest};
/// use hstorage_cache::{CacheEngine, StorageSystem};
/// use hstorage_storage::{
///     BlockAddr, BlockRange, CachePriority, ClassifiedRequest, IoRequest, PolicyConfig,
///     QosPolicy, RequestClass,
/// };
/// use std::collections::VecDeque;
///
/// #[derive(Default)]
/// struct FifoPolicy {
///     queue: VecDeque<BlockAddr>,
/// }
///
/// impl CachePolicy for FifoPolicy {
///     fn on_hit(
///         &mut self,
///         _lbn: BlockAddr,
///         _current: CachePriority,
///         _req: &PolicyRequest,
///     ) -> HitOutcome {
///         HitOutcome::Unchanged // FIFO ignores recency entirely
///     }
///
///     fn admits(&self, _req: &PolicyRequest) -> bool {
///         true // admit everything, like the classical baselines
///     }
///
///     fn pop_victim(&mut self, _req: &PolicyRequest) -> Option<BlockAddr> {
///         self.queue.pop_front()
///     }
///
///     fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
///         self.queue.push_back(lbn);
///         req.prio // recorded in the metadata, informational for FIFO
///     }
///
///     fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
///         self.queue.retain(|&b| b != lbn);
///     }
/// }
///
/// // A two-slot FIFO cache: the third insert evicts the *first* block,
/// // even though it was touched more recently than the second.
/// let engine = CacheEngine::new(PolicyConfig::paper_default(), 2)
///     .with_policy_factory("fifo", |_shard_capacity| Box::<FifoPolicy>::default());
/// let read = |lbn: u64| {
///     ClassifiedRequest::new(
///         IoRequest::read(BlockRange::new(lbn, 1), false),
///         RequestClass::Random,
///         QosPolicy::priority(2),
///     )
/// };
/// engine.submit(read(10));
/// engine.submit(read(11));
/// engine.submit(read(10)); // hit — FIFO order unchanged
/// engine.submit(read(12)); // full: evicts block 10, the oldest insert
/// assert_eq!(engine.name(), "fifo");
/// assert!(!engine.contains_block(BlockAddr(10)));
/// assert!(engine.contains_block(BlockAddr(11)));
/// assert!(engine.contains_block(BlockAddr(12)));
/// ```
pub trait CachePolicy: Send {
    /// Called when `lbn` (tracked, currently labelled `current`) is hit.
    /// The policy refreshes its internal ordering and reports whether the
    /// block moved to a different group.
    fn on_hit(&mut self, lbn: BlockAddr, current: CachePriority, req: &PolicyRequest)
        -> HitOutcome;

    /// Whether a block missing from the cache may be admitted at all under
    /// this request. Returning `false` bypasses the cache (the transfer
    /// goes straight to the second-level device).
    fn admits(&self, req: &PolicyRequest) -> bool;

    /// The shard is full and `req` was admitted: remove and return the
    /// block to displace, or `None` if the incoming block is not worth a
    /// resident one (the request then bypasses the cache).
    fn pop_victim(&mut self, req: &PolicyRequest) -> Option<BlockAddr>;

    /// `lbn` was just allocated a slot: start tracking it. The returned
    /// priority is recorded as the block's group label in the engine's
    /// metadata (and handed back via `current` on later events).
    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority;

    /// `lbn` (labelled `group`) was removed by the engine for a reason the
    /// policy did not initiate (TRIM invalidation): stop tracking it.
    fn on_remove(&mut self, lbn: BlockAddr, group: CachePriority);

    /// A TRIM invalidated `lbn` while it was **not** resident. The block's
    /// lifetime has ended and its address may be re-used for unrelated
    /// data, so policies that keep history about non-resident addresses
    /// (e.g. 2Q's ghost list) must forget it. Most policies keep no such
    /// history; the default does nothing.
    fn on_trim_absent(&mut self, lbn: BlockAddr) {
        let _ = lbn;
    }

    /// Whether blocks labelled `group` occupy the engine's write buffer.
    /// Only the semantic policy buffers writes; the baselines treat
    /// buffered updates as ordinary cached writes.
    ///
    /// The engine's write-buffer mechanism (occupancy limit, flush
    /// trigger, batch run-splitting) is keyed to **group 0** — the
    /// priority that `WriteBuffer` requests resolve to. A policy may
    /// therefore only ever return `true` for `CachePriority(0)`; the
    /// engine asserts this when the policy is installed.
    fn write_buffered(&self, group: CachePriority) -> bool {
        let _ = group;
        false
    }

    /// Remove and return every write-buffered block (called by the engine
    /// when the buffer exceeds its share of the cache). Policies without a
    /// write buffer return nothing.
    fn drain_write_buffer(&mut self) -> Vec<BlockAddr> {
        Vec::new()
    }
}

/// Which [`CachePolicy`] the cache engine runs — the configuration-level
/// selector threaded from `StorageConfig` / `SystemConfig` down to the
/// engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// The paper's semantic, priority-driven policy (selective allocation
    /// and eviction). The default.
    #[default]
    SemanticPriority,
    /// Classification-blind single-stack LRU.
    Lru,
    /// Clean-first LRU: prefers clean victims within a window of the LRU
    /// end to save dirty write-backs.
    Cflru,
    /// Scan-resistant 2Q: probationary FIFO + ghost list + main LRU.
    TwoQ,
}

impl CachePolicyKind {
    /// All selectable policies, semantic first.
    pub fn all() -> [CachePolicyKind; 4] {
        [
            CachePolicyKind::SemanticPriority,
            CachePolicyKind::Lru,
            CachePolicyKind::Cflru,
            CachePolicyKind::TwoQ,
        ]
    }

    /// Short lower-case label for reports and bench IDs.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicyKind::SemanticPriority => "semantic-priority",
            CachePolicyKind::Lru => "lru",
            CachePolicyKind::Cflru => "cflru",
            CachePolicyKind::TwoQ => "2q",
        }
    }

    /// The storage-system display name of an engine running this policy.
    /// The semantic default keeps the paper's "hStorage-DB" label.
    pub fn system_name(&self) -> &'static str {
        match self {
            CachePolicyKind::SemanticPriority => "hStorage-DB",
            CachePolicyKind::Lru => "hybrid-lru",
            CachePolicyKind::Cflru => "hybrid-cflru",
            CachePolicyKind::TwoQ => "hybrid-2q",
        }
    }

    /// Builds one per-shard policy instance for a shard managing
    /// `shard_capacity` cache slots.
    pub fn build(&self, config: &PolicyConfig, shard_capacity: u64) -> Box<dyn CachePolicy> {
        match self {
            CachePolicyKind::SemanticPriority => Box::new(SemanticPriorityPolicy::new(*config)),
            CachePolicyKind::Lru => Box::new(LruPolicy::new()),
            CachePolicyKind::Cflru => Box::new(CflruPolicy::new(shard_capacity)),
            CachePolicyKind::TwoQ => Box::new(TwoQPolicy::new(shard_capacity)),
        }
    }
}

impl fmt::Display for CachePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_names_are_unique() {
        let labels: std::collections::HashSet<_> =
            CachePolicyKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
        let names: std::collections::HashSet<_> = CachePolicyKind::all()
            .iter()
            .map(|k| k.system_name())
            .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn default_is_the_paper_policy() {
        assert_eq!(
            CachePolicyKind::default(),
            CachePolicyKind::SemanticPriority
        );
        assert_eq!(CachePolicyKind::default().system_name(), "hStorage-DB");
    }

    #[test]
    fn build_constructs_every_kind() {
        let config = PolicyConfig::paper_default();
        for kind in CachePolicyKind::all() {
            let policy = kind.build(&config, 64);
            // Every freshly built policy admits a plain random read.
            let req = PolicyRequest {
                direction: Direction::Read,
                qos: QosPolicy::priority(2),
                prio: CachePriority(2),
            };
            assert!(policy.admits(&req), "{kind}");
        }
    }
}
