//! Clean-First LRU (CFLRU) behind the [`CachePolicy`] trait.
//!
//! CFLRU (Park et al., CASES 2006) is a write-aware refinement of LRU for
//! flash-backed caches: evicting a *dirty* block costs a write-back to the
//! second-level device, so the policy first looks for a **clean** victim
//! within a window at the LRU end of the stack and only falls back to the
//! plain LRU block (dirty or not) when the whole window is dirty. Recency
//! handling is otherwise identical to LRU.

use crate::lru::{ListBackend, LruList};
use crate::policy::{CachePolicy, HitOutcome, PolicyRequest};
use crate::table::OpenMap;
use hstorage_storage::{BlockAddr, CachePriority, Direction};

/// Write-aware LRU: prefers clean victims inside a clean-first window to
/// save dirty write-backs, trading a slightly worse hit ratio for less
/// second-level write traffic.
///
/// The policy tracks dirtiness from the events it observes — a block is
/// dirty from the moment it is inserted or hit by a write until it leaves
/// the cache — which mirrors the engine's clean/dirty metadata exactly
/// (resident blocks are never cleaned in place).
pub struct CflruPolicy {
    stack: LruList,
    /// Dirty-address set (contains-only, so the flat open-addressing map
    /// serves both backends — membership queries are order-free).
    dirty: OpenMap<()>,
    /// How many blocks from the LRU end are searched for a clean victim
    /// before falling back to plain LRU.
    window: usize,
}

impl CflruPolicy {
    /// Default clean-first window as an integer percentage of the shard
    /// capacity (the "window size" parameter of the CFLRU paper; a
    /// quarter of the cache is a common operating point).
    pub const DEFAULT_WINDOW_PCT: u8 = 25;

    /// Creates the policy for a shard of `shard_capacity` slots with the
    /// default window.
    pub fn new(shard_capacity: u64) -> Self {
        Self::with_window(shard_capacity, Self::DEFAULT_WINDOW_PCT)
    }

    /// Creates the policy with an explicit clean-first window, given as an
    /// integer percentage of `shard_capacity` (floored, minimum 1 block).
    pub fn with_window(shard_capacity: u64, window_pct: u8) -> Self {
        Self::with_window_backed(shard_capacity, window_pct, ListBackend::default())
    }

    /// Creates the policy with an explicit window and interior backend.
    pub fn with_window_backed(shard_capacity: u64, window_pct: u8, backend: ListBackend) -> Self {
        let window =
            ((shard_capacity as f64 * (window_pct as f64 / 100.0)).floor() as usize).max(1);
        CflruPolicy {
            stack: LruList::with_backend(backend),
            dirty: OpenMap::new(),
            window,
        }
    }

    /// The clean-first window size in blocks.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl CachePolicy for CflruPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        _current: CachePriority,
        req: &PolicyRequest,
    ) -> HitOutcome {
        self.stack.touch(&lbn);
        if req.direction == Direction::Write {
            self.dirty.insert(lbn.0, ());
        }
        HitOutcome::Unchanged
    }

    fn admits(&self, _req: &PolicyRequest) -> bool {
        true
    }

    // Re-touching the most-recent block keeps the stack order; re-adding
    // an address to the dirty set is a set no-op. A repeat hit (same
    // direction included — the contract requires identical arguments)
    // therefore changes nothing.
    fn repeat_hit_idempotent(&self) -> bool {
        true
    }

    fn pop_victim(&mut self, _incoming: BlockAddr, _req: &PolicyRequest) -> Option<BlockAddr> {
        // Selection only (the engine's Evict notification untracks the
        // block via `on_remove`): prefer the oldest clean block inside the
        // window; whole window dirty → plain LRU fallback (pays the
        // write-back).
        self.stack
            .iter_lru()
            .take(self.window)
            .find(|lbn| !self.dirty.contains(lbn.0))
            .copied()
            .or_else(|| self.stack.peek_lru().copied())
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        self.stack.insert_mru(lbn);
        // Every path by which a block leaves the policy also clears its
        // dirty bit, so an inserted block is clean unless this request
        // writes it.
        if req.direction == Direction::Write {
            self.dirty.insert(lbn.0, ());
        }
        req.prio
    }

    fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
        self.stack.remove(&lbn);
        self.dirty.remove(lbn.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RemoveReason;
    use hstorage_storage::{PolicyConfig, QosPolicy, RequestClass};

    fn req(direction: Direction) -> PolicyRequest {
        let config = PolicyConfig::paper_default();
        PolicyRequest {
            direction,
            class: RequestClass::Random,
            qos: QosPolicy::priority(2),
            prio: config.resolve(QosPolicy::priority(2)),
        }
    }

    /// Emulates the engine: select a victim, then complete the eviction
    /// with the reasoned removal notification.
    fn pop(p: &mut CflruPolicy) -> Option<BlockAddr> {
        let victim = p.pop_victim(BlockAddr(u64::MAX), &req(Direction::Read))?;
        p.on_remove_reasoned(victim, CachePriority(2), RemoveReason::Evict);
        Some(victim)
    }

    #[test]
    fn prefers_a_clean_victim_over_the_dirty_lru_block() {
        let mut p = CflruPolicy::new(16); // window = 4
        assert_eq!(p.window(), 4);
        p.on_insert(BlockAddr(1), &req(Direction::Write)); // dirty, LRU end
        p.on_insert(BlockAddr(2), &req(Direction::Read)); // clean
        p.on_insert(BlockAddr(3), &req(Direction::Read)); // clean
                                                          // Plain LRU would evict 1; CFLRU skips the dirty block and takes
                                                          // the oldest clean one inside the window.
        assert_eq!(pop(&mut p), Some(BlockAddr(2)));
    }

    #[test]
    fn falls_back_to_lru_when_the_window_is_all_dirty() {
        let mut p = CflruPolicy::new(8); // window = 2
        p.on_insert(BlockAddr(1), &req(Direction::Write));
        p.on_insert(BlockAddr(2), &req(Direction::Write));
        p.on_insert(BlockAddr(3), &req(Direction::Read)); // clean but outside window
        assert_eq!(pop(&mut p), Some(BlockAddr(1)));
    }

    #[test]
    fn a_write_hit_dirties_a_clean_block() {
        let mut p = CflruPolicy::new(16);
        p.on_insert(BlockAddr(1), &req(Direction::Read));
        p.on_insert(BlockAddr(2), &req(Direction::Read));
        p.on_hit(BlockAddr(1), CachePriority(2), &req(Direction::Write));
        // Block 1 is now dirty (and MRU); block 2 is the clean victim.
        assert_eq!(pop(&mut p), Some(BlockAddr(2)));
        // Only the dirty block remains; window exhausted, LRU fallback.
        assert_eq!(pop(&mut p), Some(BlockAddr(1)));
        assert_eq!(pop(&mut p), None);
    }

    #[test]
    fn window_scales_with_capacity_and_never_hits_zero() {
        assert_eq!(CflruPolicy::new(0).window(), 1);
        assert_eq!(CflruPolicy::new(1).window(), 1);
        assert_eq!(CflruPolicy::new(100).window(), 25);
    }

    #[test]
    fn window_knob_resizes_the_clean_first_search() {
        assert_eq!(CflruPolicy::with_window(100, 5).window(), 5);
        assert_eq!(CflruPolicy::with_window(100, 100).window(), 100);
        assert_eq!(CflruPolicy::with_window(10, 1).window(), 1);
        // The default constructor and the explicit default agree.
        assert_eq!(
            CflruPolicy::with_window(64, CflruPolicy::DEFAULT_WINDOW_PCT).window(),
            CflruPolicy::new(64).window()
        );
        // A 1%-window CFLRU degenerates toward plain LRU: with the LRU
        // block dirty it pays the write-back immediately.
        let mut lru_like = CflruPolicy::with_window(100, 1);
        lru_like.on_insert(BlockAddr(1), &req(Direction::Write));
        lru_like.on_insert(BlockAddr(2), &req(Direction::Read));
        assert_eq!(pop(&mut lru_like), Some(BlockAddr(1)));
    }
}
