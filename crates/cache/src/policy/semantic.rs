//! The paper's semantic, priority-driven policy (Section 5.1), expressed
//! behind the [`CachePolicy`] trait.

use crate::lru::ListBackend;
use crate::policy::{CachePolicy, HitOutcome, PolicyRequest};
use crate::priority_group::PriorityGroups;
use hstorage_storage::{BlockAddr, CachePriority, PolicyConfig, QosPolicy};

/// Selective allocation and selective eviction over per-priority LRU
/// groups, driven by the caching priority each request carries:
///
/// * **admission** — only requests whose QoS policy admits and whose
///   resolved priority is below the non-caching threshold `t` may
///   allocate;
/// * **displacement** — when the shard is full, a new block is admitted
///   only if some resident block has an equal or lower priority, and the
///   victim is the least-recently-used block of the lowest-priority
///   non-empty group;
/// * **promotion** — a hit under a numbered priority (or the write buffer)
///   moves the block to that group; "non-caching and eviction" demotes it
///   to the evict-first group; "non-caching and non-eviction" leaves the
///   layout untouched.
///
/// This is the exact decision logic the pre-framework `HybridCache`
/// hard-coded; the equivalence suites assert bit-identical statistics and
/// simulated device timing.
pub struct SemanticPriorityPolicy {
    config: PolicyConfig,
    groups: PriorityGroups,
}

impl SemanticPriorityPolicy {
    /// Creates the policy for one shard under the given `{N, t, b}`
    /// configuration.
    pub fn new(config: PolicyConfig) -> Self {
        Self::new_backed(config, ListBackend::default())
    }

    /// Creates the policy on an explicit interior backend.
    pub fn new_backed(config: PolicyConfig, backend: ListBackend) -> Self {
        SemanticPriorityPolicy {
            groups: PriorityGroups::with_backend(config.total_priorities, backend),
            config,
        }
    }
}

impl CachePolicy for SemanticPriorityPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        current: CachePriority,
        req: &PolicyRequest,
    ) -> HitOutcome {
        match req.qos {
            QosPolicy::NonCachingNonEviction => {
                // Does not affect the existing layout: no touch, no move.
                HitOutcome::Unchanged
            }
            QosPolicy::NonCachingEviction => {
                let target = self.config.non_caching_eviction();
                if current != target {
                    self.groups.reallocate(lbn, current, target);
                    HitOutcome::Moved(target)
                } else {
                    HitOutcome::Unchanged
                }
            }
            QosPolicy::Priority(_) | QosPolicy::WriteBuffer => {
                if current != req.prio {
                    self.groups.reallocate(lbn, current, req.prio);
                    HitOutcome::Moved(req.prio)
                } else {
                    self.groups.touch(lbn, req.prio);
                    HitOutcome::Unchanged
                }
            }
        }
    }

    fn admits(&self, req: &PolicyRequest) -> bool {
        req.qos.admits() && self.config.admissible(req.prio)
    }

    // Every repeat outcome is a no-op: the non-caching QoS branches do
    // nothing at all, and the priority branches either re-allocate to the
    // group the first hit already moved the block into (so `current ==
    // req.prio` the second time, taking the touch branch) or re-touch the
    // group MRU the block already occupies.
    fn repeat_hit_idempotent(&self) -> bool {
        true
    }

    fn pop_victim(&mut self, _incoming: BlockAddr, req: &PolicyRequest) -> Option<BlockAddr> {
        // Selective allocation: admit only if some resident block has an
        // equal or lower priority (a numerically >= priority value). The
        // victim stays in its group until the engine's Evict notification.
        let (victim, victim_prio) = self.groups.peek_victim()?;
        if victim_prio.0 >= req.prio.0 {
            Some(victim)
        } else {
            None
        }
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        self.groups.insert(lbn, req.prio);
        req.prio
    }

    fn on_remove(&mut self, lbn: BlockAddr, group: CachePriority) {
        self.groups.remove(lbn, group);
    }

    fn write_buffered(&self, group: CachePriority) -> bool {
        group == CachePriority(0)
    }

    fn drain_write_buffer(&mut self) -> Vec<BlockAddr> {
        // Selection only: the engine untracks each block with an Evict
        // notification as it releases the slots.
        self.groups.iter_group(CachePriority(0)).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RemoveReason;
    use hstorage_storage::{Direction, RequestClass};

    fn req(qos: QosPolicy, config: &PolicyConfig) -> PolicyRequest {
        PolicyRequest {
            direction: Direction::Read,
            class: RequestClass::Random,
            qos,
            prio: config.resolve(qos),
        }
    }

    /// Emulates the engine's eviction protocol: select a victim, then
    /// complete the removal with the Evict notification. The engine passes
    /// the victim's metadata group; in these tests that always equals the
    /// displacing request's priority.
    fn pop(p: &mut SemanticPriorityPolicy, req: &PolicyRequest) -> Option<BlockAddr> {
        let victim = p.pop_victim(BlockAddr(u64::MAX), req)?;
        p.on_remove_reasoned(victim, req.prio, RemoveReason::Evict);
        Some(victim)
    }

    #[test]
    fn admission_follows_the_threshold() {
        let config = PolicyConfig::paper_default();
        let p = SemanticPriorityPolicy::new(config);
        assert!(p.admits(&req(QosPolicy::priority(2), &config)));
        assert!(p.admits(&req(QosPolicy::WriteBuffer, &config)));
        assert!(!p.admits(&req(QosPolicy::priority(7), &config)));
        assert!(!p.admits(&req(QosPolicy::NonCachingNonEviction, &config)));
        assert!(!p.admits(&req(QosPolicy::NonCachingEviction, &config)));
    }

    #[test]
    fn displacement_requires_an_equal_or_lower_priority_resident() {
        let config = PolicyConfig::paper_default();
        let mut p = SemanticPriorityPolicy::new(config);
        let r2 = req(QosPolicy::priority(2), &config);
        p.on_insert(BlockAddr(1), &r2);
        // A lower-priority (numerically higher) request must not displace.
        assert_eq!(pop(&mut p, &req(QosPolicy::priority(4), &config)), None);
        // An equal-priority request displaces the LRU resident.
        assert_eq!(pop(&mut p, &r2), Some(BlockAddr(1)));
        // Empty shard: nothing to displace.
        assert_eq!(pop(&mut p, &r2), None);
    }

    #[test]
    fn hits_promote_demote_and_touch() {
        let config = PolicyConfig::paper_default();
        let mut p = SemanticPriorityPolicy::new(config);
        let r3 = req(QosPolicy::priority(3), &config);
        p.on_insert(BlockAddr(1), &r3);
        // Same priority: touch, no move.
        assert_eq!(
            p.on_hit(BlockAddr(1), CachePriority(3), &r3),
            HitOutcome::Unchanged
        );
        // Different priority: re-allocation.
        let r2 = req(QosPolicy::priority(2), &config);
        assert_eq!(
            p.on_hit(BlockAddr(1), CachePriority(3), &r2),
            HitOutcome::Moved(CachePriority(2))
        );
        // Eviction policy demotes to the evict-first group.
        let evict = req(QosPolicy::NonCachingEviction, &config);
        assert_eq!(
            p.on_hit(BlockAddr(1), CachePriority(2), &evict),
            HitOutcome::Moved(config.non_caching_eviction())
        );
        // Non-eviction leaves the layout untouched.
        let scan = req(QosPolicy::NonCachingNonEviction, &config);
        assert_eq!(
            p.on_hit(BlockAddr(1), config.non_caching_eviction(), &scan),
            HitOutcome::Unchanged
        );
    }

    #[test]
    fn drain_returns_only_the_write_buffer_group() {
        let config = PolicyConfig::paper_default();
        let mut p = SemanticPriorityPolicy::new(config);
        p.on_insert(BlockAddr(1), &req(QosPolicy::WriteBuffer, &config));
        p.on_insert(BlockAddr(2), &req(QosPolicy::priority(2), &config));
        p.on_insert(BlockAddr(3), &req(QosPolicy::WriteBuffer, &config));
        assert!(p.write_buffered(CachePriority(0)));
        assert!(!p.write_buffered(CachePriority(2)));
        let mut drained = p.drain_write_buffer();
        // The engine completes the drain with one Evict per block.
        for lbn in &drained {
            p.on_remove_reasoned(*lbn, CachePriority(0), RemoveReason::Evict);
        }
        drained.sort();
        assert_eq!(drained, vec![BlockAddr(1), BlockAddr(3)]);
        assert!(p.drain_write_buffer().is_empty());
        // The regular-priority block is still tracked.
        assert_eq!(
            pop(&mut p, &req(QosPolicy::priority(2), &config)),
            Some(BlockAddr(2))
        );
    }
}
