//! Plain least-recently-used replacement behind the [`CachePolicy`] trait.

use crate::lru::{ListBackend, LruList};
use crate::policy::{CachePolicy, HitOutcome, PolicyRequest};
use hstorage_storage::{BlockAddr, CachePriority};

/// Classification-blind LRU: every miss is admitted, all resident blocks
/// live in a single recency stack, and the least recently used block is
/// displaced when space is needed. Semantic information (request class,
/// QoS policy, priorities) is recorded by the engine for statistics but
/// never consulted — this is the "classical approach" the paper's
/// evaluation contrasts against, now selectable inside the same engine.
#[derive(Default)]
pub struct LruPolicy {
    stack: LruList,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty LRU policy on an explicit interior backend.
    pub fn with_backend(backend: ListBackend) -> Self {
        LruPolicy {
            stack: LruList::with_backend(backend),
        }
    }
}

impl CachePolicy for LruPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        _current: CachePriority,
        _req: &PolicyRequest,
    ) -> HitOutcome {
        self.stack.touch(&lbn);
        HitOutcome::Unchanged
    }

    fn admits(&self, _req: &PolicyRequest) -> bool {
        true
    }

    // Touching the block that is already most-recent leaves the stack
    // order unchanged, so a repeat hit is a no-op.
    fn repeat_hit_idempotent(&self) -> bool {
        true
    }

    fn pop_victim(&mut self, _incoming: BlockAddr, _req: &PolicyRequest) -> Option<BlockAddr> {
        // Selection only: the block leaves the stack when the engine's
        // Evict notification reaches `on_remove`.
        self.stack.peek_lru().copied()
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        self.stack.insert_mru(lbn);
        // A single stack has no groups; the recorded priority is
        // informational, mirroring the paper's LRU baseline tables.
        req.prio
    }

    fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
        self.stack.remove(&lbn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RemoveReason;
    use hstorage_storage::{Direction, PolicyConfig, QosPolicy, RequestClass};

    fn req(qos: QosPolicy) -> PolicyRequest {
        let config = PolicyConfig::paper_default();
        PolicyRequest {
            direction: Direction::Read,
            class: RequestClass::Random,
            qos,
            prio: config.resolve(qos),
        }
    }

    /// Emulates the engine: select a victim, then complete the eviction
    /// with the reasoned removal notification.
    fn pop(p: &mut LruPolicy, req: &PolicyRequest) -> Option<BlockAddr> {
        let victim = p.pop_victim(BlockAddr(u64::MAX), req)?;
        p.on_remove_reasoned(victim, req.prio, RemoveReason::Evict);
        Some(victim)
    }

    #[test]
    fn admits_everything_including_scans() {
        let p = LruPolicy::new();
        assert!(p.admits(&req(QosPolicy::NonCachingNonEviction)));
        assert!(p.admits(&req(QosPolicy::NonCachingEviction)));
        assert!(p.admits(&req(QosPolicy::priority(7))));
    }

    #[test]
    fn evicts_in_recency_order_regardless_of_priority() {
        let mut p = LruPolicy::new();
        let high = req(QosPolicy::priority(1));
        let low = req(QosPolicy::priority(5));
        p.on_insert(BlockAddr(1), &high);
        p.on_insert(BlockAddr(2), &low);
        p.on_insert(BlockAddr(3), &high);
        // Touch the oldest: it becomes MRU.
        p.on_hit(BlockAddr(1), CachePriority(1), &low);
        assert_eq!(pop(&mut p, &high), Some(BlockAddr(2)));
        assert_eq!(pop(&mut p, &high), Some(BlockAddr(3)));
        assert_eq!(pop(&mut p, &high), Some(BlockAddr(1)));
        assert_eq!(pop(&mut p, &high), None);
    }

    #[test]
    fn remove_untracks_a_block() {
        let mut p = LruPolicy::new();
        let r = req(QosPolicy::priority(2));
        p.on_insert(BlockAddr(9), &r);
        p.on_remove(BlockAddr(9), CachePriority(2));
        assert_eq!(pop(&mut p, &r), None);
    }
}
