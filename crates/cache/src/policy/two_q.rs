//! Scan-resistant 2Q replacement behind the [`CachePolicy`] trait.
//!
//! 2Q (Johnson & Shasha, VLDB 1994) splits residency into a small
//! probationary FIFO (`A1in`) and a main LRU (`Am`), with a ghost list of
//! recently evicted addresses (`A1out`). A first-time block only enters
//! `A1in`; it is promoted to `Am` when it is re-referenced *after* leaving
//! `A1in` — i.e. its address is found on the ghost list. One-shot scan
//! traffic therefore churns through the small probationary queue without
//! ever displacing the hot working set in `Am`.

use crate::lru::{ListBackend, LruList};
use crate::policy::{CachePolicy, GhostList, HitOutcome, PolicyRequest, RemoveReason};
use hstorage_storage::{BlockAddr, CachePriority};

/// The classic "full version" 2Q with FIFO `A1in`, ghost `A1out` and LRU
/// `Am`, sized by tunable fractions of the shard capacity (defaults:
/// `Kin` = 25%, `Kout` = 50%, the 2Q paper's recommendation).
pub struct TwoQPolicy {
    /// Probationary FIFO of resident first-time blocks.
    a1in: LruList,
    /// Ghost FIFO of addresses recently evicted from `A1in` (not
    /// resident; holds no cache space).
    a1out: GhostList,
    /// Main LRU of re-referenced (hot) resident blocks.
    am: LruList,
    /// Target size of `A1in` in blocks.
    kin: usize,
}

impl TwoQPolicy {
    /// Default `Kin` as an integer percentage of the shard capacity (2Q
    /// paper: 25%).
    pub const DEFAULT_KIN_PCT: u8 = 25;
    /// Default `Kout` as an integer percentage of the shard capacity (2Q
    /// paper: 50%).
    pub const DEFAULT_KOUT_PCT: u8 = 50;

    /// Creates the policy for a shard of `shard_capacity` slots with the
    /// paper-recommended default fractions.
    pub fn new(shard_capacity: u64) -> Self {
        Self::with_knobs(
            shard_capacity,
            Self::DEFAULT_KIN_PCT,
            Self::DEFAULT_KOUT_PCT,
        )
    }

    /// Creates the policy with explicit `Kin`/`Kout` fractions, each an
    /// integer percentage of `shard_capacity` (floored, minimum 1).
    pub fn with_knobs(shard_capacity: u64, kin_pct: u8, kout_pct: u8) -> Self {
        Self::with_knobs_backed(shard_capacity, kin_pct, kout_pct, ListBackend::default())
    }

    /// Creates the policy with explicit knobs and interior backend.
    pub fn with_knobs_backed(
        shard_capacity: u64,
        kin_pct: u8,
        kout_pct: u8,
        backend: ListBackend,
    ) -> Self {
        let sized =
            |pct: u8| ((shard_capacity as f64 * (pct as f64 / 100.0)).floor() as usize).max(1);
        TwoQPolicy {
            a1in: LruList::with_backend(backend),
            a1out: GhostList::with_backend(sized(kout_pct), backend),
            am: LruList::with_backend(backend),
            kin: sized(kin_pct),
        }
    }

    /// Probationary queue target size.
    pub fn kin(&self) -> usize {
        self.kin
    }

    /// Ghost list capacity.
    pub fn kout(&self) -> usize {
        self.a1out.capacity()
    }

    /// Number of ghost addresses currently remembered.
    pub fn ghost_len(&self) -> usize {
        self.a1out.len()
    }
}

impl CachePolicy for TwoQPolicy {
    fn on_hit(
        &mut self,
        lbn: BlockAddr,
        _current: CachePriority,
        _req: &PolicyRequest,
    ) -> HitOutcome {
        // `touch` is a no-op for keys Am does not hold. A hit in A1in
        // deliberately does nothing: the queue is FIFO, so correlated
        // re-references within the probation window do not count as reuse
        // (that is 2Q's scan resistance).
        self.am.touch(&lbn);
        HitOutcome::Unchanged
    }

    fn admits(&self, _req: &PolicyRequest) -> bool {
        true
    }

    // A repeat hit re-touches the Am MRU (order unchanged) or repeats the
    // deliberate A1in no-op — idempotent either way.
    fn repeat_hit_idempotent(&self) -> bool {
        true
    }

    fn pop_victim(&mut self, _incoming: BlockAddr, _req: &PolicyRequest) -> Option<BlockAddr> {
        // Selection only: reclaim from the probationary queue while it is
        // over target, otherwise from the LRU end of Am. Ghosting happens
        // when the engine completes the eviction (`on_remove_reasoned`
        // with `Evict`): A1in victims are remembered, Am victims are
        // forgotten entirely.
        if self.a1in.len() >= self.kin {
            if let Some(&victim) = self.a1in.peek_lru() {
                return Some(victim);
            }
        }
        if let Some(&victim) = self.am.peek_lru() {
            return Some(victim);
        }
        // Am empty (e.g. tiny shard): fall back to whatever A1in holds.
        self.a1in.peek_lru().copied()
    }

    fn on_insert(&mut self, lbn: BlockAddr, req: &PolicyRequest) -> CachePriority {
        if self.a1out.forget(lbn) {
            // Re-reference after probation: the block is hot.
            self.am.insert_mru(lbn);
        } else {
            self.a1in.insert_mru(lbn);
        }
        req.prio
    }

    fn on_remove(&mut self, lbn: BlockAddr, _group: CachePriority) {
        if !self.a1in.remove(&lbn) {
            self.am.remove(&lbn);
        }
    }

    fn on_remove_reasoned(&mut self, lbn: BlockAddr, group: CachePriority, reason: RemoveReason) {
        match reason {
            RemoveReason::Trim => {
                // Lifetime hint: the address is dead, so no history may
                // survive either (a resident block is never ghosted, but
                // compositor fan-out keeps this defensive).
                self.on_remove(lbn, group);
                self.a1out.forget(lbn);
            }
            RemoveReason::Evict => {
                // The eviction completes here, with 2Q's own ghosting
                // rules: a block displaced out of probation is remembered
                // (a prompt re-reference of the address reads as reuse),
                // while an Am block has already proven its reuse and is
                // forgotten entirely — exactly the asymmetry the victim
                // selection promises.
                if self.a1in.remove(&lbn) {
                    self.a1out.remember(lbn);
                } else {
                    self.am.remove(&lbn);
                }
            }
        }
    }

    fn on_trim_absent(&mut self, lbn: BlockAddr) {
        // The lifetime of a previously evicted block ended: without this,
        // a later re-use of the address would find the stale ghost and be
        // falsely promoted to Am on first touch.
        self.a1out.forget(lbn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{Direction, PolicyConfig, QosPolicy, RequestClass};

    fn req() -> PolicyRequest {
        let config = PolicyConfig::paper_default();
        PolicyRequest {
            direction: Direction::Read,
            class: RequestClass::Random,
            qos: QosPolicy::priority(2),
            prio: config.resolve(QosPolicy::priority(2)),
        }
    }

    /// Emulates the engine: select a victim, then complete the eviction
    /// with the reasoned removal notification.
    fn pop(p: &mut TwoQPolicy) -> Option<BlockAddr> {
        let victim = p.pop_victim(BlockAddr(u64::MAX), &req())?;
        p.on_remove_reasoned(victim, CachePriority(2), RemoveReason::Evict);
        Some(victim)
    }

    #[test]
    fn first_time_blocks_are_probationary_and_evict_fifo() {
        let mut p = TwoQPolicy::new(4); // kin = 1, kout = 2
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req());
        // Hits in A1in do not reorder the FIFO.
        p.on_hit(BlockAddr(1), CachePriority(2), &req());
        assert_eq!(pop(&mut p), Some(BlockAddr(1)));
        assert_eq!(p.ghost_len(), 1);
    }

    #[test]
    fn default_knobs_match_the_paper_fractions() {
        let p = TwoQPolicy::new(100);
        assert_eq!(p.kin(), 25);
        assert_eq!(p.kout(), 50);
        // Explicit defaults are identical to the bare constructor.
        let q = TwoQPolicy::with_knobs(
            100,
            TwoQPolicy::DEFAULT_KIN_PCT,
            TwoQPolicy::DEFAULT_KOUT_PCT,
        );
        assert_eq!((q.kin(), q.kout()), (p.kin(), p.kout()));
    }

    #[test]
    fn knobs_resize_the_queues_and_never_hit_zero() {
        let p = TwoQPolicy::with_knobs(100, 10, 150);
        assert_eq!(p.kin(), 10);
        assert_eq!(p.kout(), 150);
        let tiny = TwoQPolicy::with_knobs(2, 10, 10);
        assert_eq!(tiny.kin(), 1);
        assert_eq!(tiny.kout(), 1);
    }

    #[test]
    fn ghost_re_reference_promotes_to_the_main_queue() {
        let mut p = TwoQPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        let evicted = pop(&mut p).unwrap();
        assert_eq!(evicted, BlockAddr(1));
        // The address is remembered; re-inserting it lands in Am.
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req()); // probationary
        p.on_insert(BlockAddr(3), &req()); // probationary, A1in over target
                                           // Victims come from the probationary queue, not the hot block.
        assert_eq!(pop(&mut p), Some(BlockAddr(2)));
        assert_eq!(pop(&mut p), Some(BlockAddr(3)));
        // Only when probation is empty does Am give up its LRU block.
        assert_eq!(pop(&mut p), Some(BlockAddr(1)));
        assert_eq!(pop(&mut p), None);
    }

    #[test]
    fn ghost_list_is_bounded() {
        let mut p = TwoQPolicy::new(4); // kout = 2
        for i in 0..10u64 {
            p.on_insert(BlockAddr(i), &req());
            pop(&mut p);
        }
        assert!(p.ghost_len() <= p.kout());
    }

    #[test]
    fn scan_does_not_displace_the_hot_set() {
        let mut p = TwoQPolicy::new(8); // kin = 2
                                        // Establish a hot block in Am via ghost promotion.
        p.on_insert(BlockAddr(100), &req());
        while pop(&mut p).is_some() {}
        p.on_insert(BlockAddr(100), &req());
        // A long one-shot scan churns through probation only.
        for i in 0..50u64 {
            p.on_insert(BlockAddr(i), &req());
            if i >= 2 {
                let victim = pop(&mut p).unwrap();
                assert_ne!(victim, BlockAddr(100), "hot block must survive the scan");
            }
        }
    }

    #[test]
    fn trim_forgets_a_resident_block() {
        let mut p = TwoQPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        pop(&mut p); // 1 is now a ghost
        p.on_insert(BlockAddr(1), &req()); // promoted to Am
        p.on_remove_reasoned(BlockAddr(1), CachePriority(2), RemoveReason::Trim);
        assert_eq!(pop(&mut p), None);
    }

    #[test]
    fn trim_of_an_absent_block_forgets_its_ghost() {
        let mut p = TwoQPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        pop(&mut p); // 1 is evicted and remembered as a ghost
        assert_eq!(p.ghost_len(), 1);
        // The block's lifetime ends (TRIM) while it is not resident.
        p.on_trim_absent(BlockAddr(1));
        assert_eq!(p.ghost_len(), 0);
        // Re-using the address is a first touch again: probation, not Am.
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req());
        assert_eq!(pop(&mut p), Some(BlockAddr(1)), "1 is probationary again");
    }

    #[test]
    fn external_evict_is_remembered_as_reuse_history() {
        let mut p = TwoQPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        // The engine (or a compositor steal) displaces the probationary
        // block: 2Q exploits the hint by ghosting it, so the next touch of
        // the address is a promotion to Am — unlike a TRIM, after which it
        // would restart probation.
        p.on_remove_reasoned(BlockAddr(1), CachePriority(2), RemoveReason::Evict);
        assert_eq!(p.ghost_len(), 1);
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req());
        // 2 (probation) evicts before the promoted 1.
        assert_eq!(pop(&mut p), Some(BlockAddr(2)));
    }

    #[test]
    fn evicting_a_main_queue_block_leaves_no_ghost() {
        let mut p = TwoQPolicy::new(4);
        p.on_insert(BlockAddr(1), &req());
        pop(&mut p); // ghosted out of probation
        p.on_insert(BlockAddr(1), &req()); // promoted to Am
        assert_eq!(p.ghost_len(), 0);
        // Evicting out of Am forgets the address entirely: re-inserting it
        // restarts probation rather than reading as reuse.
        p.on_remove_reasoned(BlockAddr(1), CachePriority(2), RemoveReason::Evict);
        assert_eq!(p.ghost_len(), 0);
        p.on_insert(BlockAddr(1), &req());
        p.on_insert(BlockAddr(2), &req());
        assert_eq!(pop(&mut p), Some(BlockAddr(1)), "1 is probationary again");
    }
}
