//! The storage-system interface the DBMS storage manager talks to.
//!
//! The trait is the concurrency boundary of the stack: every method takes
//! `&self` and implementations are `Send + Sync`, so one storage system can
//! be shared — typically as an `Arc<dyn StorageSystem>` — by any number of
//! concurrently executing query streams. Implementations serialize
//! internally (lock striping in the hybrid cache, a single mutex in the
//! baselines); callers never need an exclusive borrow.

use crate::migration::MigrationStats;
use crate::stats::CacheStats;
use hstorage_storage::{ClassifiedRequest, TrimCommand};
use std::time::Duration;

/// A complete storage configuration (devices + management policy) that can
/// serve classified requests from concurrent callers.
///
/// Implementations:
/// * [`crate::hybrid::HybridCache`] — the hStorage-DB priority cache,
/// * [`crate::lru_cache::LruCache`] — classification-blind LRU cache,
/// * [`crate::passthrough::HddOnly`] / [`crate::passthrough::SsdOnly`] —
///   single-device baselines.
pub trait StorageSystem: Send + Sync {
    /// Human-readable configuration name ("HDD-only", "LRU", …).
    fn name(&self) -> &str;

    /// Serves one classified request. Legacy configurations ignore the
    /// classification; DSS-aware configurations use it for placement.
    fn submit(&self, req: ClassifiedRequest);

    /// Serves a batch of classified requests, in order.
    ///
    /// Semantically equivalent to submitting each request via
    /// [`StorageSystem::submit`]: the resulting cache state and cache-level
    /// statistics are identical. Implementations may exploit the batch to
    /// amortise internal lock acquisitions and to merge physically adjacent
    /// device transfers (fewer, larger physical I/Os for the same logical
    /// traffic). The default implementation simply loops, which keeps the
    /// baseline configurations trivially correct.
    fn submit_batch(&self, reqs: Vec<ClassifiedRequest>) {
        for req in reqs {
            self.submit(req);
        }
    }

    /// Handles a TRIM command for dead LBA ranges.
    fn trim(&self, cmd: &TrimCommand);

    /// Statistics accumulated since construction or the last reset.
    fn stats(&self) -> CacheStats;

    /// Current simulated time of the storage system's clock.
    fn now(&self) -> Duration;

    /// Clears statistics counters (does not drop cache contents).
    fn reset_stats(&self);

    /// Number of blocks currently resident in the cache (0 for
    /// single-device configurations).
    fn resident_blocks(&self) -> u64 {
        0
    }

    /// Gives the storage system an opportunity to run background tier
    /// migration (see [`crate::migration`]), if enough idle device time
    /// has accrued since the last round. Drivers call this between units
    /// of foreground work; the default — every configuration without a
    /// migration engine — does nothing.
    fn migrate_idle(&self) -> MigrationStats {
        MigrationStats::default()
    }

    /// Cumulative tier-migration counters (all zero for configurations
    /// without a migration engine).
    fn migration_stats(&self) -> MigrationStats {
        MigrationStats::default()
    }
}
