//! The storage-system interface the DBMS storage manager talks to.

use crate::stats::CacheStats;
use hstorage_storage::{ClassifiedRequest, TrimCommand};
use std::time::Duration;

/// A complete storage configuration (devices + management policy) that can
/// serve classified requests.
///
/// Implementations:
/// * [`crate::hybrid::HybridCache`] — the hStorage-DB priority cache,
/// * [`crate::lru_cache::LruCache`] — classification-blind LRU cache,
/// * [`crate::passthrough::HddOnly`] / [`crate::passthrough::SsdOnly`] —
///   single-device baselines.
pub trait StorageSystem: Send {
    /// Human-readable configuration name ("HDD-only", "LRU", …).
    fn name(&self) -> &str;

    /// Serves one classified request. Legacy configurations ignore the
    /// classification; DSS-aware configurations use it for placement.
    fn submit(&mut self, req: ClassifiedRequest);

    /// Handles a TRIM command for dead LBA ranges.
    fn trim(&mut self, cmd: &TrimCommand);

    /// Statistics accumulated since construction or the last reset.
    fn stats(&self) -> CacheStats;

    /// Current simulated time of the storage system's clock.
    fn now(&self) -> Duration;

    /// Clears statistics counters (does not drop cache contents).
    fn reset_stats(&mut self);

    /// Number of blocks currently resident in the cache (0 for
    /// single-device configurations).
    fn resident_blocks(&self) -> u64 {
        0
    }
}
