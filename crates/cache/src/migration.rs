//! Online tier migration: heat tracking and background promote/demote.
//!
//! hStorage-DB assigns a block's tier once, at admission, from the QoS
//! policy the DBMS attached to the request — and only TRIM ever moves data
//! afterwards. The premise of the SSD/HDD cost asymmetry, however, is that
//! placement should track *observed* access value, not a one-shot guess.
//! This module adds the missing feedback loop:
//!
//! * a per-shard [`HeatTracker`] — decayed access counters fed from the
//!   engine's existing hit/miss events (plus an atomic side-counter for
//!   hits served by the lock-light optimistic read path), cheap enough to
//!   ride the hot path;
//! * a background **migration round**, run by
//!   [`StorageSystem::migrate_idle`](crate::StorageSystem::migrate_idle)
//!   when enough *idle* simulated device time has accrued since the last
//!   round: cold SSD-resident blocks are demoted to the HDD and hot
//!   HDD-resident blocks are promoted into the freed SSD slots;
//! * **lazy migration-on-access** for blocks already queued: a hit on a
//!   demotion candidate cancels the demotion (the block just proved it is
//!   still hot), and an admitted miss on a promotion candidate *is* the
//!   promotion (the normal allocation path already moved the block).
//!
//! Migration stays policy-correct by construction: demotions flow through
//! the policy layer as [`RemoveReason::Evict`](crate::RemoveReason::Evict)
//! — so ghost-keeping policies (2Q, ARC) learn from them exactly as from
//! their own evictions — and promotions re-enter via the normal admission
//! path (`admits` → `on_insert`) using the request shape last observed for
//! the block, so every [`CachePolicy`](crate::CachePolicy) keeps a
//! consistent view of the resident set.
//!
//! The knob set lives in [`MigrationConfig`]. The default is **off**,
//! which is bit-identical to the engine without this module: no heat is
//! tracked, no rounds run, and the equivalence suites pin that nothing
//! else changed.
//!
//! # Worked example
//!
//! A phase-shifting workload: a high-priority set fills the cache, then
//! the workload moves to a lower-priority set that selective allocation
//! refuses to admit over the old residents. With migration enabled, idle
//! rounds demote the now-cold residents and promote the observed-hot
//! blocks, and the counters record the turnover:
//!
//! ```
//! use hstorage_cache::{CacheEngine, MigrationConfig, StorageSystem};
//! use hstorage_storage::{
//!     BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
//! };
//! use std::time::Duration;
//!
//! let cache = CacheEngine::new(PolicyConfig::paper_default(), 32).with_migration(
//!     MigrationConfig::on()
//!         .with_half_life_rounds(4)
//!         .with_idle_threshold(Duration::from_micros(100))
//!         .with_round_budget(16),
//! );
//! let read = |lbn: u64, prio: u8| {
//!     ClassifiedRequest::new(
//!         IoRequest::read(BlockRange::new(lbn, 1), false),
//!         RequestClass::Random,
//!         QosPolicy::priority(prio),
//!     )
//! };
//! // Phase 1: a priority-2 set fills the cache.
//! for pass in 0..4 {
//!     for lbn in 0..32u64 {
//!         cache.submit(read(lbn, 2));
//!     }
//! }
//! // Phase 2: the workload shifts to a priority-3 set. Selective
//! // allocation refuses to displace the higher-priority residents, so
//! // without migration these blocks would bypass forever; idle rounds
//! // between passes promote them by observed heat instead.
//! for pass in 0..12 {
//!     for lbn in 1_000..1_032u64 {
//!         cache.submit(read(lbn, 3));
//!     }
//!     cache.migrate_idle();
//! }
//! let stats = cache.migration_stats();
//! assert!(stats.rounds > 0, "idle rounds must have run");
//! assert!(stats.promoted > 0, "the hot phase-2 set must be promoted");
//! assert!(stats.demoted > 0, "the cold phase-1 set must make room");
//! assert!(cache.contains_block(hstorage_storage::BlockAddr(1_000)));
//! ```

use crate::policy::PolicyRequest;
use hstorage_storage::BlockAddr;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Knob set of the online tier-migration engine. The default is **off**:
/// a disabled configuration tracks no heat and runs no rounds, leaving the
/// engine bit-identical to one built without migration.
///
/// See the [module docs](self) for a worked end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Master switch. Off (the default) means no heat tracking, no
    /// rounds, and zero behavioural difference to the pre-migration
    /// engine.
    pub enabled: bool,
    /// Every how many migration rounds the heat counters are halved.
    /// Smaller values forget faster (placement chases the current phase);
    /// larger values favour long-lived heat. Must be at least 1.
    pub half_life_rounds: u32,
    /// How much *new* idle simulated device time (summed over both
    /// devices) must have accrued since the last executed round before
    /// the next round may run; until then
    /// [`migrate_idle`](crate::StorageSystem::migrate_idle) is counted as
    /// a skipped round. Zero runs a round on every call — useful in
    /// tests, too eager for production.
    pub idle_threshold: Duration,
    /// Maximum number of blocks one round may move (promotions plus
    /// demotions, over all shards of the engine combined the budget is
    /// per-shard). Candidates beyond the budget are queued for the lazy
    /// window until the next round. Must be at least 1.
    pub round_budget: usize,
}

impl MigrationConfig {
    /// The disabled configuration (same as `Default`).
    pub fn off() -> Self {
        MigrationConfig::default()
    }

    /// An enabled configuration with the default knob values
    /// (half-life 4 rounds, 500 µs idle threshold, 64-block budget).
    pub fn on() -> Self {
        MigrationConfig {
            enabled: true,
            ..MigrationConfig::default()
        }
    }

    /// Overrides the heat half-life. Panics on 0, like the other
    /// description-time knob builders.
    pub fn with_half_life_rounds(mut self, rounds: u32) -> Self {
        self.half_life_rounds = rounds;
        self.validate().expect("invalid migration configuration");
        self
    }

    /// Overrides the idle-time threshold between rounds.
    pub fn with_idle_threshold(mut self, threshold: Duration) -> Self {
        self.idle_threshold = threshold;
        self
    }

    /// Overrides the per-round migration budget. Panics on 0.
    pub fn with_round_budget(mut self, budget: usize) -> Self {
        self.round_budget = budget;
        self.validate().expect("invalid migration configuration");
        self
    }

    /// Checks the knob ranges (`half_life_rounds >= 1`,
    /// `round_budget >= 1`).
    pub fn validate(&self) -> Result<(), String> {
        if self.half_life_rounds == 0 {
            return Err("migration half_life_rounds must be at least 1".into());
        }
        if self.round_budget == 0 {
            return Err("migration round_budget must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            enabled: false,
            half_life_rounds: 4,
            idle_threshold: Duration::from_micros(500),
            round_budget: 64,
        }
    }
}

/// Counters of the migration engine, separate from
/// [`CacheStats`](crate::CacheStats) on purpose: migration activity is
/// background work, and keeping it out of the per-action cache statistics
/// keeps those bit-comparable between migration-on and migration-off runs
/// of the same foreground traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Rounds that actually ran.
    pub rounds: u64,
    /// [`migrate_idle`](crate::StorageSystem::migrate_idle) calls that ran
    /// no round (not enough new idle time, or another caller claimed the
    /// idle window).
    pub skipped_rounds: u64,
    /// Blocks moved HDD → SSD by a round.
    pub promoted: u64,
    /// Blocks moved SSD → HDD by a round.
    pub demoted: u64,
    /// Queued promotion candidates that were admitted by a foreground
    /// access before the next round got to them.
    pub lazy_promotions: u64,
    /// Queued demotion candidates rescued by a foreground hit (the block
    /// proved it is still hot, so the demotion was dropped).
    pub cancelled_demotions: u64,
    /// Queued candidates (either direction) invalidated by a TRIM: the
    /// block's lifetime ended, so the queue entry — and all heat history —
    /// was discarded instead of resurrecting dead data.
    pub trim_cancellations: u64,
}

impl MigrationStats {
    /// Total blocks moved by background rounds (promotions + demotions).
    pub fn migrated(&self) -> u64 {
        self.promoted + self.demoted
    }
}

/// Decayed per-block access counters: the "observed value" half of the
/// migration decision.
///
/// Every foreground access adds one unit of heat; every
/// [`MigrationConfig::half_life_rounds`] rounds the tracker decays,
/// halving all counters (dropping the ones that reach zero). Two
/// invariants make the tracker safe to reason about:
///
/// * **boundedness** — a block's heat never exceeds the raw number of
///   accesses recorded for it, no matter how record/decay interleave
///   (decay only ever shrinks counters);
/// * **order-independent merge** — [`HeatTracker::merge`] is commutative
///   and associative, so folding per-shard trackers into a global view
///   gives the same answer in any order.
///
/// Both are pinned by property tests.
#[derive(Debug, Clone, Default)]
pub struct HeatTracker {
    counts: HashMap<BlockAddr, u64>,
    /// Reused sort scratch for [`HeatTracker::retain_hottest`], so the
    /// per-round cap does not reallocate a tracker-sized `Vec` every
    /// time. Excluded from equality: it is working memory, not state.
    scratch: Vec<(u64, BlockAddr)>,
}

/// Equality compares the tracked counters only — the reused sort scratch
/// is working memory and never observable.
impl PartialEq for HeatTracker {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
    }
}

impl Eq for HeatTracker {}

impl HeatTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        HeatTracker::default()
    }

    /// Records one access to `lbn`.
    pub fn record(&mut self, lbn: BlockAddr) {
        self.record_n(lbn, 1);
    }

    /// Records `n` accesses to `lbn` at once (used to fold the optimistic
    /// fast path's atomic hit counter in at round time).
    pub fn record_n(&mut self, lbn: BlockAddr, n: u64) {
        if n == 0 {
            return;
        }
        let slot = self.counts.entry(lbn).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// The current heat of `lbn` (0 when untracked).
    pub fn heat(&self, lbn: BlockAddr) -> u64 {
        self.counts.get(&lbn).copied().unwrap_or(0)
    }

    /// Halves every counter, dropping blocks whose heat reaches zero.
    pub fn decay(&mut self) {
        self.counts.retain(|_, h| {
            *h >>= 1;
            *h > 0
        });
    }

    /// Adds every counter of `other` into this tracker. Commutative and
    /// associative (up to counter saturation), so per-shard trackers can
    /// be folded in any order.
    pub fn merge(&mut self, other: &HeatTracker) {
        for (&lbn, &h) in &other.counts {
            self.record_n(lbn, h);
        }
    }

    /// Forgets `lbn` entirely (its lifetime ended — TRIM).
    pub fn forget(&mut self, lbn: BlockAddr) {
        self.counts.remove(&lbn);
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates all `(lbn, heat)` pairs in unspecified order. Round logic
    /// sorts whatever it derives from this, so the map's iteration order
    /// never reaches an observable result.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &u64)> {
        self.counts.iter()
    }

    /// Caps the tracker at the `cap` hottest blocks, breaking heat ties
    /// by lowest address (deterministic regardless of map order). A
    /// tracker already within the cap — the steady state between decay
    /// spikes — returns without touching the scratch buffer or sorting.
    pub fn retain_hottest(&mut self, cap: usize) {
        if self.counts.len() <= cap {
            return;
        }
        self.scratch.clear();
        self.scratch
            .extend(self.counts.iter().map(|(&l, &h)| (h, l)));
        // Hottest first; ties broken by the lower address surviving.
        self.scratch
            .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, lbn) in &self.scratch[cap..] {
            self.counts.remove(&lbn);
        }
        self.scratch.clear();
    }
}

/// Lock-free per-shard migration counters, mirroring the engine's
/// atomic-statistics split: foreground hooks and background rounds bump
/// them under the stripe mutex (or not — the fold is a plain atomic add),
/// while [`migration_stats`](crate::StorageSystem::migration_stats)
/// aggregates without taking any shard lock.
#[derive(Debug, Default)]
pub(crate) struct MigrationCounters {
    pub(crate) promoted: AtomicU64,
    pub(crate) demoted: AtomicU64,
    pub(crate) lazy_promotions: AtomicU64,
    pub(crate) cancelled_demotions: AtomicU64,
    pub(crate) trim_cancellations: AtomicU64,
}

impl MigrationCounters {
    /// Adds this shard's counters into an aggregate snapshot.
    pub(crate) fn add_into(&self, stats: &mut MigrationStats) {
        stats.promoted += self.promoted.load(Ordering::Relaxed);
        stats.demoted += self.demoted.load(Ordering::Relaxed);
        stats.lazy_promotions += self.lazy_promotions.load(Ordering::Relaxed);
        stats.cancelled_demotions += self.cancelled_demotions.load(Ordering::Relaxed);
        stats.trim_cancellations += self.trim_cancellations.load(Ordering::Relaxed);
    }
}

/// Per-shard migration state, owned by the shard's stripe mutex alongside
/// the policy and the allocator (it is decision state: every mutation
/// happens under the same lock as the policy calls it feeds).
pub(crate) struct ShardMigration {
    pub(crate) config: MigrationConfig,
    /// Decayed access counters over every block the shard has seen —
    /// resident or not — capped at [`Self::track_cap`] hottest entries.
    pub(crate) heat: HeatTracker,
    /// The request shape last observed per tracked block. Promotions
    /// synthesize their admission request from this (direction forced to
    /// `Read`: a promotion is a background fetch).
    pub(crate) shapes: HashMap<BlockAddr, PolicyRequest>,
    /// Absent blocks queued for promotion by the last round (candidates
    /// beyond the round budget). A foreground admitted miss resolves one
    /// lazily; a TRIM cancels it.
    pub(crate) pending_promote: HashSet<BlockAddr>,
    /// Resident blocks queued for demotion by the last round. A
    /// foreground hit cancels one (the block is still hot); a TRIM
    /// removes it together with the block.
    pub(crate) pending_demote: HashSet<BlockAddr>,
    /// Rounds run on this shard (drives the decay cadence).
    pub(crate) rounds: u64,
    /// Maximum heat entries kept (4× the shard's slot capacity, at least
    /// 64): enough to see beyond the resident set without letting a scan
    /// grow the tracker without bound.
    pub(crate) track_cap: usize,
    /// Reused scratch for the round's resident sweep, so a shard-sized
    /// `Vec` is not reallocated every migration round. Cleared before
    /// each use; contents between rounds are meaningless.
    pub(crate) resident_scratch: Vec<(u64, BlockAddr)>,
}

impl ShardMigration {
    /// Creates the migration state for a shard with `capacity` slots.
    pub(crate) fn new(config: MigrationConfig, capacity: u64) -> Self {
        ShardMigration {
            config,
            heat: HeatTracker::new(),
            shapes: HashMap::new(),
            pending_promote: HashSet::new(),
            pending_demote: HashSet::new(),
            rounds: 0,
            track_cap: capacity.saturating_mul(4).clamp(64, 1 << 20) as usize,
            resident_scratch: Vec::new(),
        }
    }

    /// Foreground access to `lbn`: one unit of heat, and the shape is
    /// remembered for a later promotion decision.
    pub(crate) fn note_access(&mut self, lbn: BlockAddr, req: &PolicyRequest) {
        self.heat.record(lbn);
        self.shapes.insert(lbn, *req);
    }

    /// A hit on `lbn`: if the block was queued for demotion, the queue
    /// entry is dropped — the hit just proved the block is still hot.
    /// Returns whether a demotion was cancelled.
    pub(crate) fn note_hit(&mut self, lbn: BlockAddr) -> bool {
        self.pending_demote.remove(&lbn)
    }

    /// `lbn` was admitted and inserted by the foreground path: if it was
    /// queued for promotion, the normal allocation already performed the
    /// migration. Returns whether a queued promotion resolved lazily.
    pub(crate) fn note_insert(&mut self, lbn: BlockAddr) -> bool {
        self.pending_promote.remove(&lbn)
    }

    /// A TRIM invalidated `lbn`: its lifetime ended, so heat, shape and
    /// any queued migration are discarded — an in-flight candidate must
    /// never resurrect dead data. Returns how many queue entries were
    /// cancelled (0, 1 or 2).
    pub(crate) fn note_trim(&mut self, lbn: BlockAddr) -> u64 {
        self.heat.forget(lbn);
        self.shapes.remove(&lbn);
        u64::from(self.pending_promote.remove(&lbn)) + u64::from(self.pending_demote.remove(&lbn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_off_and_valid() {
        let config = MigrationConfig::default();
        assert!(!config.enabled);
        assert!(config.validate().is_ok());
        assert_eq!(config, MigrationConfig::off());
        assert!(MigrationConfig::on().enabled);
    }

    #[test]
    #[should_panic(expected = "invalid migration configuration")]
    fn zero_half_life_is_rejected() {
        let _ = MigrationConfig::on().with_half_life_rounds(0);
    }

    #[test]
    #[should_panic(expected = "invalid migration configuration")]
    fn zero_budget_is_rejected() {
        let _ = MigrationConfig::on().with_round_budget(0);
    }

    #[test]
    fn heat_records_decays_and_forgets() {
        let mut t = HeatTracker::new();
        t.record(BlockAddr(1));
        t.record(BlockAddr(1));
        t.record(BlockAddr(2));
        assert_eq!(t.heat(BlockAddr(1)), 2);
        assert_eq!(t.heat(BlockAddr(2)), 1);
        t.decay();
        assert_eq!(t.heat(BlockAddr(1)), 1);
        // Heat 1 halves to 0 and the entry is dropped.
        assert_eq!(t.heat(BlockAddr(2)), 0);
        assert_eq!(t.len(), 1);
        t.forget(BlockAddr(1));
        assert!(t.is_empty());
    }

    #[test]
    fn retain_hottest_is_deterministic_on_ties() {
        let mut t = HeatTracker::new();
        for lbn in 0..10u64 {
            t.record(BlockAddr(lbn));
        }
        t.record(BlockAddr(7));
        t.retain_hottest(3);
        assert_eq!(t.len(), 3);
        // Block 7 (heat 2) survives; the tie among heat-1 blocks is broken
        // by lowest address.
        assert_eq!(t.heat(BlockAddr(7)), 2);
        assert_eq!(t.heat(BlockAddr(0)), 1);
        assert_eq!(t.heat(BlockAddr(1)), 1);
        assert_eq!(t.heat(BlockAddr(2)), 0);
    }

    #[test]
    fn trim_cancels_queued_candidates() {
        let mut m = ShardMigration::new(MigrationConfig::on(), 16);
        let req = crate::policy::PolicyRequest {
            direction: hstorage_storage::Direction::Read,
            class: hstorage_storage::RequestClass::Random,
            qos: hstorage_storage::QosPolicy::priority(2),
            prio: hstorage_storage::CachePriority(2),
        };
        m.note_access(BlockAddr(9), &req);
        m.pending_promote.insert(BlockAddr(9));
        assert_eq!(m.note_trim(BlockAddr(9)), 1);
        assert_eq!(m.heat.heat(BlockAddr(9)), 0);
        assert!(!m.pending_promote.contains(&BlockAddr(9)));
        // A second trim of the same address cancels nothing further.
        assert_eq!(m.note_trim(BlockAddr(9)), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Decay can only shrink: however records and decays interleave, a
        /// block's heat never exceeds the raw count of accesses recorded
        /// for it.
        #[test]
        fn decayed_heat_never_exceeds_raw_count(
            ops in proptest::collection::vec((0u64..16, 0u8..8), 1..200),
        ) {
            let mut t = HeatTracker::new();
            let mut raw: HashMap<BlockAddr, u64> = HashMap::new();
            for (lbn, kind) in ops {
                if kind == 0 {
                    t.decay();
                } else {
                    let lbn = BlockAddr(lbn);
                    t.record(lbn);
                    *raw.entry(lbn).or_insert(0) += 1;
                }
            }
            for (lbn, &count) in &raw {
                prop_assert!(
                    t.heat(*lbn) <= count,
                    "heat {} exceeds raw count {count} for {lbn:?}",
                    t.heat(*lbn)
                );
            }
        }

        /// Merging per-shard trackers is order-independent: any
        /// permutation of merges yields the same aggregate.
        #[test]
        fn merge_is_order_independent(
            a in proptest::collection::vec((0u64..32, 1u64..50), 0..20),
            b in proptest::collection::vec((0u64..32, 1u64..50), 0..20),
            c in proptest::collection::vec((0u64..32, 1u64..50), 0..20),
        ) {
            let tracker = |entries: &[(u64, u64)]| {
                let mut t = HeatTracker::new();
                for &(lbn, n) in entries {
                    t.record_n(BlockAddr(lbn), n);
                }
                t
            };
            let (ta, tb, tc) = (tracker(&a), tracker(&b), tracker(&c));
            let fold = |order: [&HeatTracker; 3]| {
                let mut out = HeatTracker::new();
                for t in order {
                    out.merge(t);
                }
                out
            };
            let abc = fold([&ta, &tb, &tc]);
            prop_assert_eq!(fold([&tc, &tb, &ta]).heat_map(), abc.heat_map());
            prop_assert_eq!(fold([&tb, &ta, &tc]).heat_map(), abc.heat_map());
            // Associativity: (a ⊎ b) ⊎ c == a ⊎ (b ⊎ c).
            let mut ab = ta.clone();
            ab.merge(&tb);
            ab.merge(&tc);
            let mut bc = tb.clone();
            bc.merge(&tc);
            let mut a_bc = ta.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab.heat_map(), a_bc.heat_map());
        }
    }

    impl HeatTracker {
        /// Test-only canonical view (sorted) for order-independent
        /// comparison.
        fn heat_map(&self) -> Vec<(BlockAddr, u64)> {
            let mut v: Vec<(BlockAddr, u64)> = self.counts.iter().map(|(&l, &h)| (l, h)).collect();
            v.sort_unstable();
            v
        }
    }
}
