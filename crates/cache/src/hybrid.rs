//! The hStorage-DB hybrid cache (Section 5).
//!
//! An SSD works as a cache for an HDD. Admission and eviction are driven by
//! the caching priority each request carries:
//!
//! * **Selective allocation** — only blocks whose priority is below the
//!   non-caching threshold `t` are considered for caching; when the cache is
//!   full a new block is admitted only if some resident block has an equal
//!   or lower priority (which is then evicted first).
//! * **Selective eviction** — the victim is the least-recently-used block of
//!   the lowest-priority non-empty group.
//!
//! The six actions of Section 5.1 (cache hit, read allocation, write
//! allocation, bypassing, re-allocation, eviction) are all implemented and
//! counted, as are TRIM-driven invalidations and write-buffer flushes.

use crate::allocator::SlotAllocator;
use crate::metadata::{BlockState, CacheEntry, CacheMetadata};
use crate::priority_group::PriorityGroups;
use crate::stats::{CacheAction, CacheStats};
use crate::system::StorageSystem;
use hstorage_storage::{
    BlockAddr, BlockRange, CachePriority, ClassifiedRequest, Direction, HddDevice, IoRequest,
    PolicyConfig, QosPolicy, SimClock, SsdDevice, StorageDevice, TrimCommand,
};
use std::time::Duration;

/// Per-request batch of device traffic, flushed as one I/O per device and
/// direction so multi-block requests pay one command overhead, like the real
/// system.
#[derive(Debug, Default, Clone, Copy)]
struct DeviceBatch {
    ssd_read: u64,
    ssd_write: u64,
    hdd_read: u64,
    hdd_write: u64,
}

/// The hybrid SSD-over-HDD storage system managed by caching priorities.
pub struct HybridCache {
    policy: PolicyConfig,
    cache_capacity: u64,
    clock: SimClock,
    ssd: SsdDevice,
    hdd: HddDevice,
    meta: CacheMetadata,
    groups: PriorityGroups,
    alloc: SlotAllocator,
    stats: CacheStats,
    /// Blocks currently resident in the write-buffer group (group 0).
    write_buffer_resident: u64,
}

impl HybridCache {
    /// Creates a hybrid cache with `cache_capacity_blocks` of SSD cache in
    /// front of the HDD, using the paper's device models.
    pub fn new(policy: PolicyConfig, cache_capacity_blocks: u64) -> Self {
        let clock = SimClock::new();
        Self::with_devices(
            policy,
            cache_capacity_blocks,
            SsdDevice::intel_320(clock.clone()),
            HddDevice::cheetah(clock.clone()),
            clock,
        )
    }

    /// Creates a hybrid cache over explicitly constructed devices. The
    /// devices must share `clock`.
    pub fn with_devices(
        policy: PolicyConfig,
        cache_capacity_blocks: u64,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        policy.validate().expect("invalid policy configuration");
        HybridCache {
            groups: PriorityGroups::new(policy.total_priorities),
            alloc: SlotAllocator::new(cache_capacity_blocks),
            policy,
            cache_capacity: cache_capacity_blocks,
            clock,
            ssd,
            hdd,
            meta: CacheMetadata::new(),
            stats: CacheStats::new(),
            write_buffer_resident: 0,
        }
    }

    /// The policy configuration in force.
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// Cache capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.cache_capacity
    }

    /// Maximum number of blocks the write buffer may hold before a flush.
    pub fn write_buffer_limit(&self) -> u64 {
        (self.cache_capacity as f64 * self.policy.write_buffer_fraction).floor() as u64
    }

    /// Number of blocks currently held in the write buffer.
    pub fn write_buffer_resident(&self) -> u64 {
        self.write_buffer_resident
    }

    /// Evicts the selective-eviction victim, writing it back if dirty.
    /// Returns `false` if the cache was empty.
    fn evict_one(&mut self, batch: &mut DeviceBatch) -> bool {
        let Some((victim, prio)) = self.groups.pop_victim() else {
            return false;
        };
        let entry = self
            .meta
            .remove(victim)
            .expect("victim present in groups but not in metadata");
        debug_assert_eq!(entry.priority, prio);
        if entry.is_dirty() {
            batch.hdd_write += 1;
        }
        if prio == CachePriority(0) {
            self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
        }
        self.alloc.release(entry.pbn);
        self.stats.record_action(CacheAction::Eviction, 1);
        true
    }

    /// Tries to obtain a free cache slot for a block of priority `prio`,
    /// applying the selective-allocation rule. Returns the physical slot or
    /// `None` if the block must bypass the cache.
    fn try_allocate(&mut self, prio: CachePriority, batch: &mut DeviceBatch) -> Option<u64> {
        if let Some(pbn) = self.alloc.allocate() {
            return Some(pbn);
        }
        // Cache full: admit only if some resident block has an equal or
        // lower priority (a numerically >= priority value).
        let victim_prio = self.groups.lowest_occupied_priority()?;
        if victim_prio.0 >= prio.0 {
            self.evict_one(batch);
            self.alloc.allocate()
        } else {
            None
        }
    }

    /// Handles one block of a request; returns `true` on a cache hit.
    fn handle_block(
        &mut self,
        lbn: BlockAddr,
        direction: Direction,
        policy: QosPolicy,
        prio: CachePriority,
        batch: &mut DeviceBatch,
    ) -> bool {
        if let Some(entry) = self.meta.get(lbn).copied() {
            // --- Cache hit ---
            self.stats.record_action(CacheAction::CacheHit, 1);
            match policy {
                QosPolicy::NonCachingNonEviction => {
                    // Does not affect the existing layout: no touch, no move.
                }
                QosPolicy::NonCachingEviction => {
                    let target = self.policy.non_caching_eviction();
                    if entry.priority != target {
                        self.reallocate(lbn, entry.priority, target);
                    }
                }
                QosPolicy::Priority(_) | QosPolicy::WriteBuffer => {
                    if entry.priority != prio {
                        self.reallocate(lbn, entry.priority, prio);
                    } else {
                        self.groups.touch(lbn, prio);
                    }
                }
            }
            match direction {
                Direction::Read => batch.ssd_read += 1,
                Direction::Write => {
                    batch.ssd_write += 1;
                    if let Some(e) = self.meta.get_mut(lbn) {
                        e.state = BlockState::Dirty;
                    }
                }
            }
            return true;
        }

        // --- Cache miss ---
        let admissible = policy.admits() && self.policy.admissible(prio);
        if !admissible {
            // Bypassing: straight to the second-level device.
            self.stats.record_action(CacheAction::Bypassing, 1);
            match direction {
                Direction::Read => batch.hdd_read += 1,
                Direction::Write => batch.hdd_write += 1,
            }
            return false;
        }

        match self.try_allocate(prio, batch) {
            Some(pbn) => {
                let state = match direction {
                    Direction::Read => {
                        // Read allocation: fetch from HDD, place in SSD.
                        self.stats.record_action(CacheAction::ReadAllocation, 1);
                        batch.hdd_read += 1;
                        batch.ssd_write += 1;
                        BlockState::Clean
                    }
                    Direction::Write => {
                        // Write allocation: place in SSD, mark dirty.
                        self.stats.record_action(CacheAction::WriteAllocation, 1);
                        batch.ssd_write += 1;
                        BlockState::Dirty
                    }
                };
                self.meta.insert(
                    lbn,
                    CacheEntry {
                        pbn,
                        priority: prio,
                        state,
                    },
                );
                self.groups.insert(lbn, prio);
                if prio == CachePriority(0) {
                    self.write_buffer_resident += 1;
                }
            }
            None => {
                // Not cache-worthy relative to current residents: bypass.
                self.stats.record_action(CacheAction::Bypassing, 1);
                match direction {
                    Direction::Read => batch.hdd_read += 1,
                    Direction::Write => batch.hdd_write += 1,
                }
            }
        }
        false
    }

    fn reallocate(&mut self, lbn: BlockAddr, old: CachePriority, new: CachePriority) {
        self.groups.reallocate(lbn, old, new);
        if let Some(e) = self.meta.get_mut(lbn) {
            e.priority = new;
        }
        if old == CachePriority(0) && new != CachePriority(0) {
            self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
        } else if new == CachePriority(0) && old != CachePriority(0) {
            self.write_buffer_resident += 1;
        }
        self.stats.record_action(CacheAction::ReAllocation, 1);
    }

    /// Flushes the write buffer if its occupancy exceeds the `b` threshold:
    /// dirty buffered blocks are written to the HDD and the buffer is
    /// drained (the space is returned to the cache).
    fn maybe_flush_write_buffer(&mut self) {
        let limit = self.write_buffer_limit();
        if limit == 0 || self.write_buffer_resident <= limit {
            return;
        }
        let buffered: Vec<BlockAddr> = self
            .groups
            .iter_group(CachePriority(0))
            .copied()
            .collect();
        let mut dirty_blocks = 0u64;
        for lbn in buffered {
            if let Some(entry) = self.meta.remove(lbn) {
                if entry.is_dirty() {
                    dirty_blocks += 1;
                }
                self.groups.remove(lbn, CachePriority(0));
                self.alloc.release(entry.pbn);
            }
        }
        self.write_buffer_resident = 0;
        if dirty_blocks > 0 {
            // The flush is a large, mostly sequential transfer to the HDD.
            self.hdd
                .serve(&IoRequest::write(BlockRange::new(0u64, dirty_blocks), true));
        }
        self.stats
            .record_action(CacheAction::WriteBufferFlush, dirty_blocks);
    }

    /// Issues the accumulated device traffic for one request.
    fn flush_batch(&mut self, req: &ClassifiedRequest, batch: DeviceBatch) {
        let seq = req.io.sequential;
        let start = req.io.range.start;
        if batch.hdd_read > 0 {
            self.hdd
                .serve(&IoRequest::read(BlockRange::new(start, batch.hdd_read), seq));
        }
        if batch.hdd_write > 0 {
            self.hdd.serve(&IoRequest::write(
                BlockRange::new(start, batch.hdd_write),
                seq,
            ));
        }
        if batch.ssd_read > 0 {
            self.ssd
                .serve(&IoRequest::read(BlockRange::new(start, batch.ssd_read), seq));
        }
        if batch.ssd_write > 0 {
            self.ssd.serve(&IoRequest::write(
                BlockRange::new(start, batch.ssd_write),
                seq,
            ));
        }
    }
}

impl StorageSystem for HybridCache {
    fn name(&self) -> &str {
        "hStorage-DB"
    }

    fn submit(&mut self, req: ClassifiedRequest) {
        let prio = self.policy.resolve(req.policy);
        let mut batch = DeviceBatch::default();
        let mut hits = 0u64;
        for lbn in req.io.range.iter() {
            if self.handle_block(lbn, req.io.direction, req.policy, prio, &mut batch) {
                hits += 1;
            }
        }
        let blocks = req.blocks();
        self.stats.record_class(req.class, blocks, hits);
        self.stats.record_priority(prio.0, blocks, hits);
        self.flush_batch(&req, batch);
        self.maybe_flush_write_buffer();
        self.stats.resident_blocks = self.meta.len() as u64;
    }

    fn trim(&mut self, cmd: &TrimCommand) {
        let mut trimmed = 0u64;
        for range in &cmd.ranges {
            for lbn in range.iter() {
                if let Some(entry) = self.meta.remove(lbn) {
                    self.groups.remove(lbn, entry.priority);
                    if entry.priority == CachePriority(0) {
                        self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
                    }
                    self.alloc.release(entry.pbn);
                    trimmed += 1;
                }
            }
        }
        if trimmed > 0 {
            self.stats.record_action(CacheAction::Trim, trimmed);
        }
        self.stats.resident_blocks = self.meta.len() as u64;
    }

    fn stats(&self) -> CacheStats {
        let mut s = self.stats.clone();
        s.ssd = Some(self.ssd.stats());
        s.hdd = Some(self.hdd.stats());
        s.resident_blocks = self.meta.len() as u64;
        s
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        self.ssd.reset_stats();
        self.hdd.reset_stats();
    }

    fn resident_blocks(&self) -> u64 {
        self.meta.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::RequestClass;

    fn cache(capacity: u64) -> HybridCache {
        HybridCache::new(PolicyConfig::paper_default(), capacity)
    }

    fn read_req(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        let sequential = matches!(class, RequestClass::Sequential);
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), sequential),
            class,
            policy,
        )
    }

    fn write_req(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::write(BlockRange::new(start, len), false),
            class,
            policy,
        )
    }

    #[test]
    fn sequential_requests_bypass_the_cache() {
        let mut c = cache(1000);
        c.submit(read_req(
            0,
            500,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 500);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 0);
        // All traffic went to the HDD, none to the SSD.
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 500);
    }

    #[test]
    fn random_reads_are_cached_and_hit_on_reuse() {
        let mut c = cache(1000);
        for _ in 0..2 {
            for i in 0..100u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
        }
        let s = c.stats();
        let counters = s.class(RequestClass::Random);
        assert_eq!(counters.accessed_blocks, 200);
        assert_eq!(counters.cache_hits, 100);
        assert_eq!(s.action(CacheAction::ReadAllocation), 100);
        assert_eq!(c.resident_blocks(), 100);
        assert_eq!(s.priority(2).cache_hits, 100);
    }

    #[test]
    fn selective_allocation_refuses_lower_priority_when_full_of_higher() {
        let mut c = cache(10);
        // Fill the cache with priority-2 blocks.
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-4 block (lower priority) must not displace them.
        c.submit(read_req(100, 1, RequestClass::Random, QosPolicy::priority(4)));
        assert_eq!(c.resident_blocks(), 10);
        assert!(c.stats().per_class["random"].accessed_blocks == 11);
        assert_eq!(c.stats().action(CacheAction::Bypassing), 1);
        // Every original block is still cached.
        for i in 0..10u64 {
            assert!(c.meta.contains(BlockAddr(i)));
        }
    }

    #[test]
    fn higher_priority_evicts_lower_priority_when_full() {
        let mut c = cache(10);
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(4)));
        }
        // Priority-2 blocks displace the priority-4 residents.
        for i in 100..105u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        for i in 100..105u64 {
            assert!(c.meta.contains(BlockAddr(i)));
        }
    }

    #[test]
    fn non_caching_eviction_demotes_cached_blocks() {
        let mut c = cache(100);
        c.submit(read_req(0, 10, RequestClass::TemporaryData, QosPolicy::priority(1)));
        assert_eq!(c.resident_blocks(), 10);
        // Re-read with the eviction policy: blocks stay cached but move to
        // the lowest group, so the next allocation displaces them first.
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        let s = c.stats();
        assert_eq!(s.action(CacheAction::ReAllocation), 10);
        // Fill the cache; the demoted blocks are evicted before others.
        for i in 1000..1090u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(3)));
        }
        assert_eq!(c.resident_blocks(), 100);
        for i in 1000..1090u64 {
            assert!(c.meta.contains(BlockAddr(i)));
        }
        // One more allocation evicts a demoted block, not a random one.
        c.submit(read_req(5000, 1, RequestClass::Random, QosPolicy::priority(3)));
        let demoted_still_cached = (0..10u64).filter(|i| c.meta.contains(BlockAddr(*i))).count();
        assert_eq!(demoted_still_cached, 9);
    }

    #[test]
    fn trim_invalidates_cached_blocks_without_device_io() {
        let mut c = cache(100);
        c.submit(read_req(0, 50, RequestClass::TemporaryData, QosPolicy::priority(1)));
        assert_eq!(c.resident_blocks(), 50);
        let hdd_before = c.stats().hdd.unwrap().total_requests();
        c.trim(&TrimCommand::single(BlockRange::new(0u64, 50)));
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.stats().action(CacheAction::Trim), 50);
        assert_eq!(c.stats().hdd.unwrap().total_requests(), hdd_before);
        // Space is reusable.
        c.submit(read_req(200, 60, RequestClass::TemporaryData, QosPolicy::priority(1)));
        assert_eq!(c.resident_blocks(), 60);
    }

    #[test]
    fn write_buffer_flushes_when_threshold_exceeded() {
        let mut c = cache(100); // write buffer limit = 10 blocks
        assert_eq!(c.write_buffer_limit(), 10);
        for i in 0..10u64 {
            c.submit(write_req(i, 1, RequestClass::Update, QosPolicy::WriteBuffer));
        }
        assert_eq!(c.write_buffer_resident(), 10);
        // The 11th buffered write exceeds the limit and triggers a flush.
        c.submit(write_req(10, 1, RequestClass::Update, QosPolicy::WriteBuffer));
        assert_eq!(c.write_buffer_resident(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::WriteBufferFlush), 11);
        assert_eq!(s.action(CacheAction::WriteAllocation), 11);
        assert!(s.hdd.unwrap().blocks_written >= 11);
    }

    #[test]
    fn write_buffer_wins_space_over_other_priorities() {
        let mut c = cache(10);
        // Fill with the *highest* regular priority.
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::TemporaryData, QosPolicy::priority(1)));
        }
        // An update still gets buffered, displacing a priority-1 block.
        c.submit(write_req(100, 1, RequestClass::Update, QosPolicy::WriteBuffer));
        assert!(c.meta.contains(BlockAddr(100)));
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn dirty_eviction_writes_back_to_hdd() {
        let mut c = cache(10);
        for i in 0..10u64 {
            c.submit(write_req(i, 1, RequestClass::TemporaryData, QosPolicy::priority(1)));
        }
        let written_before = c.stats().hdd.unwrap().blocks_written;
        // Force evictions with more priority-1 data.
        for i in 100..105u64 {
            c.submit(write_req(i, 1, RequestClass::TemporaryData, QosPolicy::priority(1)));
        }
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        assert_eq!(s.hdd.unwrap().blocks_written, written_before + 5);
    }

    #[test]
    fn hit_on_cached_block_is_served_from_ssd() {
        let mut c = cache(100);
        c.submit(read_req(42, 1, RequestClass::Random, QosPolicy::priority(2)));
        let ssd_before = c.stats().ssd.unwrap().blocks_read;
        let hdd_before = c.stats().hdd.unwrap().blocks_read;
        c.submit(read_req(42, 1, RequestClass::Random, QosPolicy::priority(2)));
        let s = c.stats();
        assert_eq!(s.ssd.unwrap().blocks_read, ssd_before + 1);
        assert_eq!(s.hdd.unwrap().blocks_read, hdd_before);
    }

    #[test]
    fn sequential_hit_does_not_disturb_layout() {
        let mut c = cache(100);
        c.submit(read_req(0, 2, RequestClass::Random, QosPolicy::priority(3)));
        // Sequential scan over the same blocks: hits, but priorities stay 3.
        c.submit(read_req(
            0,
            2,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.meta.get(BlockAddr(0)).unwrap().priority, CachePriority(3));
        assert_eq!(c.stats().class(RequestClass::Sequential).cache_hits, 2);
        assert_eq!(c.stats().action(CacheAction::ReAllocation), 0);
    }

    #[test]
    fn selective_allocation_displaces_the_lowest_priority_victim() {
        let mut c = cache(10);
        // Mixed residents: five priority-2 blocks, then five priority-5.
        for i in 0..5u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        for i in 10..15u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(5)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-3 block outranks the priority-5 group, so it is
        // admitted and the victim comes from that group — specifically its
        // least recently used block (10), never a priority-2 block.
        c.submit(read_req(100, 1, RequestClass::Random, QosPolicy::priority(3)));
        assert_eq!(c.resident_blocks(), 10);
        assert!(c.meta.contains(BlockAddr(100)), "new block must be admitted");
        assert!(!c.meta.contains(BlockAddr(10)), "LRU of lowest group evicted");
        for i in (0..5u64).chain(11..15) {
            assert!(c.meta.contains(BlockAddr(i)), "block {i} must survive");
        }
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn non_allocatable_priority_bypasses_the_ssd() {
        // Priority >= t (paper: t = N - 1 = 7) is never admitted, even into
        // a completely empty cache.
        let mut c = cache(100);
        c.submit(read_req(0, 20, RequestClass::Random, QosPolicy::priority(7)));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 20);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0, "no SSD traffic at all");
        assert_eq!(s.hdd.unwrap().blocks_read, 20);
    }

    #[test]
    fn non_caching_eviction_misses_bypass_the_ssd() {
        // A TRIM-class access to blocks that are *not* cached must go
        // straight to the HDD without allocating.
        let mut c = cache(100);
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 10);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 10);
    }

    #[test]
    fn resident_blocks_never_exceed_capacity() {
        let mut c = cache(64);
        for i in 0..1000u64 {
            let prio = 2 + (i % 5) as u8;
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(prio)));
            assert!(c.resident_blocks() <= 64);
        }
    }
}
