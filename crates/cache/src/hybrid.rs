//! The hStorage-DB hybrid cache (Section 5): the paper's configuration of
//! the pluggable cache engine.
//!
//! Since the mechanism/policy split, [`HybridCache`] is the
//! [`CacheEngine`] running its default
//! [`SemanticPriorityPolicy`](crate::policy::SemanticPriorityPolicy):
//! an SSD works as a cache for an HDD, and admission and eviction are
//! driven by the caching priority each request carries:
//!
//! * **Selective allocation** — only blocks whose priority is below the
//!   non-caching threshold `t` are considered for caching; when the cache is
//!   full a new block is admitted only if some resident block has an equal
//!   or lower priority (which is then evicted first).
//! * **Selective eviction** — the victim is the least-recently-used block of
//!   the lowest-priority non-empty group.
//!
//! The unit tests in this module are the behavioural specification the
//! refactor was carried out against: they encode the exact statistics and
//! device traffic of the pre-framework implementation and must keep
//! passing unchanged for any change to the engine or the semantic policy.

use crate::engine::CacheEngine;

/// The paper's hybrid SSD-over-HDD storage system managed by caching
/// priorities — the cache engine with the semantic priority policy (its
/// default). All constructors on [`CacheEngine`] apply.
pub type HybridCache = CacheEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheAction;
    use crate::system::StorageSystem;
    use hstorage_storage::{
        BlockAddr, BlockRange, CachePriority, ClassifiedRequest, IoRequest, PolicyConfig,
        QosPolicy, RequestClass, TrimCommand,
    };

    fn cache(capacity: u64) -> HybridCache {
        HybridCache::new(PolicyConfig::paper_default(), capacity)
    }

    fn read_req(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        let sequential = matches!(class, RequestClass::Sequential);
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), sequential),
            class,
            policy,
        )
    }

    fn write_req(
        start: u64,
        len: u64,
        class: RequestClass,
        policy: QosPolicy,
    ) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::write(BlockRange::new(start, len), false),
            class,
            policy,
        )
    }

    #[test]
    fn sequential_requests_bypass_the_cache() {
        let c = cache(1000);
        c.submit(read_req(
            0,
            500,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 500);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 0);
        // All traffic went to the HDD, none to the SSD.
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 500);
    }

    #[test]
    fn random_reads_are_cached_and_hit_on_reuse() {
        let c = cache(1000);
        for _ in 0..2 {
            for i in 0..100u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
        }
        let s = c.stats();
        let counters = s.class(RequestClass::Random);
        assert_eq!(counters.accessed_blocks, 200);
        assert_eq!(counters.cache_hits, 100);
        assert_eq!(s.action(CacheAction::ReadAllocation), 100);
        assert_eq!(c.resident_blocks(), 100);
        assert_eq!(s.priority(2).cache_hits, 100);
    }

    #[test]
    fn selective_allocation_refuses_lower_priority_when_full_of_higher() {
        let c = cache(10);
        // Fill the cache with priority-2 blocks.
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-4 block (lower priority) must not displace them.
        c.submit(read_req(
            100,
            1,
            RequestClass::Random,
            QosPolicy::priority(4),
        ));
        assert_eq!(c.resident_blocks(), 10);
        assert!(c.stats().per_class["random"].accessed_blocks == 11);
        assert_eq!(c.stats().action(CacheAction::Bypassing), 1);
        // Every original block is still cached.
        for i in 0..10u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
    }

    #[test]
    fn higher_priority_evicts_lower_priority_when_full() {
        let c = cache(10);
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(4)));
        }
        // Priority-2 blocks displace the priority-4 residents.
        for i in 100..105u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        for i in 100..105u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
    }

    #[test]
    fn non_caching_eviction_demotes_cached_blocks() {
        let c = cache(100);
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 10);
        // Re-read with the eviction policy: blocks stay cached but move to
        // the lowest group, so the next allocation displaces them first.
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        let s = c.stats();
        assert_eq!(s.action(CacheAction::ReAllocation), 10);
        // Fill the cache; the demoted blocks are evicted before others.
        for i in 1000..1090u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(3)));
        }
        assert_eq!(c.resident_blocks(), 100);
        for i in 1000..1090u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
        // One more allocation evicts a demoted block, not a random one.
        c.submit(read_req(
            5000,
            1,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
        let demoted_still_cached = (0..10u64)
            .filter(|i| c.contains_block(BlockAddr(*i)))
            .count();
        assert_eq!(demoted_still_cached, 9);
    }

    #[test]
    fn trim_invalidates_cached_blocks_without_device_io() {
        let c = cache(100);
        c.submit(read_req(
            0,
            50,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 50);
        let hdd_before = c.stats().hdd.unwrap().total_requests();
        c.trim(&TrimCommand::single(BlockRange::new(0u64, 50)));
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.stats().action(CacheAction::Trim), 50);
        assert_eq!(c.stats().hdd.unwrap().total_requests(), hdd_before);
        // Space is reusable.
        c.submit(read_req(
            200,
            60,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 60);
    }

    #[test]
    fn write_buffer_flushes_when_threshold_exceeded() {
        let c = cache(100); // write buffer limit = 10 blocks
        assert_eq!(c.write_buffer_limit(), 10);
        for i in 0..10u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        assert_eq!(c.write_buffer_resident(), 10);
        // The 11th buffered write exceeds the limit and triggers a flush.
        c.submit(write_req(
            10,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
        assert_eq!(c.write_buffer_resident(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::WriteBufferFlush), 11);
        assert_eq!(s.action(CacheAction::WriteAllocation), 11);
        assert!(s.hdd.unwrap().blocks_written >= 11);
    }

    #[test]
    fn write_buffer_wins_space_over_other_priorities() {
        let c = cache(10);
        // Fill with the *highest* regular priority.
        for i in 0..10u64 {
            c.submit(read_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        // An update still gets buffered, displacing a priority-1 block.
        c.submit(write_req(
            100,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
        assert!(c.contains_block(BlockAddr(100)));
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn dirty_eviction_writes_back_to_hdd() {
        let c = cache(10);
        for i in 0..10u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        let written_before = c.stats().hdd.unwrap().blocks_written;
        // Force evictions with more priority-1 data.
        for i in 100..105u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        assert_eq!(s.hdd.unwrap().blocks_written, written_before + 5);
    }

    #[test]
    fn hit_on_cached_block_is_served_from_ssd() {
        let c = cache(100);
        c.submit(read_req(
            42,
            1,
            RequestClass::Random,
            QosPolicy::priority(2),
        ));
        let ssd_before = c.stats().ssd.unwrap().blocks_read;
        let hdd_before = c.stats().hdd.unwrap().blocks_read;
        c.submit(read_req(
            42,
            1,
            RequestClass::Random,
            QosPolicy::priority(2),
        ));
        let s = c.stats();
        assert_eq!(s.ssd.unwrap().blocks_read, ssd_before + 1);
        assert_eq!(s.hdd.unwrap().blocks_read, hdd_before);
    }

    #[test]
    fn sequential_hit_does_not_disturb_layout() {
        let c = cache(100);
        c.submit(read_req(0, 2, RequestClass::Random, QosPolicy::priority(3)));
        // Sequential scan over the same blocks: hits, but priorities stay 3.
        c.submit(read_req(
            0,
            2,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.cached_priority(BlockAddr(0)), Some(CachePriority(3)));
        assert_eq!(c.stats().class(RequestClass::Sequential).cache_hits, 2);
        assert_eq!(c.stats().action(CacheAction::ReAllocation), 0);
    }

    #[test]
    fn selective_allocation_displaces_the_lowest_priority_victim() {
        let c = cache(10);
        // Mixed residents: five priority-2 blocks, then five priority-5.
        for i in 0..5u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        for i in 10..15u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(5)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-3 block outranks the priority-5 group, so it is
        // admitted and the victim comes from that group — specifically its
        // least recently used block (10), never a priority-2 block.
        c.submit(read_req(
            100,
            1,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
        assert_eq!(c.resident_blocks(), 10);
        assert!(
            c.contains_block(BlockAddr(100)),
            "new block must be admitted"
        );
        assert!(
            !c.contains_block(BlockAddr(10)),
            "LRU of lowest group evicted"
        );
        for i in (0..5u64).chain(11..15) {
            assert!(c.contains_block(BlockAddr(i)), "block {i} must survive");
        }
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn non_allocatable_priority_bypasses_the_ssd() {
        // Priority >= t (paper: t = N - 1 = 7) is never admitted, even into
        // a completely empty cache.
        let c = cache(100);
        c.submit(read_req(
            0,
            20,
            RequestClass::Random,
            QosPolicy::priority(7),
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 20);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0, "no SSD traffic at all");
        assert_eq!(s.hdd.unwrap().blocks_read, 20);
    }

    #[test]
    fn non_caching_eviction_misses_bypass_the_ssd() {
        // A TRIM-class access to blocks that are *not* cached must go
        // straight to the HDD without allocating.
        let c = cache(100);
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 10);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 10);
    }

    #[test]
    fn resident_blocks_never_exceed_capacity() {
        let c = cache(64);
        for i in 0..1000u64 {
            let prio = 2 + (i % 5) as u8;
            c.submit(read_req(
                i,
                1,
                RequestClass::Random,
                QosPolicy::priority(prio),
            ));
            assert!(c.resident_blocks() <= 64);
        }
    }

    #[test]
    fn sharded_cache_respects_per_shard_capacity_split() {
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 10, 4);
        assert_eq!(c.shard_count(), 4);
        // Capacity 10 over 4 shards: 3 + 3 + 2 + 2 slots.
        for i in 0..100u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
    }

    #[test]
    fn concurrent_multi_block_submits_do_not_deadlock_across_shards() {
        // Regression canary: multi-block requests walk the shards in
        // ascending (cyclic) order, so holding one shard's lock while
        // acquiring the next deadlocks once every shard has a waiter.
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..200u64 {
                        c.submit(read_req(
                            t + i * 16,
                            16,
                            RequestClass::Random,
                            QosPolicy::priority(2),
                        ));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 8 * 200 * 16);
    }

    #[test]
    fn submit_batch_matches_sequential_submits_exactly_at_queue_depth_one() {
        let batched = cache(1_000);
        let sequential = cache(1_000);
        let reqs: Vec<ClassifiedRequest> = (0..100u64)
            .map(|i| {
                read_req(
                    i % 60,
                    2,
                    RequestClass::Random,
                    QosPolicy::priority(2 + (i % 5) as u8),
                )
            })
            .collect();
        for req in &reqs {
            sequential.submit(*req);
        }
        batched.submit_batch(reqs);
        // Queue depth 1: identical cache state *and* identical device
        // timing/traffic.
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.now(), sequential.now());
    }

    #[test]
    fn submit_batch_merges_adjacent_device_transfers() {
        // 64 adjacent sequential single-block reads bypass the cache
        // (NonCachingNonEviction misses) and reach the HDD. With queue
        // depth 8 the batched path issues 8 merged transfers instead of 64.
        let merged = HybridCache::with_shard_count_and_queue_depth(
            PolicyConfig::paper_default(),
            1_000,
            1,
            8,
        );
        let unmerged = cache(1_000);
        let reqs: Vec<ClassifiedRequest> = (0..64u64)
            .map(|i| {
                read_req(
                    i,
                    1,
                    RequestClass::Sequential,
                    QosPolicy::NonCachingNonEviction,
                )
            })
            .collect();
        merged.submit_batch(reqs.clone());
        for req in reqs {
            unmerged.submit(req);
        }
        let sm = merged.stats();
        let su = unmerged.stats();
        assert_eq!(sm.hdd.as_ref().unwrap().blocks_read, 64);
        assert_eq!(sm.hdd.as_ref().unwrap().read_requests, 8);
        assert_eq!(su.hdd.as_ref().unwrap().read_requests, 64);
        // Same logical traffic, strictly less simulated device time.
        assert!(merged.now() < unmerged.now());
        // Cache-level statistics are unaffected by the merge.
        assert_eq!(sm.per_class, su.per_class);
        assert_eq!(sm.actions, su.actions);
    }

    #[test]
    fn submit_batch_splits_runs_at_write_buffer_requests() {
        // Capacity 100 → write-buffer limit 10. A batch holding 11 buffered
        // updates must flush exactly as sequential submits do.
        let batched = cache(100);
        let sequential = cache(100);
        let mut reqs: Vec<ClassifiedRequest> = Vec::new();
        for i in 0..5u64 {
            reqs.push(read_req(
                500 + i,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        for i in 0..11u64 {
            reqs.push(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        for i in 0..5u64 {
            reqs.push(read_req(
                600 + i,
                1,
                RequestClass::Random,
                QosPolicy::priority(3),
            ));
        }
        for req in &reqs {
            sequential.submit(*req);
        }
        batched.submit_batch(reqs);
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.write_buffer_resident(), 0);
        assert_eq!(batched.stats().action(CacheAction::WriteBufferFlush), 11);
    }

    #[test]
    fn concurrent_submits_from_many_threads_are_fully_accounted() {
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500u64 {
                        c.submit(read_req(
                            t * 10_000 + i,
                            1,
                            RequestClass::Random,
                            QosPolicy::priority(2),
                        ));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 2_000);
        // Disjoint addresses, ample capacity: every block was allocated.
        assert_eq!(s.action(CacheAction::ReadAllocation), 2_000);
        assert_eq!(c.resident_blocks(), 2_000);
    }
}
