//! The hStorage-DB hybrid cache (Section 5).
//!
//! An SSD works as a cache for an HDD. Admission and eviction are driven by
//! the caching priority each request carries:
//!
//! * **Selective allocation** — only blocks whose priority is below the
//!   non-caching threshold `t` are considered for caching; when the cache is
//!   full a new block is admitted only if some resident block has an equal
//!   or lower priority (which is then evicted first).
//! * **Selective eviction** — the victim is the least-recently-used block of
//!   the lowest-priority non-empty group.
//!
//! The six actions of Section 5.1 (cache hit, read allocation, write
//! allocation, bypassing, re-allocation, eviction) are all implemented and
//! counted, as are TRIM-driven invalidations and write-buffer flushes.
//!
//! # Concurrency
//!
//! The cache is a shared service: [`StorageSystem::submit`] takes `&self`,
//! so one instance can serve many threads. Internally the block metadata,
//! per-priority LRU groups, slot allocator, write buffer and statistics are
//! partitioned into `N` *shards* keyed by logical block address
//! (`lbn % N`), each behind its own mutex — submits that touch different
//! shards proceed in parallel, and statistics are striped per shard and
//! aggregated on read. Each shard manages an equal slice of the cache
//! capacity, so selective allocation and eviction are decided shard-locally.
//! With a single shard (the default, used by the paper-figure experiments)
//! the behaviour is block-for-block identical to the original exclusive
//! implementation; [`HybridCache::with_shard_count`] enables real
//! parallelism for the threaded drivers and benches.

use crate::allocator::SlotAllocator;
use crate::metadata::{BlockState, CacheEntry, CacheMetadata};
use crate::priority_group::PriorityGroups;
use crate::stats::{CacheAction, CacheStats};
use crate::system::StorageSystem;
use hstorage_storage::{
    BlockAddr, BlockRange, CachePriority, ClassifiedRequest, Direction, HddDevice, HddParameters,
    IoRequest, PolicyConfig, QosPolicy, SimClock, SsdDevice, SsdParameters, StorageDevice,
    TrimCommand,
};
use parking_lot::Mutex;
use std::time::Duration;

/// Per-request batch of device traffic, flushed as one I/O per device and
/// direction so multi-block requests pay one command overhead, like the real
/// system.
#[derive(Debug, Default, Clone, Copy)]
struct DeviceBatch {
    ssd_read: u64,
    ssd_write: u64,
    hdd_read: u64,
    hdd_write: u64,
}

/// One lock-striped partition of the cache: the metadata, LRU groups,
/// allocator, write-buffer occupancy and statistics for the blocks whose
/// address hashes to this shard.
struct Shard {
    meta: CacheMetadata,
    groups: PriorityGroups,
    alloc: SlotAllocator,
    /// Maximum blocks this shard's slice of the write buffer may hold.
    write_buffer_limit: u64,
    /// Blocks currently resident in the write-buffer group (group 0).
    write_buffer_resident: u64,
    stats: CacheStats,
}

impl Shard {
    fn new(policy: &PolicyConfig, capacity: u64) -> Self {
        Shard {
            meta: CacheMetadata::new(),
            groups: PriorityGroups::new(policy.total_priorities),
            alloc: SlotAllocator::new(capacity),
            write_buffer_limit: (capacity as f64 * policy.write_buffer_fraction).floor() as u64,
            write_buffer_resident: 0,
            stats: CacheStats::new(),
        }
    }

    /// Evicts the selective-eviction victim, writing it back if dirty.
    /// Returns `false` if the shard was empty.
    fn evict_one(&mut self, batch: &mut DeviceBatch) -> bool {
        let Some((victim, prio)) = self.groups.pop_victim() else {
            return false;
        };
        let entry = self
            .meta
            .remove(victim)
            .expect("victim present in groups but not in metadata");
        debug_assert_eq!(entry.priority, prio);
        if entry.is_dirty() {
            batch.hdd_write += 1;
        }
        if prio == CachePriority(0) {
            self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
        }
        self.alloc.release(entry.pbn);
        self.stats.record_action(CacheAction::Eviction, 1);
        true
    }

    /// Tries to obtain a free cache slot for a block of priority `prio`,
    /// applying the selective-allocation rule. Returns the physical slot or
    /// `None` if the block must bypass the cache.
    fn try_allocate(&mut self, prio: CachePriority, batch: &mut DeviceBatch) -> Option<u64> {
        if let Some(pbn) = self.alloc.allocate() {
            return Some(pbn);
        }
        // Shard full: admit only if some resident block has an equal or
        // lower priority (a numerically >= priority value).
        let victim_prio = self.groups.lowest_occupied_priority()?;
        if victim_prio.0 >= prio.0 {
            self.evict_one(batch);
            self.alloc.allocate()
        } else {
            None
        }
    }

    /// Handles one block of a request; returns `true` on a cache hit.
    fn handle_block(
        &mut self,
        config: &PolicyConfig,
        lbn: BlockAddr,
        direction: Direction,
        policy: QosPolicy,
        prio: CachePriority,
        batch: &mut DeviceBatch,
    ) -> bool {
        if let Some(entry) = self.meta.get(lbn).copied() {
            // --- Cache hit ---
            self.stats.record_action(CacheAction::CacheHit, 1);
            match policy {
                QosPolicy::NonCachingNonEviction => {
                    // Does not affect the existing layout: no touch, no move.
                }
                QosPolicy::NonCachingEviction => {
                    let target = config.non_caching_eviction();
                    if entry.priority != target {
                        self.reallocate(lbn, entry.priority, target);
                    }
                }
                QosPolicy::Priority(_) | QosPolicy::WriteBuffer => {
                    if entry.priority != prio {
                        self.reallocate(lbn, entry.priority, prio);
                    } else {
                        self.groups.touch(lbn, prio);
                    }
                }
            }
            match direction {
                Direction::Read => batch.ssd_read += 1,
                Direction::Write => {
                    batch.ssd_write += 1;
                    if let Some(e) = self.meta.get_mut(lbn) {
                        e.state = BlockState::Dirty;
                    }
                }
            }
            return true;
        }

        // --- Cache miss ---
        let admissible = policy.admits() && config.admissible(prio);
        if !admissible {
            // Bypassing: straight to the second-level device.
            self.stats.record_action(CacheAction::Bypassing, 1);
            match direction {
                Direction::Read => batch.hdd_read += 1,
                Direction::Write => batch.hdd_write += 1,
            }
            return false;
        }

        match self.try_allocate(prio, batch) {
            Some(pbn) => {
                let state = match direction {
                    Direction::Read => {
                        // Read allocation: fetch from HDD, place in SSD.
                        self.stats.record_action(CacheAction::ReadAllocation, 1);
                        batch.hdd_read += 1;
                        batch.ssd_write += 1;
                        BlockState::Clean
                    }
                    Direction::Write => {
                        // Write allocation: place in SSD, mark dirty.
                        self.stats.record_action(CacheAction::WriteAllocation, 1);
                        batch.ssd_write += 1;
                        BlockState::Dirty
                    }
                };
                self.meta.insert(
                    lbn,
                    CacheEntry {
                        pbn,
                        priority: prio,
                        state,
                    },
                );
                self.groups.insert(lbn, prio);
                if prio == CachePriority(0) {
                    self.write_buffer_resident += 1;
                }
            }
            None => {
                // Not cache-worthy relative to current residents: bypass.
                self.stats.record_action(CacheAction::Bypassing, 1);
                match direction {
                    Direction::Read => batch.hdd_read += 1,
                    Direction::Write => batch.hdd_write += 1,
                }
            }
        }
        false
    }

    fn reallocate(&mut self, lbn: BlockAddr, old: CachePriority, new: CachePriority) {
        self.groups.reallocate(lbn, old, new);
        if let Some(e) = self.meta.get_mut(lbn) {
            e.priority = new;
        }
        if old == CachePriority(0) && new != CachePriority(0) {
            self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
        } else if new == CachePriority(0) && old != CachePriority(0) {
            self.write_buffer_resident += 1;
        }
        self.stats.record_action(CacheAction::ReAllocation, 1);
    }

    /// Drains the shard's write buffer if its occupancy exceeds the limit:
    /// buffered blocks are dropped from the cache and the number of *dirty*
    /// blocks (which must be written to the HDD by the caller, outside the
    /// shard lock) is returned.
    fn drain_write_buffer_if_full(&mut self) -> Option<u64> {
        if self.write_buffer_limit == 0 || self.write_buffer_resident <= self.write_buffer_limit {
            return None;
        }
        let buffered: Vec<BlockAddr> = self.groups.iter_group(CachePriority(0)).copied().collect();
        let mut dirty_blocks = 0u64;
        for lbn in buffered {
            if let Some(entry) = self.meta.remove(lbn) {
                if entry.is_dirty() {
                    dirty_blocks += 1;
                }
                self.groups.remove(lbn, CachePriority(0));
                self.alloc.release(entry.pbn);
            }
        }
        self.write_buffer_resident = 0;
        self.stats
            .record_action(CacheAction::WriteBufferFlush, dirty_blocks);
        Some(dirty_blocks)
    }
}

/// The hybrid SSD-over-HDD storage system managed by caching priorities.
pub struct HybridCache {
    policy: PolicyConfig,
    cache_capacity: u64,
    clock: SimClock,
    ssd: SsdDevice,
    hdd: HddDevice,
    shards: Vec<Mutex<Shard>>,
}

impl HybridCache {
    /// Creates a single-shard hybrid cache with `cache_capacity_blocks` of
    /// SSD cache in front of the HDD, using the paper's device models. One
    /// shard reproduces the paper's global selective allocation/eviction
    /// exactly; use [`Self::with_shard_count`] for concurrent workloads.
    pub fn new(policy: PolicyConfig, cache_capacity_blocks: u64) -> Self {
        Self::with_shard_count(policy, cache_capacity_blocks, 1)
    }

    /// Creates a hybrid cache whose state is striped over `shards` locks
    /// (each managing an equal slice of the capacity) so concurrent submits
    /// to different shards do not serialize.
    pub fn with_shard_count(
        policy: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
    ) -> Self {
        Self::with_shard_count_and_queue_depth(policy, cache_capacity_blocks, shards, 1)
    }

    /// Creates a sharded hybrid cache whose devices merge up to
    /// `queue_depth` adjacent queued requests into one physical transfer on
    /// the batched submission path ([`StorageSystem::submit_batch`]).
    /// `queue_depth = 1` (the [`Self::with_shard_count`] default) disables
    /// merging and is timing-identical to per-request submission.
    pub fn with_shard_count_and_queue_depth(
        policy: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
        queue_depth: usize,
    ) -> Self {
        let clock = SimClock::new();
        Self::with_devices_sharded(
            policy,
            cache_capacity_blocks,
            shards,
            SsdDevice::new(
                SsdParameters::intel_320().with_queue_depth(queue_depth),
                clock.clone(),
            ),
            HddDevice::new(
                HddParameters::cheetah_15k7().with_queue_depth(queue_depth),
                clock.clone(),
            ),
            clock,
        )
    }

    /// Creates a single-shard hybrid cache over explicitly constructed
    /// devices. The devices must share `clock`.
    pub fn with_devices(
        policy: PolicyConfig,
        cache_capacity_blocks: u64,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        Self::with_devices_sharded(policy, cache_capacity_blocks, 1, ssd, hdd, clock)
    }

    /// Creates a sharded hybrid cache over explicitly constructed devices.
    /// The devices must share `clock`. Shard `i` manages the blocks with
    /// `lbn % shards == i` and `capacity / shards` slots (the remainder is
    /// spread over the first shards).
    pub fn with_devices_sharded(
        policy: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        policy.validate().expect("invalid policy configuration");
        assert!(shards > 0, "shard count must be positive");
        let n = shards as u64;
        let shards = (0..n)
            .map(|i| {
                let capacity = cache_capacity_blocks / n + u64::from(i < cache_capacity_blocks % n);
                Mutex::new(Shard::new(&policy, capacity))
            })
            .collect();
        HybridCache {
            policy,
            cache_capacity: cache_capacity_blocks,
            clock,
            ssd,
            hdd,
            shards,
        }
    }

    /// The policy configuration in force.
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// Cache capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.cache_capacity
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of blocks the write buffer may hold before a flush
    /// (summed over all shards).
    pub fn write_buffer_limit(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().write_buffer_limit)
            .sum()
    }

    /// Number of blocks currently held in the write buffer.
    pub fn write_buffer_resident(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().write_buffer_resident)
            .sum()
    }

    /// Whether `lbn` is currently resident in the cache.
    pub fn contains_block(&self, lbn: BlockAddr) -> bool {
        self.shard(lbn).lock().meta.contains(lbn)
    }

    /// The priority group `lbn` currently lives in, if resident.
    pub fn cached_priority(&self, lbn: BlockAddr) -> Option<CachePriority> {
        self.shard(lbn).lock().meta.get(lbn).map(|e| e.priority)
    }

    fn shard_index(&self, lbn: BlockAddr) -> usize {
        (lbn.0 % self.shards.len() as u64) as usize
    }

    fn shard(&self, lbn: BlockAddr) -> &Mutex<Shard> {
        &self.shards[self.shard_index(lbn)]
    }

    /// Issues the accumulated device traffic for one request.
    fn flush_batch(&self, req: &ClassifiedRequest, batch: DeviceBatch) {
        let seq = req.io.sequential;
        let start = req.io.range.start;
        if batch.hdd_read > 0 {
            self.hdd.serve(&IoRequest::read(
                BlockRange::new(start, batch.hdd_read),
                seq,
            ));
        }
        if batch.hdd_write > 0 {
            self.hdd.serve(&IoRequest::write(
                BlockRange::new(start, batch.hdd_write),
                seq,
            ));
        }
        if batch.ssd_read > 0 {
            self.ssd.serve(&IoRequest::read(
                BlockRange::new(start, batch.ssd_read),
                seq,
            ));
        }
        if batch.ssd_write > 0 {
            self.ssd.serve(&IoRequest::write(
                BlockRange::new(start, batch.ssd_write),
                seq,
            ));
        }
    }

    /// Serves a run of non-write-buffer requests as one vectored submission:
    /// block-level work is grouped by shard so each shard lock is taken once
    /// for the whole run, and the accumulated device traffic is issued as
    /// one queue per device so adjacent transfers merge up to the device
    /// queue depth.
    ///
    /// Per-shard block order equals request order, so the cache state and
    /// cache-level statistics after a run are identical to submitting each
    /// request individually. Callers must ensure no request in the run
    /// resolves to priority 0: write-buffer traffic needs the per-request
    /// flush check of [`StorageSystem::submit`].
    fn submit_run(&self, reqs: &[ClassifiedRequest]) {
        match reqs {
            [] => return,
            [one] => return self.submit(*one),
            _ => {}
        }
        let prios: Vec<CachePriority> =
            reqs.iter().map(|r| self.policy.resolve(r.policy)).collect();
        let mut hits = vec![0u64; reqs.len()];
        let mut batches = vec![DeviceBatch::default(); reqs.len()];

        if self.shards.len() == 1 {
            // The whole run — block work and request counters — under a
            // single lock acquisition.
            let mut shard = self.shards[0].lock();
            for (i, req) in reqs.iter().enumerate() {
                for lbn in req.io.range.iter() {
                    if shard.handle_block(
                        &self.policy,
                        lbn,
                        req.io.direction,
                        req.policy,
                        prios[i],
                        &mut batches[i],
                    ) {
                        hits[i] += 1;
                    }
                }
            }
            for (i, req) in reqs.iter().enumerate() {
                shard.stats.record_class(req.class, req.blocks(), hits[i]);
                shard
                    .stats
                    .record_priority(prios[i].0, req.blocks(), hits[i]);
            }
        } else {
            // Group block work by shard, preserving request order within
            // each shard, and visit every touched shard exactly once.
            let mut per_shard: Vec<Vec<(u32, BlockAddr)>> = vec![Vec::new(); self.shards.len()];
            for (i, req) in reqs.iter().enumerate() {
                for lbn in req.io.range.iter() {
                    per_shard[self.shard_index(lbn)].push((i as u32, lbn));
                }
            }
            for (idx, blocks) in per_shard.iter().enumerate() {
                if blocks.is_empty() {
                    continue;
                }
                let mut shard = self.shards[idx].lock();
                for &(i, lbn) in blocks {
                    let i = i as usize;
                    if shard.handle_block(
                        &self.policy,
                        lbn,
                        reqs[i].io.direction,
                        reqs[i].policy,
                        prios[i],
                        &mut batches[i],
                    ) {
                        hits[i] += 1;
                    }
                }
            }
            // Request-level counters are striped to the run's first shard;
            // the aggregate view sums all stripes, so placement is free.
            let mut shard = self.shard(reqs[0].io.range.start).lock();
            for (i, req) in reqs.iter().enumerate() {
                shard.stats.record_class(req.class, req.blocks(), hits[i]);
                shard
                    .stats
                    .record_priority(prios[i].0, req.blocks(), hits[i]);
            }
        }

        // Issue the device traffic as one queue per device, in request
        // order (the order `submit` would have served it in), letting the
        // device merge adjacent same-direction transfers.
        let mut hdd_q = Vec::new();
        let mut ssd_q = Vec::new();
        for (req, b) in reqs.iter().zip(&batches) {
            let seq = req.io.sequential;
            let start = req.io.range.start;
            if b.hdd_read > 0 {
                hdd_q.push(IoRequest::read(BlockRange::new(start, b.hdd_read), seq));
            }
            if b.hdd_write > 0 {
                hdd_q.push(IoRequest::write(BlockRange::new(start, b.hdd_write), seq));
            }
            if b.ssd_read > 0 {
                ssd_q.push(IoRequest::read(BlockRange::new(start, b.ssd_read), seq));
            }
            if b.ssd_write > 0 {
                ssd_q.push(IoRequest::write(BlockRange::new(start, b.ssd_write), seq));
            }
        }
        if !hdd_q.is_empty() {
            self.hdd.serve_batch(&hdd_q);
        }
        if !ssd_q.is_empty() {
            self.ssd.serve_batch(&ssd_q);
        }
        // No write-buffer flush check: the run contains no priority-0
        // requests, and only priority-0 traffic can grow the buffer.
    }

    /// Flushes every shard's write buffer that exceeds its threshold `b`:
    /// dirty buffered blocks are written to the HDD and the buffer space is
    /// returned to the cache.
    fn maybe_flush_write_buffers(&self) {
        for shard in &self.shards {
            let drained = shard.lock().drain_write_buffer_if_full();
            if let Some(dirty_blocks) = drained {
                if dirty_blocks > 0 {
                    // The flush is a large, mostly sequential transfer.
                    self.hdd
                        .serve(&IoRequest::write(BlockRange::new(0u64, dirty_blocks), true));
                }
            }
        }
    }
}

impl StorageSystem for HybridCache {
    fn name(&self) -> &str {
        "hStorage-DB"
    }

    fn submit(&self, req: ClassifiedRequest) {
        let prio = self.policy.resolve(req.policy);
        let mut batch = DeviceBatch::default();
        let mut hits = 0u64;
        // Hold one shard lock at a time, re-acquiring only when the next
        // block hashes to a different shard: with one shard the whole
        // request — including the request-level counters below — is handled
        // under a single lock acquisition, exactly like the unsharded
        // implementation.
        let mut guard = None;
        let mut guard_idx = usize::MAX;
        for lbn in req.io.range.iter() {
            let idx = self.shard_index(lbn);
            if guard_idx != idx {
                // Release the old shard before acquiring the next one:
                // assigning directly would briefly hold both locks, and
                // ascending block addresses make the transition order
                // cyclic (N-1 → 0), which can deadlock N concurrent
                // multi-block submits.
                drop(guard.take());
                guard = Some(self.shards[idx].lock());
                guard_idx = idx;
            }
            let shard = guard.as_mut().expect("shard guard just acquired");
            if shard.handle_block(
                &self.policy,
                lbn,
                req.io.direction,
                req.policy,
                prio,
                &mut batch,
            ) {
                hits += 1;
            }
        }
        // Request-level counters are striped to the last touched shard (the
        // only shard, when unsharded); the aggregate view sums all stripes.
        let mut shard = guard.unwrap_or_else(|| self.shard(req.io.range.start).lock());
        shard.stats.record_class(req.class, req.blocks(), hits);
        shard.stats.record_priority(prio.0, req.blocks(), hits);
        drop(shard);
        self.flush_batch(&req, batch);
        // Only priority-0 (write-buffer) traffic can grow the buffer, so
        // the flush check is needed — and its cost paid — only then.
        if prio == CachePriority(0) {
            self.maybe_flush_write_buffers();
        }
    }

    fn submit_batch(&self, reqs: Vec<ClassifiedRequest>) {
        if reqs.len() <= 1 {
            if let Some(req) = reqs.into_iter().next() {
                self.submit(req);
            }
            return;
        }
        // Write-buffer requests keep the per-request flush semantics of
        // `submit`, so the batch is served as maximal runs of non-buffered
        // requests with buffered requests submitted individually between
        // them. On the hot path (scan batches) the whole batch is one run.
        let mut run: Vec<ClassifiedRequest> = Vec::with_capacity(reqs.len());
        for req in reqs {
            if self.policy.resolve(req.policy) == CachePriority(0) {
                self.submit_run(&run);
                run.clear();
                self.submit(req);
            } else {
                run.push(req);
            }
        }
        self.submit_run(&run);
    }

    fn trim(&self, cmd: &TrimCommand) {
        for range in &cmd.ranges {
            let mut blocks_iter = range.iter().peekable();
            while let Some(lbn) = blocks_iter.next() {
                let idx = self.shard_index(lbn);
                let mut shard = self.shards[idx].lock();
                let mut trimmed = shard.trim_block(lbn);
                while let Some(&next) = blocks_iter.peek() {
                    if self.shard_index(next) != idx {
                        break;
                    }
                    blocks_iter.next();
                    trimmed += shard.trim_block(next);
                }
                if trimmed > 0 {
                    shard.stats.record_action(CacheAction::Trim, trimmed);
                }
            }
        }
    }

    fn stats(&self) -> CacheStats {
        let mut aggregate = CacheStats::new();
        let mut resident = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            aggregate.merge(&shard.stats);
            resident += shard.meta.len() as u64;
        }
        aggregate.resident_blocks = resident;
        aggregate.ssd = Some(self.ssd.stats());
        aggregate.hdd = Some(self.hdd.stats());
        aggregate
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().stats = CacheStats::new();
        }
        self.ssd.reset_stats();
        self.hdd.reset_stats();
    }

    fn resident_blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().meta.len() as u64).sum()
    }
}

impl Shard {
    /// Invalidates one block if resident; returns 1 if it was trimmed.
    fn trim_block(&mut self, lbn: BlockAddr) -> u64 {
        let Some(entry) = self.meta.remove(lbn) else {
            return 0;
        };
        self.groups.remove(lbn, entry.priority);
        if entry.priority == CachePriority(0) {
            self.write_buffer_resident = self.write_buffer_resident.saturating_sub(1);
        }
        self.alloc.release(entry.pbn);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::RequestClass;

    fn cache(capacity: u64) -> HybridCache {
        HybridCache::new(PolicyConfig::paper_default(), capacity)
    }

    fn read_req(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        let sequential = matches!(class, RequestClass::Sequential);
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), sequential),
            class,
            policy,
        )
    }

    fn write_req(
        start: u64,
        len: u64,
        class: RequestClass,
        policy: QosPolicy,
    ) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::write(BlockRange::new(start, len), false),
            class,
            policy,
        )
    }

    #[test]
    fn sequential_requests_bypass_the_cache() {
        let c = cache(1000);
        c.submit(read_req(
            0,
            500,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 500);
        assert_eq!(s.class(RequestClass::Sequential).cache_hits, 0);
        // All traffic went to the HDD, none to the SSD.
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 500);
    }

    #[test]
    fn random_reads_are_cached_and_hit_on_reuse() {
        let c = cache(1000);
        for _ in 0..2 {
            for i in 0..100u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
        }
        let s = c.stats();
        let counters = s.class(RequestClass::Random);
        assert_eq!(counters.accessed_blocks, 200);
        assert_eq!(counters.cache_hits, 100);
        assert_eq!(s.action(CacheAction::ReadAllocation), 100);
        assert_eq!(c.resident_blocks(), 100);
        assert_eq!(s.priority(2).cache_hits, 100);
    }

    #[test]
    fn selective_allocation_refuses_lower_priority_when_full_of_higher() {
        let c = cache(10);
        // Fill the cache with priority-2 blocks.
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-4 block (lower priority) must not displace them.
        c.submit(read_req(
            100,
            1,
            RequestClass::Random,
            QosPolicy::priority(4),
        ));
        assert_eq!(c.resident_blocks(), 10);
        assert!(c.stats().per_class["random"].accessed_blocks == 11);
        assert_eq!(c.stats().action(CacheAction::Bypassing), 1);
        // Every original block is still cached.
        for i in 0..10u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
    }

    #[test]
    fn higher_priority_evicts_lower_priority_when_full() {
        let c = cache(10);
        for i in 0..10u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(4)));
        }
        // Priority-2 blocks displace the priority-4 residents.
        for i in 100..105u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        for i in 100..105u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
    }

    #[test]
    fn non_caching_eviction_demotes_cached_blocks() {
        let c = cache(100);
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 10);
        // Re-read with the eviction policy: blocks stay cached but move to
        // the lowest group, so the next allocation displaces them first.
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        let s = c.stats();
        assert_eq!(s.action(CacheAction::ReAllocation), 10);
        // Fill the cache; the demoted blocks are evicted before others.
        for i in 1000..1090u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(3)));
        }
        assert_eq!(c.resident_blocks(), 100);
        for i in 1000..1090u64 {
            assert!(c.contains_block(BlockAddr(i)));
        }
        // One more allocation evicts a demoted block, not a random one.
        c.submit(read_req(
            5000,
            1,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
        let demoted_still_cached = (0..10u64)
            .filter(|i| c.contains_block(BlockAddr(*i)))
            .count();
        assert_eq!(demoted_still_cached, 9);
    }

    #[test]
    fn trim_invalidates_cached_blocks_without_device_io() {
        let c = cache(100);
        c.submit(read_req(
            0,
            50,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 50);
        let hdd_before = c.stats().hdd.unwrap().total_requests();
        c.trim(&TrimCommand::single(BlockRange::new(0u64, 50)));
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.stats().action(CacheAction::Trim), 50);
        assert_eq!(c.stats().hdd.unwrap().total_requests(), hdd_before);
        // Space is reusable.
        c.submit(read_req(
            200,
            60,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 60);
    }

    #[test]
    fn write_buffer_flushes_when_threshold_exceeded() {
        let c = cache(100); // write buffer limit = 10 blocks
        assert_eq!(c.write_buffer_limit(), 10);
        for i in 0..10u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        assert_eq!(c.write_buffer_resident(), 10);
        // The 11th buffered write exceeds the limit and triggers a flush.
        c.submit(write_req(
            10,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
        assert_eq!(c.write_buffer_resident(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::WriteBufferFlush), 11);
        assert_eq!(s.action(CacheAction::WriteAllocation), 11);
        assert!(s.hdd.unwrap().blocks_written >= 11);
    }

    #[test]
    fn write_buffer_wins_space_over_other_priorities() {
        let c = cache(10);
        // Fill with the *highest* regular priority.
        for i in 0..10u64 {
            c.submit(read_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        // An update still gets buffered, displacing a priority-1 block.
        c.submit(write_req(
            100,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
        assert!(c.contains_block(BlockAddr(100)));
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn dirty_eviction_writes_back_to_hdd() {
        let c = cache(10);
        for i in 0..10u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        let written_before = c.stats().hdd.unwrap().blocks_written;
        // Force evictions with more priority-1 data.
        for i in 100..105u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
        }
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Eviction), 5);
        assert_eq!(s.hdd.unwrap().blocks_written, written_before + 5);
    }

    #[test]
    fn hit_on_cached_block_is_served_from_ssd() {
        let c = cache(100);
        c.submit(read_req(
            42,
            1,
            RequestClass::Random,
            QosPolicy::priority(2),
        ));
        let ssd_before = c.stats().ssd.unwrap().blocks_read;
        let hdd_before = c.stats().hdd.unwrap().blocks_read;
        c.submit(read_req(
            42,
            1,
            RequestClass::Random,
            QosPolicy::priority(2),
        ));
        let s = c.stats();
        assert_eq!(s.ssd.unwrap().blocks_read, ssd_before + 1);
        assert_eq!(s.hdd.unwrap().blocks_read, hdd_before);
    }

    #[test]
    fn sequential_hit_does_not_disturb_layout() {
        let c = cache(100);
        c.submit(read_req(0, 2, RequestClass::Random, QosPolicy::priority(3)));
        // Sequential scan over the same blocks: hits, but priorities stay 3.
        c.submit(read_req(
            0,
            2,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.cached_priority(BlockAddr(0)), Some(CachePriority(3)));
        assert_eq!(c.stats().class(RequestClass::Sequential).cache_hits, 2);
        assert_eq!(c.stats().action(CacheAction::ReAllocation), 0);
    }

    #[test]
    fn selective_allocation_displaces_the_lowest_priority_victim() {
        let c = cache(10);
        // Mixed residents: five priority-2 blocks, then five priority-5.
        for i in 0..5u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        for i in 10..15u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(5)));
        }
        assert_eq!(c.resident_blocks(), 10);
        // A priority-3 block outranks the priority-5 group, so it is
        // admitted and the victim comes from that group — specifically its
        // least recently used block (10), never a priority-2 block.
        c.submit(read_req(
            100,
            1,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
        assert_eq!(c.resident_blocks(), 10);
        assert!(
            c.contains_block(BlockAddr(100)),
            "new block must be admitted"
        );
        assert!(
            !c.contains_block(BlockAddr(10)),
            "LRU of lowest group evicted"
        );
        for i in (0..5u64).chain(11..15) {
            assert!(c.contains_block(BlockAddr(i)), "block {i} must survive");
        }
        assert_eq!(c.stats().action(CacheAction::Eviction), 1);
    }

    #[test]
    fn non_allocatable_priority_bypasses_the_ssd() {
        // Priority >= t (paper: t = N - 1 = 7) is never admitted, even into
        // a completely empty cache.
        let c = cache(100);
        c.submit(read_req(
            0,
            20,
            RequestClass::Random,
            QosPolicy::priority(7),
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 20);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0, "no SSD traffic at all");
        assert_eq!(s.hdd.unwrap().blocks_read, 20);
    }

    #[test]
    fn non_caching_eviction_misses_bypass_the_ssd() {
        // A TRIM-class access to blocks that are *not* cached must go
        // straight to the HDD without allocating.
        let c = cache(100);
        c.submit(read_req(
            0,
            10,
            RequestClass::TemporaryDataTrim,
            QosPolicy::NonCachingEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        let s = c.stats();
        assert_eq!(s.action(CacheAction::Bypassing), 10);
        assert_eq!(s.ssd.unwrap().total_blocks(), 0);
        assert_eq!(s.hdd.unwrap().blocks_read, 10);
    }

    #[test]
    fn resident_blocks_never_exceed_capacity() {
        let c = cache(64);
        for i in 0..1000u64 {
            let prio = 2 + (i % 5) as u8;
            c.submit(read_req(
                i,
                1,
                RequestClass::Random,
                QosPolicy::priority(prio),
            ));
            assert!(c.resident_blocks() <= 64);
        }
    }

    #[test]
    fn sharded_cache_respects_per_shard_capacity_split() {
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 10, 4);
        assert_eq!(c.shard_count(), 4);
        // Capacity 10 over 4 shards: 3 + 3 + 2 + 2 slots.
        for i in 0..100u64 {
            c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.resident_blocks(), 10);
    }

    #[test]
    fn concurrent_multi_block_submits_do_not_deadlock_across_shards() {
        // Regression canary: multi-block requests walk the shards in
        // ascending (cyclic) order, so holding one shard's lock while
        // acquiring the next deadlocks once every shard has a waiter.
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..200u64 {
                        c.submit(read_req(
                            t + i * 16,
                            16,
                            RequestClass::Random,
                            QosPolicy::priority(2),
                        ));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 8 * 200 * 16);
    }

    #[test]
    fn submit_batch_matches_sequential_submits_exactly_at_queue_depth_one() {
        let batched = cache(1_000);
        let sequential = cache(1_000);
        let reqs: Vec<ClassifiedRequest> = (0..100u64)
            .map(|i| {
                read_req(
                    i % 60,
                    2,
                    RequestClass::Random,
                    QosPolicy::priority(2 + (i % 5) as u8),
                )
            })
            .collect();
        for req in &reqs {
            sequential.submit(*req);
        }
        batched.submit_batch(reqs);
        // Queue depth 1: identical cache state *and* identical device
        // timing/traffic.
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.now(), sequential.now());
    }

    #[test]
    fn submit_batch_merges_adjacent_device_transfers() {
        // 64 adjacent sequential single-block reads bypass the cache
        // (NonCachingNonEviction misses) and reach the HDD. With queue
        // depth 8 the batched path issues 8 merged transfers instead of 64.
        let merged = HybridCache::with_shard_count_and_queue_depth(
            PolicyConfig::paper_default(),
            1_000,
            1,
            8,
        );
        let unmerged = cache(1_000);
        let reqs: Vec<ClassifiedRequest> = (0..64u64)
            .map(|i| {
                read_req(
                    i,
                    1,
                    RequestClass::Sequential,
                    QosPolicy::NonCachingNonEviction,
                )
            })
            .collect();
        merged.submit_batch(reqs.clone());
        for req in reqs {
            unmerged.submit(req);
        }
        let sm = merged.stats();
        let su = unmerged.stats();
        assert_eq!(sm.hdd.as_ref().unwrap().blocks_read, 64);
        assert_eq!(sm.hdd.as_ref().unwrap().read_requests, 8);
        assert_eq!(su.hdd.as_ref().unwrap().read_requests, 64);
        // Same logical traffic, strictly less simulated device time.
        assert!(merged.now() < unmerged.now());
        // Cache-level statistics are unaffected by the merge.
        assert_eq!(sm.per_class, su.per_class);
        assert_eq!(sm.actions, su.actions);
    }

    #[test]
    fn submit_batch_splits_runs_at_write_buffer_requests() {
        // Capacity 100 → write-buffer limit 10. A batch holding 11 buffered
        // updates must flush exactly as sequential submits do.
        let batched = cache(100);
        let sequential = cache(100);
        let mut reqs: Vec<ClassifiedRequest> = Vec::new();
        for i in 0..5u64 {
            reqs.push(read_req(
                500 + i,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        for i in 0..11u64 {
            reqs.push(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        for i in 0..5u64 {
            reqs.push(read_req(
                600 + i,
                1,
                RequestClass::Random,
                QosPolicy::priority(3),
            ));
        }
        for req in &reqs {
            sequential.submit(*req);
        }
        batched.submit_batch(reqs);
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.write_buffer_resident(), 0);
        assert_eq!(batched.stats().action(CacheAction::WriteBufferFlush), 11);
    }

    #[test]
    fn concurrent_submits_from_many_threads_are_fully_accounted() {
        let c = HybridCache::with_shard_count(PolicyConfig::paper_default(), 4_096, 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500u64 {
                        c.submit(read_req(
                            t * 10_000 + i,
                            1,
                            RequestClass::Random,
                            QosPolicy::priority(2),
                        ));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 2_000);
        // Disjoint addresses, ample capacity: every block was allocated.
        assert_eq!(s.action(CacheAction::ReadAllocation), 2_000);
        assert_eq!(c.resident_blocks(), 2_000);
    }
}
