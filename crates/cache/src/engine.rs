//! The policy-agnostic cache engine (mechanism half of the hybrid cache).
//!
//! An SSD works as a cache for an HDD. The engine owns everything that is
//! *mechanism*: lock-striped shards, the physical slot allocator, block
//! metadata and clean/dirty state, write-buffer occupancy accounting,
//! statistics, and the per-request / vectored device submission paths.
//! Every *decision* — admission, victim selection, promotion on hit — is
//! delegated to a per-shard [`CachePolicy`] instance, so one engine serves
//! the paper's semantic priority policy and any classical baseline (LRU,
//! CFLRU, 2Q, or a custom policy) interchangeably.
//!
//! The six actions of Section 5.1 (cache hit, read allocation, write
//! allocation, bypassing, re-allocation, eviction) are all implemented and
//! counted, as are TRIM-driven invalidations and write-buffer flushes.
//!
//! # Concurrency
//!
//! The engine is a shared service: [`StorageSystem::submit`] takes `&self`,
//! so one instance can serve many threads. Internally the block metadata,
//! per-shard policy state, slot allocator, write buffer and statistics are
//! partitioned into `N` *shards* keyed by logical block address
//! (`lbn % N`). Each shard manages an equal slice of the cache capacity,
//! so allocation and eviction are decided shard-locally. With a single
//! shard (the default, used by the paper-figure experiments) the behaviour
//! is block-for-block identical to the original exclusive implementation;
//! [`CacheEngine::with_shard_count`] enables real parallelism for the
//! threaded drivers and benches.
//!
//! Within a shard, state is split by how hot its access path is:
//!
//! * **statistics** live on relaxed atomics ([`AtomicCacheStats`]) — both
//!   recording and the aggregate [`StorageSystem::stats`] read are
//!   lock-free;
//! * **metadata** (plus the hot-hit descriptor) sits behind an `RwLock`
//!   read view — read-only probes ([`CacheEngine::contains_block`],
//!   [`CacheEngine::cached_priority`], residency counts) take the shared
//!   read lock and never serialize with each other;
//! * **decision state** (the policy and the slot allocator) stays behind
//!   the stripe mutex, which every mutating path takes *together with* the
//!   view's write lock (always mutex first).
//!
//! On top of that split sits an optimistic fast path for the hottest
//! possible case: a single-block read that repeats the immediately
//! preceding hit on its shard. When the installed policy declares repeat
//! hits idempotent ([`CachePolicy::repeat_hit_idempotent`]) the repeat is
//! served entirely under the read view — statistics recorded on atomics,
//! the SSD transfer issued as usual — without acquiring the stripe mutex,
//! because the skipped `on_hit` call is provably a no-op. Anything that
//! could perturb policy order (a different block's hit, a write, an
//! allocation, an eviction, a trim, a drain) falls back to the full mutex
//! path and invalidates the descriptor. The fast path alters no simulated
//! timing, no hit ratio and no policy decision; it only removes mutex
//! traffic. [`CacheEngine::with_optimistic_reads`] turns it off to
//! reproduce the fully locked hot path (the pre-optimization engine), and
//! [`crate::ContentionCounters`] reports how often each path was taken.

use crate::allocator::SlotAllocator;
use crate::journal::{Journal, JournalConfig, JournalOp, JournalSnapshot};
use crate::lru::ListBackend;
use crate::metadata::{BlockState, CacheEntry, CacheMetadata};
use crate::migration::{MigrationConfig, MigrationCounters, MigrationStats, ShardMigration};
use crate::policy::{CachePolicy, CachePolicyKind, HitOutcome, PolicyRequest, RemoveReason};
use crate::stats::{AtomicCacheStats, CacheAction, CacheStats};
use crate::system::StorageSystem;
use hstorage_storage::{
    BlockAddr, BlockRange, CachePriority, ClassifiedRequest, Direction, HddDevice, HddParameters,
    IoRequest, PolicyConfig, QosPolicy, SimClock, SsdDevice, SsdParameters, StorageDevice,
    TrimCommand,
};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-request batch of device traffic, flushed as one I/O per device and
/// direction so multi-block requests pay one command overhead, like the real
/// system.
#[derive(Debug, Default, Clone, Copy)]
struct DeviceBatch {
    ssd_read: u64,
    ssd_write: u64,
    hdd_read: u64,
    hdd_write: u64,
}

/// The block whose repeat read hit the optimistic path may serve without
/// the stripe mutex: the last read hit on the shard, fingerprinted by its
/// request shape so only a *bit-identical* repeat (same class, QoS and
/// resolved priority — the arguments `on_hit` would receive) matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HotHit {
    lbn: BlockAddr,
    fingerprint: u64,
}

/// Packs the request shape a read hit hands to `CachePolicy::on_hit` into
/// the hot-hit fingerprint. Direction is not encoded: only read hits
/// publish a descriptor and only reads consult it.
fn hit_fingerprint(req: &PolicyRequest) -> u64 {
    let qos = match req.qos {
        QosPolicy::Priority(p) => 0x100 | p.0 as u64,
        QosPolicy::NonCachingNonEviction => 0x200,
        QosPolicy::NonCachingEviction => 0x300,
        QosPolicy::WriteBuffer => 0x400,
    };
    ((req.class as u64) << 16) | ((req.prio.0 as u64) << 32) | qos
}

/// The shared read view of one shard: everything a read-only probe or an
/// optimistic repeat hit needs. Mutating paths hold this view's write lock
/// (in addition to the stripe mutex), so a holder of the read lock sees a
/// consistent metadata + hot-descriptor pair without any versioning.
struct MetaView {
    meta: CacheMetadata,
    /// `Some` exactly while the last completed shard visit was a read hit
    /// and nothing has perturbed policy order since; any such block is
    /// guaranteed resident.
    hot: Option<HotHit>,
}

/// The decision state of one shard, only ever touched under the stripe
/// mutex: the pluggable policy and the physical slot allocator.
struct ShardInner {
    policy: Box<dyn CachePolicy>,
    alloc: SlotAllocator,
    /// Tier-migration state ([`crate::MigrationConfig`]): heat tracker,
    /// request shapes and the pending promote/demote queues. `None` while
    /// migration is disabled — the foreground hooks then cost one branch.
    migration: Option<ShardMigration>,
}

/// One lock-striped partition of the cache. See the module docs for how
/// the three pieces (atomic statistics, `RwLock` read view, mutex-guarded
/// decision state) divide the hot path.
struct Shard {
    /// Shared read view (metadata + hot-hit descriptor).
    view: RwLock<MetaView>,
    /// Decision state. Lock order: `inner` **before** `view`.
    inner: Mutex<ShardInner>,
    /// Striped statistics on relaxed atomics — recording never takes (or
    /// extends) either lock.
    stats: AtomicCacheStats,
    /// Maximum blocks this shard's slice of the write buffer may hold.
    /// Immutable after construction.
    write_buffer_limit: u64,
    /// Blocks currently resident in the write-buffer group. Only mutated
    /// under the stripe mutex; atomic so the occupancy getters and the
    /// flush pre-check can read it lock-free.
    write_buffer_resident: AtomicU64,
    /// Heat earned by optimistic fast-path hits, which never take the
    /// stripe mutex: an atomic side-counter folded into the hot block's
    /// heat at the next migration round, so the fast path stays lock-free
    /// with migration enabled (its one extra cost is this relaxed add).
    fast_heat: AtomicU64,
    /// Lock-free migration counters (see [`MigrationCounters`]).
    migration_counters: MigrationCounters,
}

impl Shard {
    fn new(
        config: &PolicyConfig,
        capacity: u64,
        policy: Box<dyn CachePolicy>,
        backend: ListBackend,
    ) -> Self {
        Shard {
            view: RwLock::new(MetaView {
                // Pre-sized to the shard's slot count: a full shard never
                // rehashes mid-run on the flat backend.
                meta: CacheMetadata::with_backend(backend, capacity as usize),
                hot: None,
            }),
            inner: Mutex::new(ShardInner {
                policy,
                alloc: SlotAllocator::new(capacity),
                migration: None,
            }),
            stats: AtomicCacheStats::new(),
            write_buffer_limit: (capacity as f64 * config.write_buffer_fraction).floor() as u64,
            write_buffer_resident: AtomicU64::new(0),
            fast_heat: AtomicU64::new(0),
            migration_counters: MigrationCounters::default(),
        }
    }

    /// Acquires the shard's write-side lock pair (stripe mutex first, then
    /// the view's write lock) and counts the acquisition.
    fn lock_for_write(&self) -> (MutexGuard<'_, ShardInner>, RwLockWriteGuard<'_, MetaView>) {
        self.stats.record_lock_acquisition();
        (self.inner.lock(), self.view.write())
    }

    /// Evicts `victim` (a block the policy *selected* via
    /// `pop_victim`/`steal_victim` but still tracks), writing it back if
    /// dirty. The engine completes the removal by announcing it to the
    /// policy with [`RemoveReason::Evict`], so ghost-keeping policies
    /// observe their own evictions.
    fn evict(
        &self,
        inner: &mut ShardInner,
        view: &mut MetaView,
        victim: BlockAddr,
        batch: &mut DeviceBatch,
    ) {
        let entry = view
            .meta
            .remove(victim)
            .expect("victim tracked by policy but not in metadata");
        inner
            .policy
            .on_remove_reasoned(victim, entry.priority, RemoveReason::Evict);
        if entry.is_dirty() {
            batch.hdd_write += 1;
        }
        if inner.policy.write_buffered(entry.priority) {
            self.debit_write_buffer(1);
        }
        inner.alloc.release(entry.pbn);
        self.stats.record_action(CacheAction::Eviction, 1);
    }

    /// Deducts `n` blocks from the write-buffer occupancy. An underflow
    /// would mean the insert/move/remove accounting diverged from the
    /// policy's group labelling — a bug worth failing loudly on, not one
    /// to paper over with silent saturation. Callers hold the stripe
    /// mutex (occupancy has exactly one mutator at a time), so the
    /// load/store pair cannot lose an update.
    fn debit_write_buffer(&self, n: u64) {
        let resident = self.write_buffer_resident.load(Ordering::Relaxed);
        debug_assert!(
            resident >= n,
            "write-buffer occupancy underflow: resident {resident} < debit {n}"
        );
        self.write_buffer_resident
            .store(resident.saturating_sub(n), Ordering::Relaxed);
    }

    /// Tries to obtain a free cache slot for `incoming` (the missing
    /// block of `req`), asking the policy to displace a resident if the
    /// shard is full. Returns the physical slot or `None` if the block
    /// must bypass the cache.
    fn try_allocate(
        &self,
        inner: &mut ShardInner,
        view: &mut MetaView,
        incoming: BlockAddr,
        req: &PolicyRequest,
        batch: &mut DeviceBatch,
    ) -> Option<u64> {
        if let Some(pbn) = inner.alloc.allocate() {
            return Some(pbn);
        }
        let victim = inner.policy.pop_victim(incoming, req)?;
        self.evict(inner, view, victim, batch);
        inner.alloc.allocate()
    }

    /// Handles one block of a request; returns `true` on a cache hit.
    fn handle_block(
        &self,
        inner: &mut ShardInner,
        view: &mut MetaView,
        lbn: BlockAddr,
        req: &PolicyRequest,
        batch: &mut DeviceBatch,
    ) -> bool {
        if let Some(mig) = inner.migration.as_mut() {
            // Every foreground access — hit, miss or bypass — is one unit
            // of heat and refreshes the remembered request shape.
            mig.note_access(lbn, req);
        }
        if let Some(entry) = view.meta.get(lbn).copied() {
            // --- Cache hit ---
            if let Some(mig) = inner.migration.as_mut() {
                // Lazy cancellation: a hit on a queued demotion candidate
                // proves the block is still hot, so the demotion is
                // dropped instead of executed at the next round.
                if mig.note_hit(lbn) {
                    self.migration_counters
                        .cancelled_demotions
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            self.stats.record_action(CacheAction::CacheHit, 1);
            match inner.policy.on_hit(lbn, entry.priority, req) {
                HitOutcome::Unchanged => {}
                HitOutcome::Moved(new) => self.apply_move(inner, view, lbn, entry.priority, new),
            }
            match req.direction {
                Direction::Read => {
                    batch.ssd_read += 1;
                    // Publish the hot-hit descriptor: an immediate
                    // bit-identical repeat of this read may skip the mutex
                    // (consulted only when the policy declares repeats
                    // idempotent and optimistic reads are enabled).
                    view.hot = Some(HotHit {
                        lbn,
                        fingerprint: hit_fingerprint(req),
                    });
                }
                Direction::Write => {
                    batch.ssd_write += 1;
                    if let Some(e) = view.meta.get_mut(lbn) {
                        e.state = BlockState::Dirty;
                    }
                    // A write hit dirties state a repeat read would not
                    // reproduce; drop the descriptor.
                    view.hot = None;
                }
            }
            return true;
        }

        // --- Cache miss ---
        if !inner.policy.admits(req) {
            // Bypassing: straight to the second-level device. `admits` is
            // a pure query, so the hot descriptor stays valid.
            self.stats.record_action(CacheAction::Bypassing, 1);
            match req.direction {
                Direction::Read => batch.hdd_read += 1,
                Direction::Write => batch.hdd_write += 1,
            }
            return false;
        }

        // The allocation path may perturb policy order even when it ends
        // in a bypass (ARC adapts its target on ghost hits inside
        // `pop_victim`), so the descriptor is cleared up front.
        view.hot = None;
        match self.try_allocate(inner, view, lbn, req, batch) {
            Some(pbn) => {
                let state = match req.direction {
                    Direction::Read => {
                        // Read allocation: fetch from HDD, place in SSD.
                        self.stats.record_action(CacheAction::ReadAllocation, 1);
                        batch.hdd_read += 1;
                        batch.ssd_write += 1;
                        BlockState::Clean
                    }
                    Direction::Write => {
                        // Write allocation: place in SSD, mark dirty.
                        self.stats.record_action(CacheAction::WriteAllocation, 1);
                        batch.ssd_write += 1;
                        BlockState::Dirty
                    }
                };
                let group = inner.policy.on_insert(lbn, req);
                view.meta.insert(
                    lbn,
                    CacheEntry {
                        pbn,
                        priority: group,
                        state,
                    },
                );
                if inner.policy.write_buffered(group) {
                    self.write_buffer_resident.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(mig) = inner.migration.as_mut() {
                    // Lazy promotion: the foreground admission just
                    // performed the migration a round had queued.
                    if mig.note_insert(lbn) {
                        self.migration_counters
                            .lazy_promotions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None => {
                // Not cache-worthy relative to current residents: bypass.
                self.stats.record_action(CacheAction::Bypassing, 1);
                match req.direction {
                    Direction::Read => batch.hdd_read += 1,
                    Direction::Write => batch.hdd_write += 1,
                }
            }
        }
        false
    }

    /// Mirrors a policy-initiated group move in the metadata, write-buffer
    /// accounting and statistics.
    fn apply_move(
        &self,
        inner: &mut ShardInner,
        view: &mut MetaView,
        lbn: BlockAddr,
        old: CachePriority,
        new: CachePriority,
    ) {
        if let Some(e) = view.meta.get_mut(lbn) {
            e.priority = new;
        }
        let was_buffered = inner.policy.write_buffered(old);
        let is_buffered = inner.policy.write_buffered(new);
        if was_buffered && !is_buffered {
            self.debit_write_buffer(1);
        } else if is_buffered && !was_buffered {
            self.write_buffer_resident.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.record_action(CacheAction::ReAllocation, 1);
    }

    /// Drains the shard's write buffer if its occupancy exceeds the limit:
    /// buffered blocks are dropped from the cache and the number of *dirty*
    /// blocks (which must be written to the HDD by the caller, outside the
    /// shard locks) is returned.
    fn drain_write_buffer_if_full(
        &self,
        inner: &mut ShardInner,
        view: &mut MetaView,
    ) -> Option<u64> {
        if self.write_buffer_limit == 0
            || self.write_buffer_resident.load(Ordering::Relaxed) <= self.write_buffer_limit
        {
            return None;
        }
        let buffered = inner.policy.drain_write_buffer();
        let mut dirty_blocks = 0u64;
        let mut removed = 0u64;
        for lbn in buffered {
            if let Some(entry) = view.meta.remove(lbn) {
                // The drain names buffered blocks without untracking them;
                // the engine completes each removal. A drain is an engine
                // displacement, so ghost-keeping policies see `Evict`, not
                // `Trim` (the block's data is still live on the HDD).
                inner
                    .policy
                    .on_remove_reasoned(lbn, entry.priority, RemoveReason::Evict);
                if entry.is_dirty() {
                    dirty_blocks += 1;
                }
                inner.alloc.release(entry.pbn);
                removed += 1;
            }
        }
        // Deduct what was actually drained (for a complete drain — every
        // shipped policy — this zeroes the counter) so a policy whose
        // drain is partial cannot desynchronize the occupancy accounting.
        self.debit_write_buffer(removed);
        view.hot = None;
        self.stats
            .record_action(CacheAction::WriteBufferFlush, dirty_blocks);
        Some(dirty_blocks)
    }

    /// Invalidates one block if resident; returns 1 if it was trimmed.
    /// Conservatively drops the hot descriptor either way (an absent trim
    /// may still touch ghost history).
    fn trim_block(&self, inner: &mut ShardInner, view: &mut MetaView, lbn: BlockAddr) -> u64 {
        view.hot = None;
        if let Some(mig) = inner.migration.as_mut() {
            // The block's lifetime ended: discard its heat, shape and any
            // queued migration so an in-flight candidate cannot resurrect
            // dead data at the next round.
            let cancelled = mig.note_trim(lbn);
            if cancelled > 0 {
                self.migration_counters
                    .trim_cancellations
                    .fetch_add(cancelled, Ordering::Relaxed);
            }
        }
        let Some(entry) = view.meta.remove(lbn) else {
            // The block's lifetime ended while not resident: policies
            // keeping history about absent addresses (ghost lists)
            // must still forget it.
            inner.policy.on_trim_absent(lbn);
            return 0;
        };
        inner
            .policy
            .on_remove_reasoned(lbn, entry.priority, RemoveReason::Trim);
        if inner.policy.write_buffered(entry.priority) {
            self.debit_write_buffer(1);
        }
        inner.alloc.release(entry.pbn);
        1
    }

    /// Runs one tier-migration round on this shard (no-op when migration
    /// is disabled). Under the caller's lock pair the round:
    ///
    /// 1. folds the optimistic fast path's atomic hit counter into the
    ///    current hot block's heat, advances the round counter, applies
    ///    decay on the half-life cadence and prunes the tracker;
    /// 2. re-validates the pending promote/demote queues against current
    ///    residency;
    /// 3. ranks residents coldest-first (write-buffered blocks excluded:
    ///    the buffer has its own drain lifecycle) and admissible absent
    ///    blocks hottest-first — both orders fully deterministic (heat,
    ///    then address), so the metadata map's iteration order never
    ///    reaches an observable decision;
    /// 4. within the per-round budget, first promotes the hottest absents
    ///    into free slots, then demote/promote pairs — a cold resident
    ///    makes room for a strictly hotter absent block. Demotions flow
    ///    through [`RemoveReason::Evict`] (ghost directories learn);
    ///    promotions re-enter via `admits` → `on_insert` with the
    ///    request shape last observed for the block;
    /// 5. queues the unconsumed candidates for the lazy window until the
    ///    next round.
    ///
    /// Returns the device traffic the round generated; the engine issues
    /// it after the shard locks are released. The round deliberately
    /// records no [`CacheAction`]: migration is background work, and the
    /// per-action statistics stay bit-comparable between migration-on and
    /// migration-off runs of identical foreground traffic.
    fn migration_round(&self, inner: &mut ShardInner, view: &mut MetaView) -> DeviceBatch {
        let mut batch = DeviceBatch::default();
        let ShardInner {
            policy,
            alloc,
            migration,
        } = inner;
        let Some(mig) = migration.as_mut() else {
            return batch;
        };
        let ShardMigration {
            config,
            heat,
            shapes,
            pending_promote,
            pending_demote,
            rounds,
            track_cap,
            resident_scratch,
        } = mig;

        let fast_hits = self.fast_heat.swap(0, Ordering::Relaxed);
        if fast_hits > 0 {
            if let Some(hot) = view.hot {
                // The fast path serves only the shard's hot descriptor, so
                // the accumulated count belongs to the block it currently
                // names. If a slow-path visit cleared the descriptor since,
                // the count is dropped — an acceptable undercount for a
                // lock-free hot path.
                heat.record_n(hot.lbn, fast_hits);
            }
        }

        *rounds += 1;
        if *rounds % u64::from(config.half_life_rounds) == 0 {
            heat.decay();
        }
        heat.retain_hottest(*track_cap);
        shapes.retain(|lbn, _| heat.heat(*lbn) > 0);
        pending_demote.retain(|lbn| view.meta.contains(*lbn));
        pending_promote.retain(|lbn| !view.meta.contains(*lbn) && heat.heat(*lbn) > 0);

        let mut absents: Vec<(u64, BlockAddr, PolicyRequest)> = heat
            .iter()
            .filter(|(lbn, heat)| **heat > 0 && !view.meta.contains(**lbn))
            .filter_map(|(lbn, h)| {
                let shape = shapes.get(lbn)?;
                // A promotion is a background fetch, whatever direction
                // the remembered foreground access had.
                let preq = PolicyRequest {
                    direction: Direction::Read,
                    ..*shape
                };
                // Write-buffer shapes are excluded: promoting into the
                // buffer would grow occupancy outside the per-request
                // flush check. Everything else must pass normal admission.
                if preq.prio == CachePriority(0) || !policy.admits(&preq) {
                    return None;
                }
                Some((*h, *lbn, preq))
            })
            .collect();
        absents.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Residents are only consumed by the absents-gated pairing loops
        // below, so a round with no promotion candidate (the steady state
        // of a stable working set) skips the full metadata sweep and sort.
        // The sweep reuses the shard's scratch buffer instead of
        // reallocating a shard-sized Vec every round.
        let residents = resident_scratch;
        residents.clear();
        if !absents.is_empty() {
            residents.extend(
                view.meta
                    .iter()
                    .filter(|(_, e)| !policy.write_buffered(e.priority))
                    .map(|(lbn, _)| (heat.heat(lbn), lbn)),
            );
            residents.sort_unstable();
        }

        // Performs one promotion: fetch from HDD, place in SSD, clean, via
        // the policy's normal insertion path. A nested fn (not a closure)
        // so the demote code between calls can also borrow the policy and
        // the batch.
        #[allow(clippy::too_many_arguments)]
        fn promote(
            shard: &Shard,
            policy: &mut Box<dyn CachePolicy>,
            view: &mut MetaView,
            pending_promote: &mut std::collections::HashSet<BlockAddr>,
            batch: &mut DeviceBatch,
            lbn: BlockAddr,
            preq: &PolicyRequest,
            pbn: u64,
        ) {
            let group = policy.on_insert(lbn, preq);
            view.meta.insert(
                lbn,
                CacheEntry {
                    pbn,
                    priority: group,
                    state: BlockState::Clean,
                },
            );
            if policy.write_buffered(group) {
                shard.write_buffer_resident.fetch_add(1, Ordering::Relaxed);
            }
            batch.hdd_read += 1;
            batch.ssd_write += 1;
            pending_promote.remove(&lbn);
            shard
                .migration_counters
                .promoted
                .fetch_add(1, Ordering::Relaxed);
        }

        let mut budget = config.round_budget;
        let mut moved = false;
        let mut next_absent = 0usize;
        let mut next_resident = 0usize;

        // Free slots first: promotion without displacement.
        while budget >= 1 && next_absent < absents.len() {
            let Some(pbn) = alloc.allocate() else { break };
            let (_, lbn, preq) = absents[next_absent];
            promote(
                self,
                policy,
                view,
                pending_promote,
                &mut batch,
                lbn,
                &preq,
                pbn,
            );
            next_absent += 1;
            budget -= 1;
            moved = true;
        }

        // Demote/promote pairs: a cold resident makes room for a strictly
        // hotter absent block (ties never migrate — churn without gain).
        while budget >= 2 && next_absent < absents.len() && next_resident < residents.len() {
            let (absent_heat, absent_lbn, preq) = absents[next_absent];
            let (resident_heat, resident_lbn) = residents[next_resident];
            if absent_heat <= resident_heat {
                break;
            }
            let entry = view
                .meta
                .remove(resident_lbn)
                .expect("demotion candidate was checked resident");
            policy.on_remove_reasoned(resident_lbn, entry.priority, RemoveReason::Evict);
            if entry.is_dirty() {
                batch.hdd_write += 1;
            }
            if policy.write_buffered(entry.priority) {
                self.debit_write_buffer(1);
            }
            alloc.release(entry.pbn);
            pending_demote.remove(&resident_lbn);
            self.migration_counters
                .demoted
                .fetch_add(1, Ordering::Relaxed);
            let pbn = alloc.allocate().expect("slot just freed by demotion");
            promote(
                self,
                policy,
                view,
                pending_promote,
                &mut batch,
                absent_lbn,
                &preq,
                pbn,
            );
            next_absent += 1;
            next_resident += 1;
            budget -= 2;
            moved = true;
        }

        // Queue what the budget did not cover for the lazy window: an
        // admitted miss resolves a queued promotion, a hit rescues a
        // queued demotion, a TRIM cancels either.
        for (_, lbn, _) in absents.iter().skip(next_absent).take(config.round_budget) {
            pending_promote.insert(*lbn);
        }
        let mut queued = 0usize;
        while queued < config.round_budget
            && next_absent < absents.len()
            && next_resident < residents.len()
        {
            if absents[next_absent].0 <= residents[next_resident].0 {
                break;
            }
            pending_demote.insert(residents[next_resident].1);
            queued += 1;
            next_absent += 1;
            next_resident += 1;
        }

        if moved {
            // Residency changed behind the descriptor's back.
            view.hot = None;
        }
        batch
    }
}

/// The hybrid SSD-over-HDD storage system: a policy-agnostic cache engine
/// whose admission/eviction/promotion decisions come from a pluggable
/// [`CachePolicy`]. With the default [`CachePolicyKind::SemanticPriority`]
/// this **is** the paper's hStorage-DB cache (the [`crate::HybridCache`]
/// alias); with [`CachePolicyKind::Lru`] / [`CachePolicyKind::Cflru`] /
/// [`CachePolicyKind::TwoQ`] the same shards, devices and submission
/// pipeline serve the classical baselines.
pub struct CacheEngine {
    config: PolicyConfig,
    policy_kind: CachePolicyKind,
    /// The [`Self::with_interior_backend`] knob (default
    /// [`ListBackend::Flat`]): which data-structure layout backs every
    /// shard's resident-block table and the policies' recency lists.
    interior_backend: ListBackend,
    name: String,
    /// Whether the installed policy maintains a write buffer (group 0).
    /// When it does not, the write-buffer flush checks and the batch
    /// run-splitting they require are skipped entirely.
    write_buffering: bool,
    /// The [`Self::with_optimistic_reads`] knob (default `true`).
    optimistic_reads: bool,
    /// Derived: the knob is on **and** the installed policy declares
    /// repeat hits idempotent — the precondition for consulting the
    /// hot-hit descriptor.
    hit_fast_path: bool,
    cache_capacity: u64,
    /// The [`Self::with_migration`] knob set (default: disabled).
    migration: MigrationConfig,
    /// Engine-level migration round counters (per-shard move counters
    /// live on the shards).
    migration_rounds: AtomicU64,
    migration_skipped: AtomicU64,
    /// Summed device idle time (nanoseconds) consumed by the last executed
    /// migration round; the idle gate in
    /// [`StorageSystem::migrate_idle`] claims the next window with a
    /// compare-exchange on this mark, so concurrent callers never
    /// double-run a round.
    idle_mark: AtomicU64,
    /// The [`Self::with_journal`] knob set (default: disabled). `None`
    /// while journaling is off, so the disabled engine carries no
    /// journal state at all.
    journal_config: JournalConfig,
    journal: Option<Journal>,
    clock: SimClock,
    ssd: SsdDevice,
    hdd: HddDevice,
    shards: Vec<Shard>,
}

impl CacheEngine {
    /// Creates a single-shard engine with `cache_capacity_blocks` of SSD
    /// cache in front of the HDD, using the paper's device models and the
    /// semantic priority policy. One shard reproduces the paper's global
    /// selective allocation/eviction exactly; use
    /// [`Self::with_shard_count`] for concurrent workloads.
    pub fn new(config: PolicyConfig, cache_capacity_blocks: u64) -> Self {
        Self::with_shard_count(config, cache_capacity_blocks, 1)
    }

    /// Creates an engine whose state is striped over `shards` locks (each
    /// managing an equal slice of the capacity) so concurrent submits to
    /// different shards do not serialize.
    pub fn with_shard_count(
        config: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
    ) -> Self {
        Self::with_shard_count_and_queue_depth(config, cache_capacity_blocks, shards, 1)
    }

    /// Creates a sharded engine whose devices merge up to `queue_depth`
    /// adjacent queued requests into one physical transfer on the batched
    /// submission path ([`StorageSystem::submit_batch`]).
    /// `queue_depth = 1` (the [`Self::with_shard_count`] default) disables
    /// merging and is timing-identical to per-request submission.
    pub fn with_shard_count_and_queue_depth(
        config: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
        queue_depth: usize,
    ) -> Self {
        let clock = SimClock::new();
        Self::with_devices_sharded(
            config,
            cache_capacity_blocks,
            shards,
            SsdDevice::new(
                SsdParameters::intel_320().with_queue_depth(queue_depth),
                clock.clone(),
            ),
            HddDevice::new(
                HddParameters::cheetah_15k7().with_queue_depth(queue_depth),
                clock.clone(),
            ),
            clock,
        )
    }

    /// Creates a single-shard engine over explicitly constructed devices.
    /// The devices must share `clock`.
    pub fn with_devices(
        config: PolicyConfig,
        cache_capacity_blocks: u64,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        Self::with_devices_sharded(config, cache_capacity_blocks, 1, ssd, hdd, clock)
    }

    /// Creates a sharded engine over explicitly constructed devices. The
    /// devices must share `clock`. Shard `i` manages the blocks with
    /// `lbn % shards == i` and `capacity / shards` slots (the remainder is
    /// spread over the first shards).
    pub fn with_devices_sharded(
        config: PolicyConfig,
        cache_capacity_blocks: u64,
        shards: usize,
        ssd: SsdDevice,
        hdd: HddDevice,
        clock: SimClock,
    ) -> Self {
        config.validate().expect("invalid policy configuration");
        assert!(shards > 0, "shard count must be positive");
        let kind = CachePolicyKind::default();
        let backend = ListBackend::default();
        let n = shards as u64;
        let shards = (0..n)
            .map(|i| {
                let capacity = cache_capacity_blocks / n + u64::from(i < cache_capacity_blocks % n);
                Shard::new(
                    &config,
                    capacity,
                    kind.build_backed(&config, capacity, backend),
                    backend,
                )
            })
            .collect();
        let mut engine = CacheEngine {
            config,
            policy_kind: kind,
            interior_backend: backend,
            name: kind.system_name().to_string(),
            write_buffering: true,
            optimistic_reads: true,
            hit_fast_path: false,
            cache_capacity: cache_capacity_blocks,
            migration: MigrationConfig::default(),
            migration_rounds: AtomicU64::new(0),
            migration_skipped: AtomicU64::new(0),
            idle_mark: AtomicU64::new(0),
            journal_config: JournalConfig::default(),
            journal: None,
            clock,
            ssd,
            hdd,
            shards,
        };
        engine.refresh_policy_traits();
        engine
    }

    /// Re-derives the policy-dependent engine flags from the installed
    /// policy:
    ///
    /// * [`Self::write_buffering`] — and with it the write-buffer
    ///   contract: the engine's buffer mechanism (limit, flush trigger,
    ///   batch run-splitting) is keyed to group 0, so a policy declaring
    ///   any other group buffered would accumulate occupancy the engine
    ///   never flushes;
    /// * [`Self::hit_fast_path`] — optimistic repeat hits are consulted
    ///   only when the policy declares them idempotent **and** the
    ///   [`Self::with_optimistic_reads`] knob is on.
    fn refresh_policy_traits(&mut self) {
        let Some(shard) = self.shards.first_mut() else {
            self.write_buffering = false;
            self.hit_fast_path = false;
            return;
        };
        let policy = &shard.inner.get_mut().policy;
        self.write_buffering = policy.write_buffered(CachePriority(0));
        for group in 1..=u8::MAX {
            assert!(
                !policy.write_buffered(CachePriority(group)),
                "CachePolicy declares group {group} write-buffered, but the engine's \
                 write buffer is group 0 (see CachePolicy::write_buffered)"
            );
        }
        self.hit_fast_path = self.optimistic_reads && policy.repeat_hit_idempotent();
    }

    /// Selects which shipped [`CachePolicyKind`] drives the engine's
    /// decisions, including any knob values the kind carries. Must be
    /// called before any traffic is submitted (the per-shard policy state
    /// is rebuilt empty).
    pub fn with_cache_policy(mut self, kind: CachePolicyKind) -> Self {
        kind.validate().expect("invalid cache-policy configuration");
        self.policy_kind = kind;
        self.name = kind.system_name().to_string();
        for shard in &mut self.shards {
            assert!(
                shard.view.get_mut().meta.is_empty(),
                "cache policy must be selected before submitting traffic"
            );
            let inner = shard.inner.get_mut();
            inner.policy =
                kind.build_backed(&self.config, inner.alloc.capacity(), self.interior_backend);
        }
        self.refresh_policy_traits();
        self
    }

    /// Selects which data-structure layout backs every shard's
    /// resident-block table and the installed policy's recency lists:
    /// [`ListBackend::Flat`] (the default) uses open-addressing tables
    /// and arena-backed intrusive lists, [`ListBackend::Map`] the legacy
    /// `HashMap`-plus-heap-node structures. The knob never changes a
    /// caching decision — the equivalence suites and the bench gate pin
    /// the two backends to identical statistics — only the memory the
    /// hot path walks. Must be called before any traffic is submitted
    /// (shard metadata and policy state are rebuilt empty), and before
    /// [`Self::with_policy_factory`] if a custom policy is installed
    /// (this knob rebuilds the shipped [`CachePolicyKind`]'s policies).
    pub fn with_interior_backend(mut self, backend: ListBackend) -> Self {
        self.interior_backend = backend;
        for shard in &mut self.shards {
            let inner = shard.inner.get_mut();
            let capacity = inner.alloc.capacity();
            let view = shard.view.get_mut();
            assert!(
                view.meta.is_empty(),
                "interior backend must be selected before submitting traffic"
            );
            view.meta = CacheMetadata::with_backend(backend, capacity as usize);
            inner.policy = self
                .policy_kind
                .build_backed(&self.config, capacity, backend);
        }
        self.refresh_policy_traits();
        self
    }

    /// The interior data-structure backend in force.
    pub fn interior_backend(&self) -> ListBackend {
        self.interior_backend
    }

    /// Installs a custom [`CachePolicy`] built by `factory` (called once
    /// per shard with that shard's slot capacity) and names the resulting
    /// storage system `name`. Must be called before any traffic is
    /// submitted. See the [`CachePolicy`] docs for a worked example.
    pub fn with_policy_factory(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(u64) -> Box<dyn CachePolicy>,
    ) -> Self {
        self.name = name.into();
        for shard in &mut self.shards {
            assert!(
                shard.view.get_mut().meta.is_empty(),
                "cache policy must be installed before submitting traffic"
            );
            let inner = shard.inner.get_mut();
            inner.policy = factory(inner.alloc.capacity());
        }
        self.refresh_policy_traits();
        self
    }

    /// Enables or disables the optimistic repeat-hit read path (default:
    /// enabled). Disabled, every submission takes the stripe mutex — the
    /// pre-optimization hot path — which is what the contended-throughput
    /// bench compares against and what the equivalence suites pin the
    /// optimistic path to. The knob never changes caching behaviour, only
    /// which locks the hot path touches; read-only probes stay lock-free
    /// either way.
    pub fn with_optimistic_reads(mut self, enabled: bool) -> Self {
        self.optimistic_reads = enabled;
        self.refresh_policy_traits();
        self
    }

    /// Whether the optimistic repeat-hit path is in force (the knob is on
    /// and the installed policy declares repeat hits idempotent).
    pub fn optimistic_reads_active(&self) -> bool {
        self.hit_fast_path
    }

    /// Configures online tier migration (see [`MigrationConfig`] and the
    /// [`crate::migration`] module docs). Must be called before any
    /// traffic is submitted; the default — and
    /// [`MigrationConfig::off`] — leaves the engine bit-identical to one
    /// built without migration. Composes with
    /// [`Self::with_cache_policy`] / [`Self::with_policy_factory`] in
    /// either order.
    pub fn with_migration(mut self, config: MigrationConfig) -> Self {
        config.validate().expect("invalid migration configuration");
        self.migration = config;
        for shard in &mut self.shards {
            assert!(
                shard.view.get_mut().meta.is_empty(),
                "migration must be configured before submitting traffic"
            );
            let inner = shard.inner.get_mut();
            inner.migration = config
                .enabled
                .then(|| ShardMigration::new(config, inner.alloc.capacity()));
        }
        self
    }

    /// The tier-migration configuration in force.
    pub fn migration_config(&self) -> MigrationConfig {
        self.migration
    }

    /// Configures the write-ahead journal (see [`JournalConfig`] and the
    /// [`crate::journal`] module docs). Must be called before any traffic
    /// is submitted; the default — and [`JournalConfig::off`] — leaves
    /// the engine bit-identical to one built without a journal. Enabled,
    /// every [`StorageSystem`] mutation is logged write-ahead with batch
    /// begin/commit framing, and [`Self::journal_snapshot`] exposes the
    /// simulated persistent image for [`crate::recovery`].
    pub fn with_journal(mut self, config: JournalConfig) -> Self {
        config.validate().expect("invalid journal configuration");
        for shard in &mut self.shards {
            assert!(
                shard.view.get_mut().meta.is_empty(),
                "journaling must be configured before submitting traffic"
            );
        }
        self.journal_config = config;
        self.journal = config.enabled.then(|| Journal::new(config));
        self
    }

    /// The journal configuration in force.
    pub fn journal_config(&self) -> JournalConfig {
        self.journal_config
    }

    /// Number of records in the attached journal (0 with journaling
    /// disabled).
    pub fn journal_len(&self) -> usize {
        self.journal.as_ref().map_or(0, Journal::len)
    }

    /// The current image of the attached journal — what the simulated
    /// persistent device holds right now — or `None` with journaling
    /// disabled. Feed it (optionally through
    /// [`JournalSnapshot::crash_at`]) to [`crate::recovery::recover`].
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.journal.as_ref().map(Journal::snapshot)
    }

    /// Commits any open journal batch (a clean shutdown of the group
    /// commit window). No-op with journaling disabled.
    pub fn journal_seal(&self) {
        if let Some(journal) = &self.journal {
            journal.seal();
        }
    }

    /// The resident set as `(lbn, priority, dirty)` triples, sorted by
    /// block address — the recovery suite's convergence fingerprint.
    /// Takes each shard's read view in turn.
    pub fn resident_set(&self) -> Vec<(BlockAddr, CachePriority, bool)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let view = shard.view.read();
            for (lbn, entry) in view.meta.iter() {
                out.push((lbn, entry.priority, entry.is_dirty()));
            }
        }
        out.sort_unstable_by_key(|(lbn, _, _)| lbn.0);
        out
    }

    /// The migration heat learned for `lbn` so far (0 with migration
    /// disabled). Pending fast-path heat that has not yet been folded
    /// into the tracker — see [`Self::reset_stats`] and the migration
    /// round — is not included.
    pub fn learned_heat(&self, lbn: BlockAddr) -> u64 {
        let shard = self.shard(lbn);
        let inner = shard.inner.lock();
        inner.migration.as_ref().map_or(0, |mig| mig.heat.heat(lbn))
    }

    /// Every block with non-zero learned heat as `(lbn, heat)` pairs,
    /// sorted by block address (empty with migration disabled) — the
    /// recovery suite's heat fingerprint.
    pub fn heat_snapshot(&self) -> Vec<(BlockAddr, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let inner = shard.inner.lock();
            if let Some(mig) = inner.migration.as_ref() {
                out.extend(
                    mig.heat
                        .iter()
                        .filter(|(_, heat)| **heat > 0)
                        .map(|(lbn, heat)| (*lbn, *heat)),
                );
            }
        }
        out.sort_unstable_by_key(|(lbn, _)| lbn.0);
        out
    }

    /// The `{N, t, b}` policy configuration in force.
    pub fn policy(&self) -> &PolicyConfig {
        &self.config
    }

    /// Which shipped policy kind the engine was configured with (custom
    /// factories report the default kind; their [`StorageSystem::name`]
    /// identifies them).
    pub fn cache_policy_kind(&self) -> CachePolicyKind {
        self.policy_kind
    }

    /// Cache capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.cache_capacity
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of blocks the write buffer may hold before a flush
    /// (summed over all shards). Lock-free: the limits are fixed at
    /// construction.
    pub fn write_buffer_limit(&self) -> u64 {
        self.shards.iter().map(|s| s.write_buffer_limit).sum()
    }

    /// Number of blocks currently held in the write buffer. Lock-free:
    /// occupancy is kept on per-shard atomics.
    pub fn write_buffer_resident(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.write_buffer_resident.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether `lbn` is currently resident in the cache. Served through
    /// the shard's read view — never contends with other probes, only
    /// with a concurrent mutation of the same shard.
    pub fn contains_block(&self, lbn: BlockAddr) -> bool {
        self.shard(lbn).view.read().meta.contains(lbn)
    }

    /// The priority group `lbn` currently lives in, if resident (for the
    /// non-semantic policies this is the informational label recorded at
    /// insertion). Served through the shard's read view, like
    /// [`Self::contains_block`].
    pub fn cached_priority(&self, lbn: BlockAddr) -> Option<CachePriority> {
        self.shard(lbn)
            .view
            .read()
            .meta
            .get(lbn)
            .map(|e| e.priority)
    }

    fn shard_index(&self, lbn: BlockAddr) -> usize {
        (lbn.0 % self.shards.len() as u64) as usize
    }

    fn shard(&self, lbn: BlockAddr) -> &Shard {
        &self.shards[self.shard_index(lbn)]
    }

    fn policy_request(&self, req: &ClassifiedRequest) -> PolicyRequest {
        PolicyRequest {
            direction: req.io.direction,
            class: req.class,
            qos: req.policy,
            prio: self.config.resolve(req.policy),
        }
    }

    /// The optimistic fast path: serves `req` entirely under the shard's
    /// read view iff it is a single-block read repeating the immediately
    /// preceding hit on its shard (same block, same request shape). The
    /// skipped `on_hit` is a no-op by the
    /// [`CachePolicy::repeat_hit_idempotent`] contract, so metadata,
    /// policy state, statistics totals and the SSD transfer (timing
    /// included) come out identical to the mutex path. Returns `false`
    /// when the request must take the slow path.
    fn try_fast_read_hit(&self, req: &ClassifiedRequest, preq: &PolicyRequest) -> bool {
        if !self.hit_fast_path
            || req.blocks() != 1
            || req.io.direction != Direction::Read
            // Buffered-priority requests keep the per-request flush check
            // of the slow path (a pure hit cannot grow the buffer, but the
            // conservative skip keeps the two paths trivially equivalent).
            || (self.write_buffering && preq.prio == CachePriority(0))
        {
            return false;
        }
        let lbn = req.io.range.start;
        let shard = self.shard(lbn);
        {
            let view = shard.view.read();
            let expected = HotHit {
                lbn,
                fingerprint: hit_fingerprint(preq),
            };
            if view.hot != Some(expected) {
                return false;
            }
            debug_assert!(
                view.meta.contains(lbn),
                "hot-hit descriptor names a non-resident block"
            );
        }
        // Statistics are atomics and the device has its own
        // synchronization, so the view is released first — mirroring the
        // slow path, which issues device traffic after dropping its shard
        // guards.
        shard.stats.record_action(CacheAction::CacheHit, 1);
        shard.stats.record_class(req.class, 1, 1);
        shard.stats.record_priority(preq.prio.0, 1, 1);
        shard.stats.record_fast_path_hit();
        if self.migration.enabled {
            // Heat for the hot block, folded in at the next migration
            // round — one relaxed add keeps the fast path lock-free.
            shard.fast_heat.fetch_add(1, Ordering::Relaxed);
        }
        self.ssd
            .serve(&IoRequest::read(BlockRange::new(lbn, 1), req.io.sequential));
        true
    }

    /// Issues the accumulated device traffic for one request.
    fn flush_batch(&self, req: &ClassifiedRequest, batch: DeviceBatch) {
        let seq = req.io.sequential;
        let start = req.io.range.start;
        if batch.hdd_read > 0 {
            self.hdd.serve(&IoRequest::read(
                BlockRange::new(start, batch.hdd_read),
                seq,
            ));
        }
        if batch.hdd_write > 0 {
            self.hdd.serve(&IoRequest::write(
                BlockRange::new(start, batch.hdd_write),
                seq,
            ));
        }
        if batch.ssd_read > 0 {
            self.ssd.serve(&IoRequest::read(
                BlockRange::new(start, batch.ssd_read),
                seq,
            ));
        }
        if batch.ssd_write > 0 {
            self.ssd.serve(&IoRequest::write(
                BlockRange::new(start, batch.ssd_write),
                seq,
            ));
        }
    }

    /// Serves a run of non-write-buffer requests as one vectored submission:
    /// block-level work is grouped by shard so each shard lock is taken once
    /// for the whole run, and the accumulated device traffic is issued as
    /// one queue per device so adjacent transfers merge up to the device
    /// queue depth.
    ///
    /// Per-shard block order equals request order, so the cache state and
    /// cache-level statistics after a run are identical to submitting each
    /// request individually. Under a write-buffering policy, callers must
    /// ensure no request in the run resolves to the write-buffer priority:
    /// buffered traffic needs the per-request flush check of
    /// [`StorageSystem::submit`]. (Non-buffering policies have no flush
    /// semantics, so any request may appear in a run.)
    fn submit_run(&self, reqs: &[ClassifiedRequest]) {
        match reqs {
            [] => return,
            // Straight to the unbatched path, below the journal wrapper:
            // the run is always part of an already-journaled operation.
            [one] => return self.submit_inner(*one),
            _ => {}
        }
        let preqs: Vec<PolicyRequest> = reqs.iter().map(|r| self.policy_request(r)).collect();
        let mut hits = vec![0u64; reqs.len()];
        let mut batches = vec![DeviceBatch::default(); reqs.len()];

        if self.shards.len() == 1 {
            // The whole run's block work under a single lock acquisition.
            let shard = &self.shards[0];
            let (mut inner, mut view) = shard.lock_for_write();
            for (i, req) in reqs.iter().enumerate() {
                for lbn in req.io.range.iter() {
                    if shard.handle_block(&mut inner, &mut view, lbn, &preqs[i], &mut batches[i]) {
                        hits[i] += 1;
                    }
                }
            }
            drop(view);
            drop(inner);
            // Request-level counters are atomics; recording them after the
            // guards drop changes nothing about the totals.
            for (i, req) in reqs.iter().enumerate() {
                shard.stats.record_class(req.class, req.blocks(), hits[i]);
                shard
                    .stats
                    .record_priority(preqs[i].prio.0, req.blocks(), hits[i]);
            }
        } else {
            // Group block work by shard, preserving request order within
            // each shard, and visit every touched shard exactly once.
            let mut per_shard: Vec<Vec<(u32, BlockAddr)>> = vec![Vec::new(); self.shards.len()];
            for (i, req) in reqs.iter().enumerate() {
                for lbn in req.io.range.iter() {
                    per_shard[self.shard_index(lbn)].push((i as u32, lbn));
                }
            }
            for (idx, blocks) in per_shard.iter().enumerate() {
                if blocks.is_empty() {
                    continue;
                }
                let shard = &self.shards[idx];
                let (mut inner, mut view) = shard.lock_for_write();
                for &(i, lbn) in blocks {
                    let i = i as usize;
                    if shard.handle_block(&mut inner, &mut view, lbn, &preqs[i], &mut batches[i]) {
                        hits[i] += 1;
                    }
                }
            }
            // Request-level counters are striped to the run's first shard;
            // the aggregate view sums all stripes, so placement is free.
            let shard = self.shard(reqs[0].io.range.start);
            for (i, req) in reqs.iter().enumerate() {
                shard.stats.record_class(req.class, req.blocks(), hits[i]);
                shard
                    .stats
                    .record_priority(preqs[i].prio.0, req.blocks(), hits[i]);
            }
        }

        // Issue the device traffic as one queue per device, in request
        // order (the order `submit` would have served it in), letting the
        // device merge adjacent same-direction transfers.
        let mut hdd_q = Vec::new();
        let mut ssd_q = Vec::new();
        for (req, b) in reqs.iter().zip(&batches) {
            let seq = req.io.sequential;
            let start = req.io.range.start;
            if b.hdd_read > 0 {
                hdd_q.push(IoRequest::read(BlockRange::new(start, b.hdd_read), seq));
            }
            if b.hdd_write > 0 {
                hdd_q.push(IoRequest::write(BlockRange::new(start, b.hdd_write), seq));
            }
            if b.ssd_read > 0 {
                ssd_q.push(IoRequest::read(BlockRange::new(start, b.ssd_read), seq));
            }
            if b.ssd_write > 0 {
                ssd_q.push(IoRequest::write(BlockRange::new(start, b.ssd_write), seq));
            }
        }
        if !hdd_q.is_empty() {
            self.hdd.serve_batch(&hdd_q);
        }
        if !ssd_q.is_empty() {
            self.ssd.serve_batch(&ssd_q);
        }
        // No write-buffer flush check: under a buffering policy the run
        // contains no write-buffer requests, and under a non-buffering
        // policy the buffer can never grow.
    }

    /// Flushes every shard's write buffer that exceeds its threshold `b`:
    /// dirty buffered blocks are written to the HDD and the buffer space is
    /// returned to the cache.
    fn maybe_flush_write_buffers(&self) {
        for (idx, shard) in self.shards.iter().enumerate() {
            // Lock-free occupancy screen. Occupancy only moves under the
            // stripe mutex and the thread that pushed it over the limit
            // sees its own increment here, so a needed flush is never
            // skipped; shards that cannot need one are not locked at all.
            if shard.write_buffer_limit == 0
                || shard.write_buffer_resident.load(Ordering::Relaxed) <= shard.write_buffer_limit
            {
                continue;
            }
            let (mut inner, mut view) = shard.lock_for_write();
            let drained = shard.drain_write_buffer_if_full(&mut inner, &mut view);
            drop(view);
            drop(inner);
            if let Some(dirty_blocks) = drained {
                // The drain tore down the buffer inside the enclosing
                // journal batch; the note marks the torn-drain window the
                // fault-injection suite crashes into. Never replayed.
                if let Some(journal) = &self.journal {
                    journal.note_drain(idx, dirty_blocks);
                }
                if dirty_blocks > 0 {
                    // The flush is a large, mostly sequential transfer.
                    self.hdd
                        .serve(&IoRequest::write(BlockRange::new(0u64, dirty_blocks), true));
                }
            }
        }
    }

    /// Runs one journaled operation: appends `op` write-ahead (opening a
    /// batch if needed), executes `body`, then marks the operation done —
    /// committing the batch once it holds `commit_interval` operations.
    /// With journaling disabled this is exactly `body()`.
    fn journaled<T>(&self, op: impl FnOnce() -> JournalOp, body: impl FnOnce() -> T) -> T {
        match &self.journal {
            None => body(),
            Some(journal) => {
                journal.op_begin(op());
                let out = body();
                journal.op_end();
                out
            }
        }
    }

    /// [`StorageSystem::submit`] below the journal wrapper.
    fn submit_inner(&self, req: ClassifiedRequest) {
        let preq = self.policy_request(&req);
        if self.try_fast_read_hit(&req, &preq) {
            return;
        }
        let mut batch = DeviceBatch::default();
        let mut hits = 0u64;
        // Hold one shard's lock pair at a time, re-acquiring only when the
        // next block hashes to a different shard: with one shard the whole
        // request's block work is handled under a single acquisition,
        // exactly like the unsharded implementation.
        let mut guard: Option<(MutexGuard<'_, ShardInner>, RwLockWriteGuard<'_, MetaView>)> = None;
        let mut guard_idx = usize::MAX;
        for lbn in req.io.range.iter() {
            let idx = self.shard_index(lbn);
            if guard_idx != idx {
                // Release the old shard before acquiring the next one:
                // assigning directly would briefly hold both shards'
                // locks, and ascending block addresses make the
                // transition order cyclic (N-1 → 0), which can deadlock N
                // concurrent multi-block submits.
                drop(guard.take());
                guard = Some(self.shards[idx].lock_for_write());
                guard_idx = idx;
            }
            let (inner, view) = guard.as_mut().expect("shard guard just acquired");
            if self.shards[idx].handle_block(inner, view, lbn, &preq, &mut batch) {
                hits += 1;
            }
        }
        drop(guard);
        // Request-level counters are striped to the first shard (the only
        // shard, when unsharded); they are atomics, so no lock is needed
        // and the aggregate view sums all stripes.
        let shard = self.shard(req.io.range.start);
        shard.stats.record_class(req.class, req.blocks(), hits);
        shard.stats.record_priority(preq.prio.0, req.blocks(), hits);
        self.flush_batch(&req, batch);
        // Only write-buffer traffic can grow the buffer, so the flush
        // check is needed — and its cost paid — only under a buffering
        // policy and only then.
        if self.write_buffering && preq.prio == CachePriority(0) {
            self.maybe_flush_write_buffers();
        }
    }

    /// [`StorageSystem::submit_batch`] below the journal wrapper.
    fn submit_batch_inner(&self, reqs: Vec<ClassifiedRequest>) {
        if reqs.len() <= 1 {
            if let Some(req) = reqs.into_iter().next() {
                self.submit_inner(req);
            }
            return;
        }
        // Under a non-buffering policy the buffer can never grow, so the
        // whole batch is served as one run — no fragmentation, full
        // device queue merging.
        if !self.write_buffering {
            return self.submit_run(&reqs);
        }
        // Write-buffer requests keep the per-request flush semantics of
        // `submit`, so the batch is served as maximal runs of non-buffered
        // requests with buffered requests submitted individually between
        // them. On the hot path (scan batches) the whole batch is one run.
        let mut run: Vec<ClassifiedRequest> = Vec::with_capacity(reqs.len());
        for req in reqs {
            if self.config.resolve(req.policy) == CachePriority(0) {
                self.submit_run(&run);
                run.clear();
                self.submit_inner(req);
            } else {
                run.push(req);
            }
        }
        self.submit_run(&run);
    }

    /// [`StorageSystem::reset_stats`] below the journal wrapper. Before
    /// the counters clear, any heat the optimistic fast path accumulated
    /// is folded into the migration tracker, so learned heat survives
    /// the reset instead of riding a side-counter whose hot descriptor a
    /// later slow-path visit may invalidate (which would drop it at the
    /// next round's fold).
    fn reset_stats_inner(&self) {
        if self.migration.enabled {
            for shard in &self.shards {
                if shard.fast_heat.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                let (mut inner, view) = shard.lock_for_write();
                if let Some(hot) = view.hot {
                    let fast_hits = shard.fast_heat.swap(0, Ordering::Relaxed);
                    if fast_hits > 0 {
                        if let Some(mig) = inner.migration.as_mut() {
                            mig.heat.record_n(hot.lbn, fast_hits);
                        }
                    }
                }
            }
        }
        for shard in &self.shards {
            shard.stats.reset();
        }
        self.ssd.reset_stats();
        self.hdd.reset_stats();
    }

    /// [`StorageSystem::trim`] below the journal wrapper.
    fn trim_inner(&self, cmd: &TrimCommand) {
        for range in &cmd.ranges {
            let mut blocks_iter = range.iter().peekable();
            while let Some(lbn) = blocks_iter.next() {
                let idx = self.shard_index(lbn);
                let shard = &self.shards[idx];
                let (mut inner, mut view) = shard.lock_for_write();
                let mut trimmed = shard.trim_block(&mut inner, &mut view, lbn);
                while let Some(&next) = blocks_iter.peek() {
                    if self.shard_index(next) != idx {
                        break;
                    }
                    blocks_iter.next();
                    trimmed += shard.trim_block(&mut inner, &mut view, next);
                }
                if trimmed > 0 {
                    shard.stats.record_action(CacheAction::Trim, trimmed);
                }
            }
        }
    }
}

impl StorageSystem for CacheEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, req: ClassifiedRequest) {
        self.journaled(|| JournalOp::Submit(req), || self.submit_inner(req));
    }

    fn submit_batch(&self, reqs: Vec<ClassifiedRequest>) {
        match &self.journal {
            // The clone of the request vector is paid only with
            // journaling on; disabled, the batch moves straight through.
            None => self.submit_batch_inner(reqs),
            Some(journal) => {
                // One record for the whole batch: the batched path merges
                // adjacent device transfers, so replaying it as
                // individual submits would diverge from the original
                // device timing.
                journal.op_begin(JournalOp::SubmitBatch(reqs.clone()));
                self.submit_batch_inner(reqs);
                journal.op_end();
            }
        }
    }

    fn trim(&self, cmd: &TrimCommand) {
        self.journaled(|| JournalOp::Trim(cmd.clone()), || self.trim_inner(cmd));
    }

    fn stats(&self) -> CacheStats {
        // Lock-free aggregation: per-shard snapshots are atomic reads, and
        // the residency count takes only the shared read view.
        let mut aggregate = CacheStats::new();
        let mut resident = 0u64;
        for shard in &self.shards {
            aggregate.merge(&shard.stats.snapshot());
            resident += shard.view.read().meta.len() as u64;
        }
        aggregate.resident_blocks = resident;
        aggregate.ssd = Some(self.ssd.stats());
        aggregate.hdd = Some(self.hdd.stats());
        aggregate
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&self) {
        self.journaled(|| JournalOp::StatsReset, || self.reset_stats_inner());
    }

    fn resident_blocks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.view.read().meta.len() as u64)
            .sum()
    }

    fn migrate_idle(&self) -> MigrationStats {
        if !self.migration.enabled {
            // A pulse without a migration engine is a pure no-op on both
            // sides of a crash, so it is not worth a journal record.
            return self.migration_stats();
        }
        self.journaled(|| JournalOp::MigrationPulse, || self.migrate_idle_inner())
    }

    fn migration_stats(&self) -> MigrationStats {
        let mut stats = MigrationStats {
            rounds: self.migration_rounds.load(Ordering::Relaxed),
            skipped_rounds: self.migration_skipped.load(Ordering::Relaxed),
            ..MigrationStats::default()
        };
        for shard in &self.shards {
            shard.migration_counters.add_into(&mut stats);
        }
        stats
    }
}

impl CacheEngine {
    /// [`StorageSystem::migrate_idle`] below the journal wrapper (only
    /// reached with migration enabled).
    fn migrate_idle_inner(&self) -> MigrationStats {
        // The gate is the *sum* of both devices' accrued idle time: it is
        // monotone and grows whenever either device sits idle while the
        // other serves, so rounds keep firing even when one device is
        // saturated (exactly the phase where migration matters). The
        // per-device minimum would stagnate there.
        let idle_ns = (self.ssd.idle_time() + self.hdd.idle_time()).as_nanos() as u64;
        let threshold_ns = self.migration.idle_threshold.as_nanos() as u64;
        let mark = self.idle_mark.load(Ordering::Acquire);
        if idle_ns.saturating_sub(mark) < threshold_ns {
            self.migration_skipped.fetch_add(1, Ordering::Relaxed);
            return self.migration_stats();
        }
        // Claim the idle window; a concurrent caller losing the race
        // counts a skip instead of double-running the round.
        if self
            .idle_mark
            .compare_exchange(mark, idle_ns, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.migration_skipped.fetch_add(1, Ordering::Relaxed);
            return self.migration_stats();
        }
        self.migration_rounds.fetch_add(1, Ordering::Relaxed);
        let mut total = DeviceBatch::default();
        for shard in &self.shards {
            let (mut inner, mut view) = shard.lock_for_write();
            let batch = shard.migration_round(&mut inner, &mut view);
            drop(view);
            drop(inner);
            total.hdd_read += batch.hdd_read;
            total.hdd_write += batch.hdd_write;
            total.ssd_read += batch.ssd_read;
            total.ssd_write += batch.ssd_write;
        }
        // Issue the round's traffic outside every shard lock, one batched
        // command per device and direction (promotion fetches, demotion
        // writebacks of dirty blocks, SSD placements).
        if total.hdd_read > 0 {
            self.hdd.serve(&IoRequest::read(
                BlockRange::new(0u64, total.hdd_read),
                false,
            ));
        }
        if total.hdd_write > 0 {
            self.hdd.serve(&IoRequest::write(
                BlockRange::new(0u64, total.hdd_write),
                false,
            ));
        }
        if total.ssd_read > 0 {
            self.ssd.serve(&IoRequest::read(
                BlockRange::new(0u64, total.ssd_read),
                false,
            ));
        }
        if total.ssd_write > 0 {
            self.ssd.serve(&IoRequest::write(
                BlockRange::new(0u64, total.ssd_write),
                false,
            ));
        }
        self.migration_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru_cache::LruCache;
    use hstorage_storage::{QosPolicy, RequestClass};

    fn engine(kind: CachePolicyKind, capacity: u64) -> CacheEngine {
        CacheEngine::new(PolicyConfig::paper_default(), capacity).with_cache_policy(kind)
    }

    fn read_req(start: u64, len: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        let sequential = matches!(class, RequestClass::Sequential);
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), sequential),
            class,
            policy,
        )
    }

    fn write_req(
        start: u64,
        len: u64,
        class: RequestClass,
        policy: QosPolicy,
    ) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::write(BlockRange::new(start, len), false),
            class,
            policy,
        )
    }

    #[test]
    fn policy_selection_renames_the_system() {
        assert_eq!(
            engine(CachePolicyKind::SemanticPriority, 10).name(),
            "hStorage-DB"
        );
        assert_eq!(engine(CachePolicyKind::Lru, 10).name(), "hybrid-lru");
        assert_eq!(engine(CachePolicyKind::cflru(), 10).name(), "hybrid-cflru");
        assert_eq!(engine(CachePolicyKind::two_q(), 10).name(), "hybrid-2q");
        assert_eq!(
            engine(CachePolicyKind::two_q(), 10).cache_policy_kind(),
            CachePolicyKind::two_q()
        );
    }

    #[test]
    fn lru_policy_engine_admits_sequential_data_unlike_the_semantic_policy() {
        let c = engine(CachePolicyKind::Lru, 100);
        c.submit(read_req(
            0,
            50,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        // The scan fills the cache — the classic pollution the semantic
        // policy avoids.
        assert_eq!(c.resident_blocks(), 50);
        assert_eq!(c.stats().action(CacheAction::Bypassing), 0);

        let semantic = engine(CachePolicyKind::SemanticPriority, 100);
        semantic.submit(read_req(
            0,
            50,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(semantic.resident_blocks(), 0);
    }

    #[test]
    fn lru_policy_engine_matches_the_standalone_lru_baseline_on_reuse() {
        // The engine running the Lru policy and the paper's standalone
        // LruCache baseline implement the same algorithm; on a
        // no-write-buffer trace their cache-level counters agree.
        let eng = engine(CachePolicyKind::Lru, 32);
        let base = LruCache::new(32);
        let mk = |i: u64| read_req(i % 48, 1, RequestClass::Random, QosPolicy::priority(2));
        for i in 0..500u64 {
            eng.submit(mk(i));
            base.submit(mk(i));
        }
        let (es, bs) = (eng.stats(), base.stats());
        assert_eq!(es.per_class, bs.per_class);
        assert_eq!(
            es.action(CacheAction::Eviction),
            bs.action(CacheAction::Eviction)
        );
        assert_eq!(eng.resident_blocks(), base.resident_blocks());
    }

    #[test]
    fn cflru_policy_engine_saves_dirty_writebacks_over_lru() {
        // Half the resident set is dirty; a stream of fresh reads then
        // forces evictions. CFLRU must write back fewer dirty blocks than
        // plain LRU for the same logical traffic.
        let run = |kind: CachePolicyKind| {
            let c = engine(kind, 64);
            for i in 0..64u64 {
                if i % 2 == 0 {
                    c.submit(write_req(
                        i,
                        1,
                        RequestClass::Random,
                        QosPolicy::priority(3),
                    ));
                } else {
                    c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(3)));
                }
            }
            for i in 1_000..1_016u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(3)));
            }
            c.stats().hdd.expect("engine has an HDD").blocks_written
        };
        assert!(run(CachePolicyKind::cflru()) < run(CachePolicyKind::Lru));
    }

    #[test]
    fn two_q_policy_engine_resists_scan_pollution() {
        // Repeated rounds of a small hot set followed by a one-shot scan
        // larger than the cache. LRU loses the hot set to every scan; 2Q
        // evicts it to the ghost list once, promotes it to Am on the next
        // round's re-reference, and from then on the scans only churn the
        // probationary queue.
        let hot_hits = |kind: CachePolicyKind| {
            let c = engine(kind, 64);
            for round in 0..30u64 {
                for i in 0..8u64 {
                    c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
                }
                c.submit(read_req(
                    10_000 + round * 64,
                    64,
                    RequestClass::Sequential,
                    QosPolicy::NonCachingNonEviction,
                ));
            }
            c.stats().class(RequestClass::Random).cache_hits
        };
        let two_q = hot_hits(CachePolicyKind::two_q());
        let lru = hot_hits(CachePolicyKind::Lru);
        assert!(
            two_q > 2 * lru.max(1),
            "2Q must out-hit LRU on the scan-polluted hot set (2Q {two_q}, LRU {lru})"
        );
    }

    #[test]
    fn arc_policy_engine_resists_scan_pollution() {
        // A hot set that proves reuse once while resident (back-to-back
        // warm-up touches), then rounds of one hot pass plus a one-shot
        // scan as large as the cache. ARC holds the promoted set in T2
        // while the scans churn T1; LRU loses it to every scan.
        let hot_hits = |kind: CachePolicyKind| {
            let c = engine(kind, 64);
            for _ in 0..2 {
                for i in 0..8u64 {
                    c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
                }
            }
            for round in 0..30u64 {
                for i in 0..8u64 {
                    c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
                }
                c.submit(read_req(
                    10_000 + round * 64,
                    64,
                    RequestClass::Sequential,
                    QosPolicy::NonCachingNonEviction,
                ));
            }
            c.stats().class(RequestClass::Random).cache_hits
        };
        let arc = hot_hits(CachePolicyKind::Arc);
        let lru = hot_hits(CachePolicyKind::Lru);
        assert!(
            arc > 2 * lru.max(1),
            "ARC must out-hit LRU on the scan-polluted hot set (ARC {arc}, LRU {lru})"
        );
    }

    #[test]
    fn per_stream_engine_routes_scans_to_semantic_and_reads_to_arc() {
        let c = engine(CachePolicyKind::per_stream(), 100);
        // The sequential stream consults the semantic inner: scans bypass.
        c.submit(read_req(
            0,
            50,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.stats().action(CacheAction::Bypassing), 50);
        // The random stream consults ARC: even a non-caching QoS is
        // admitted (ARC ignores classification, like any baseline).
        c.submit(read_req(
            1_000,
            10,
            RequestClass::Random,
            QosPolicy::priority(2),
        ));
        assert_eq!(c.resident_blocks(), 10);
        // Temporary-data lifecycle still works through the semantic
        // stream: write, trim, gone.
        c.submit(write_req(
            2_000,
            20,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        assert_eq!(c.resident_blocks(), 30);
        c.trim(&TrimCommand::single(BlockRange::new(2_000u64, 20)));
        assert_eq!(c.resident_blocks(), 10);
        assert_eq!(c.stats().action(CacheAction::Trim), 20);
    }

    #[test]
    fn per_stream_engine_keeps_the_semantic_write_buffer() {
        let c = engine(CachePolicyKind::per_stream(), 100); // buffer limit 10
        assert_eq!(c.write_buffer_limit(), 10);
        for i in 0..11u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        // The 11th buffered write exceeds the limit and triggers a flush,
        // exactly like the plain semantic engine.
        assert_eq!(c.write_buffer_resident(), 0);
        assert_eq!(c.stats().action(CacheAction::WriteBufferFlush), 11);
    }

    #[test]
    #[should_panic(expected = "invalid cache-policy configuration")]
    fn engine_rejects_out_of_range_policy_knobs() {
        let _ = engine(
            CachePolicyKind::TwoQ {
                kin_pct: 25,
                kout_pct: 201,
            },
            64,
        );
    }

    #[test]
    fn non_semantic_policies_have_no_write_buffer() {
        let c = engine(CachePolicyKind::Lru, 100);
        for i in 0..30u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        // Buffered updates are ordinary cached writes: no flush, no
        // write-buffer residency.
        assert_eq!(c.write_buffer_resident(), 0);
        assert_eq!(c.stats().action(CacheAction::WriteBufferFlush), 0);
        assert_eq!(c.resident_blocks(), 30);
    }

    #[test]
    fn policies_keep_capacity_invariants_under_churn() {
        for kind in CachePolicyKind::all() {
            let c = engine(kind, 64);
            for i in 0..1_000u64 {
                let prio = 2 + (i % 5) as u8;
                if i % 7 == 0 {
                    c.submit(write_req(
                        i,
                        1,
                        RequestClass::Random,
                        QosPolicy::priority(prio),
                    ));
                } else {
                    c.submit(read_req(
                        i % 200,
                        1,
                        RequestClass::Random,
                        QosPolicy::priority(prio),
                    ));
                }
                assert!(c.resident_blocks() <= 64, "{kind}");
            }
            let s = c.stats();
            assert_eq!(
                s.class(RequestClass::Random).accessed_blocks,
                1_000,
                "{kind}"
            );
        }
    }

    #[test]
    fn trim_invalidates_under_every_policy() {
        for kind in CachePolicyKind::all() {
            let c = engine(kind, 100);
            c.submit(write_req(
                0,
                40,
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ));
            assert_eq!(c.resident_blocks(), 40, "{kind}");
            c.trim(&TrimCommand::single(BlockRange::new(0u64, 40)));
            assert_eq!(c.resident_blocks(), 0, "{kind}");
            assert_eq!(c.stats().action(CacheAction::Trim), 40, "{kind}");
            // Space is reusable afterwards.
            c.submit(read_req(
                200,
                60,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
            assert_eq!(c.resident_blocks(), 60, "{kind}");
        }
    }

    #[test]
    fn trim_of_an_evicted_block_clears_its_2q_ghost() {
        // Temporary-data lifecycle against the ghost list: a block that
        // was evicted (and ghosted) and then TRIMmed must be a first-touch
        // block again when its address is re-used — not falsely hot.
        let c = engine(CachePolicyKind::two_q(), 8); // kin = 2 per shard
        c.submit(write_req(
            3,
            1,
            RequestClass::TemporaryData,
            QosPolicy::priority(1),
        ));
        // Churn enough same-shard blocks through probation to evict 3.
        for i in 0..20u64 {
            c.submit(read_req(
                10 + i,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        assert!(!c.contains_block(BlockAddr(3)), "block 3 must be evicted");
        // End of lifetime for the (absent) block.
        c.trim(&TrimCommand::single(BlockRange::new(3u64, 1)));
        assert_eq!(c.stats().action(CacheAction::Trim), 0, "nothing resident");

        // Against a twin engine that never saw the block, the re-used
        // address must behave identically (i.e. not be ghost-promoted).
        let twin = engine(CachePolicyKind::two_q(), 8);
        for e in [&c, &twin] {
            e.submit(read_req(3, 1, RequestClass::Random, QosPolicy::priority(2)));
            for i in 100..140u64 {
                e.submit(read_req(
                    3 + i * 8,
                    1,
                    RequestClass::Random,
                    QosPolicy::priority(2),
                ));
            }
        }
        assert_eq!(
            c.contains_block(BlockAddr(3)),
            twin.contains_block(BlockAddr(3)),
            "stale ghost must not change the re-used address's fate"
        );
    }

    #[test]
    fn eviction_ghosts_a_2q_block_but_trim_forgets_it() {
        // The engine now announces its own displacements with
        // `RemoveReason::Evict`, so 2Q's probationary ghost list diverges
        // between the two ways a block can leave: evicted → remembered in
        // a1out (re-use is ghost-promoted straight to Am), trimmed →
        // forgotten (re-use restarts probation).
        let build = |trim_after_evict: bool| {
            let c = engine(CachePolicyKind::two_q(), 8); // kin = 2
            c.submit(read_req(3, 1, RequestClass::Random, QosPolicy::priority(2)));
            // Fill the cache and push one more block: the probationary LRU
            // (block 3) is evicted and lands on the ghost list.
            for i in 10..18u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
            assert!(!c.contains_block(BlockAddr(3)), "block 3 must be evicted");
            if trim_after_evict {
                c.trim(&TrimCommand::single(BlockRange::new(3u64, 1)));
            }
            // Re-use the address, then churn fresh probationary blocks.
            c.submit(read_req(3, 1, RequestClass::Random, QosPolicy::priority(2)));
            for i in 100..110u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
            c.contains_block(BlockAddr(3))
        };
        assert!(
            build(false),
            "an engine-evicted block must be ghost-promoted to Am on re-use"
        );
        assert!(
            !build(true),
            "a trimmed ghost must restart probation and churn out with a1in"
        );
    }

    #[test]
    fn eviction_ghosts_an_arc_block_but_trim_forgets_it() {
        // Same divergence for ARC's B1 ghost list: an evicted T1 block is
        // remembered (re-use is a ghost hit into T2 and survives T1 churn);
        // a trimmed one is forgotten (re-use restarts in T1 and churns out).
        let build = |trim_after_evict: bool| {
            let c = engine(CachePolicyKind::Arc, 8);
            // Warm a hot set into T2 first so T1 stays narrow — ARC bounds
            // |T1| + |B1| by the capacity, and a full-width T1 would push
            // the block-3 ghost out of B1 before its re-use.
            for _ in 0..2 {
                for i in 20..24u64 {
                    c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
                }
            }
            c.submit(read_req(3, 1, RequestClass::Random, QosPolicy::priority(2)));
            for i in 10..14u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
            assert!(!c.contains_block(BlockAddr(3)), "block 3 must be evicted");
            if trim_after_evict {
                c.trim(&TrimCommand::single(BlockRange::new(3u64, 1)));
            }
            c.submit(read_req(3, 1, RequestClass::Random, QosPolicy::priority(2)));
            for i in 100..110u64 {
                c.submit(read_req(i, 1, RequestClass::Random, QosPolicy::priority(2)));
            }
            c.contains_block(BlockAddr(3))
        };
        assert!(
            build(false),
            "an engine-evicted block must be a B1 ghost hit into T2 on re-use"
        );
        assert!(
            !build(true),
            "a trimmed ghost must restart in T1 and churn out"
        );
    }

    #[test]
    fn trimming_a_clean_write_buffered_block_debits_its_occupancy() {
        // A read admitted under the WriteBuffer QoS is a *clean* group-0
        // resident; trimming it must debit the occupancy counter exactly
        // once. An over-count (the bug the old silent saturation could
        // mask) would surface below as a premature flush.
        let c = engine(CachePolicyKind::SemanticPriority, 100); // limit 10
        assert_eq!(c.write_buffer_limit(), 10);
        c.submit(read_req(7, 1, RequestClass::Update, QosPolicy::WriteBuffer));
        assert_eq!(c.cached_priority(BlockAddr(7)), Some(CachePriority(0)));
        assert_eq!(c.write_buffer_resident(), 1);
        c.trim(&TrimCommand::single(BlockRange::new(7u64, 1)));
        assert_eq!(c.write_buffer_resident(), 0);
        // The counter is exact afterwards: exactly `limit` buffered writes
        // fit without a flush, and one more drains.
        for i in 100..110u64 {
            c.submit(write_req(
                i,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        assert_eq!(c.write_buffer_resident(), 10);
        assert_eq!(c.stats().action(CacheAction::WriteBufferFlush), 0);
        c.submit(write_req(
            110,
            1,
            RequestClass::Update,
            QosPolicy::WriteBuffer,
        ));
        assert_eq!(c.write_buffer_resident(), 0);
        assert_eq!(c.stats().action(CacheAction::WriteBufferFlush), 11);
    }

    #[test]
    fn write_buffer_occupancy_tracks_resident_group_zero_exactly() {
        // Differential check of the occupancy counter against ground truth
        // (the number of resident blocks whose metadata group is 0) under
        // randomized buffered/regular/trim traffic, for both policies that
        // maintain a write buffer.
        for kind in [
            CachePolicyKind::SemanticPriority,
            CachePolicyKind::per_stream(),
        ] {
            let c = engine(kind, 64); // limit 6
            let mut state = 0x5707_ACEDu64;
            let mut rng = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            for _ in 0..600 {
                let addr = rng() % 80;
                match rng() % 5 {
                    0 => c.submit(write_req(
                        addr,
                        1,
                        RequestClass::Update,
                        QosPolicy::WriteBuffer,
                    )),
                    1 => c.submit(read_req(
                        addr,
                        1,
                        RequestClass::Update,
                        QosPolicy::WriteBuffer,
                    )),
                    2 => c.submit(read_req(
                        addr,
                        1,
                        RequestClass::Random,
                        QosPolicy::priority(2),
                    )),
                    3 => c.submit(write_req(
                        addr,
                        1,
                        RequestClass::TemporaryData,
                        QosPolicy::priority(1),
                    )),
                    _ => c.trim(&TrimCommand::single(BlockRange::new(addr, 2))),
                }
                let ground_truth = (0..80u64)
                    .filter(|&l| c.cached_priority(BlockAddr(l)) == Some(CachePriority(0)))
                    .count() as u64;
                assert_eq!(c.write_buffer_resident(), ground_truth, "{kind}");
            }
        }
    }

    #[test]
    fn non_buffering_policies_serve_mixed_batches_as_one_run() {
        // A batch containing WriteBuffer requests must not fragment under
        // a policy without a write buffer: at queue depth 8 the adjacent
        // scan reads around the update still merge into few transfers.
        let one_run = CacheEngine::with_shard_count_and_queue_depth(
            PolicyConfig::paper_default(),
            1_000,
            1,
            8,
        )
        .with_cache_policy(CachePolicyKind::Lru);
        let reqs: Vec<ClassifiedRequest> = (0..64u64)
            .map(|i| {
                if i == 31 {
                    write_req(2_000, 1, RequestClass::Update, QosPolicy::WriteBuffer)
                } else {
                    read_req(
                        i,
                        1,
                        RequestClass::Sequential,
                        QosPolicy::NonCachingNonEviction,
                    )
                }
            })
            .collect();
        one_run.submit_batch(reqs);
        // 63 scan misses + 1 update: LRU admits everything, so the HDD
        // sees 63 read-allocation fetches. Unfragmented, they merge into
        // ceil(31/8) + ceil(32/8) = 8 transfers (split only at the
        // non-adjacent update address), not the ~10+ a per-request split
        // at the buffered write would produce.
        let hdd = one_run.stats().hdd.expect("engine has an HDD");
        assert_eq!(hdd.blocks_read, 63);
        assert_eq!(hdd.read_requests, 8);
    }

    #[test]
    fn batch_equals_sequential_for_every_policy() {
        for kind in CachePolicyKind::all() {
            let batched = engine(kind, 256);
            let sequential = engine(kind, 256);
            let reqs: Vec<ClassifiedRequest> = (0..300u64)
                .map(|i| match i % 4 {
                    0 => read_req(i % 80, 2, RequestClass::Random, QosPolicy::priority(2)),
                    1 => read_req(
                        1_000 + i,
                        1,
                        RequestClass::Sequential,
                        QosPolicy::NonCachingNonEviction,
                    ),
                    2 => write_req(i % 50, 1, RequestClass::Update, QosPolicy::WriteBuffer),
                    _ => write_req(
                        2_000 + i,
                        1,
                        RequestClass::TemporaryData,
                        QosPolicy::priority(1),
                    ),
                })
                .collect();
            for req in &reqs {
                sequential.submit(*req);
            }
            batched.submit_batch(reqs);
            assert_eq!(batched.stats(), sequential.stats(), "{kind}");
            assert_eq!(batched.now(), sequential.now(), "{kind}");
        }
    }

    /// A repeat-heavy single-block trace (every policy admits at least the
    /// priority-2 random reads, and the back-to-back repeats are what the
    /// fast path serves).
    fn repeat_heavy_trace() -> Vec<ClassifiedRequest> {
        let mut reqs = Vec::new();
        for round in 0..40u64 {
            for i in 0..6u64 {
                let r = read_req(i, 1, RequestClass::Random, QosPolicy::priority(2));
                // Three consecutive identical reads: the second and third
                // are bit-identical repeats of the first's hit.
                reqs.push(r);
                reqs.push(r);
                reqs.push(r);
            }
            // Perturbations between repeat bursts: a miss-and-allocate, a
            // write hit, a buffered update, and a trim.
            reqs.push(read_req(
                100 + round,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
            reqs.push(write_req(
                round % 6,
                1,
                RequestClass::Update,
                QosPolicy::priority(3),
            ));
            reqs.push(write_req(
                200 + round % 5,
                1,
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ));
        }
        reqs
    }

    #[test]
    fn optimistic_reads_match_the_locked_path_for_every_policy() {
        // The fast path must change nothing observable: logical statistics,
        // simulated time, residency and per-block state all agree with the
        // engine that takes the mutex on every submission.
        for kind in CachePolicyKind::all() {
            let optimistic = engine(kind, 64);
            let locked = engine(kind, 64).with_optimistic_reads(false);
            assert!(optimistic.optimistic_reads_active(), "{kind}");
            assert!(!locked.optimistic_reads_active(), "{kind}");
            for req in repeat_heavy_trace() {
                optimistic.submit(req);
                locked.submit(req);
            }
            optimistic.trim(&TrimCommand::single(BlockRange::new(0u64, 3)));
            locked.trim(&TrimCommand::single(BlockRange::new(0u64, 3)));
            assert_eq!(optimistic.stats(), locked.stats(), "{kind}");
            assert_eq!(optimistic.now(), locked.now(), "{kind}");
            assert_eq!(optimistic.resident_blocks(), locked.resident_blocks());
            for lbn in 0..250u64 {
                assert_eq!(
                    optimistic.cached_priority(BlockAddr(lbn)),
                    locked.cached_priority(BlockAddr(lbn)),
                    "{kind} block {lbn}"
                );
            }
            // And the diagnostic counters prove the paths diverged where
            // they should: repeats were served lock-free on one engine and
            // through the mutex on the other.
            assert!(
                optimistic.stats().contention.fast_path_hits > 0,
                "{kind}: the repeat-heavy trace must exercise the fast path"
            );
            assert_eq!(locked.stats().contention.fast_path_hits, 0, "{kind}");
            assert!(
                optimistic.stats().contention.lock_acquisitions
                    < locked.stats().contention.lock_acquisitions,
                "{kind}: the fast path must shed lock acquisitions"
            );
        }
    }

    #[test]
    fn fast_path_serves_only_bit_identical_repeats() {
        let c = engine(CachePolicyKind::Lru, 64);
        let r = |class, qos| read_req(5, 1, class, qos);
        c.submit(r(RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.stats().contention.fast_path_hits, 0, "miss: slow path");
        c.submit(r(RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.stats().contention.fast_path_hits, 0, "first hit arms");
        c.submit(r(RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.stats().contention.fast_path_hits, 1, "repeat is served");
        // A different request shape on the same block is not a repeat —
        // the policy must see it — but it re-arms the descriptor.
        c.submit(r(RequestClass::Update, QosPolicy::priority(2)));
        assert_eq!(c.stats().contention.fast_path_hits, 1);
        c.submit(r(RequestClass::Update, QosPolicy::priority(2)));
        assert_eq!(c.stats().contention.fast_path_hits, 2);
        // Multi-block reads never take the fast path.
        c.submit(read_req(5, 2, RequestClass::Random, QosPolicy::priority(2)));
        let after_multi = c.stats().contention.fast_path_hits;
        assert_eq!(after_multi, 2);
    }

    #[test]
    fn probes_do_not_take_the_stripe_mutex() {
        // Hold every shard's stripe mutex and drive the read-only probes:
        // if any of them needed the mutex this test would deadlock. (The
        // probes go through the RwLock read view and the atomics instead.)
        let c = engine(CachePolicyKind::SemanticPriority, 64);
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        let guards: Vec<_> = c.shards.iter().map(|s| s.inner.lock()).collect();
        assert!(c.contains_block(BlockAddr(1)));
        assert_eq!(c.cached_priority(BlockAddr(1)), Some(CachePriority(2)));
        assert_eq!(c.resident_blocks(), 1);
        assert_eq!(c.write_buffer_resident(), 0);
        assert_eq!(c.write_buffer_limit(), 6);
        let stats = c.stats();
        assert_eq!(stats.resident_blocks, 1);
        assert_eq!(stats.class(RequestClass::Random).accessed_blocks, 1);
        drop(guards);
    }

    /// An eager migration config: every `migrate_idle` call runs a round.
    fn eager_migration(budget: usize) -> MigrationConfig {
        MigrationConfig::on()
            .with_idle_threshold(Duration::ZERO)
            .with_round_budget(budget)
    }

    #[test]
    fn migration_is_off_by_default_and_idle_pulses_are_free() {
        let c = engine(CachePolicyKind::SemanticPriority, 16);
        assert!(!c.migration_config().enabled);
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.migrate_idle(), MigrationStats::default());
        assert_eq!(c.migration_stats(), MigrationStats::default());
    }

    #[test]
    fn idle_gate_spaces_rounds_by_accrued_idle_time() {
        let c = engine(CachePolicyKind::SemanticPriority, 16)
            .with_migration(MigrationConfig::on().with_idle_threshold(Duration::from_secs(3600)));
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        // Far below an hour of accrued idle: the pulse is counted but no
        // round runs.
        let stats = c.migrate_idle();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.skipped_rounds, 1);
    }

    #[test]
    fn rounds_promote_hot_absent_blocks_over_cold_residents() {
        let c = engine(CachePolicyKind::SemanticPriority, 4).with_migration(eager_migration(64));
        // Four cold residents at priority 2 (accessed once each).
        for lbn in 0..4u64 {
            c.submit(read_req(
                lbn,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        assert_eq!(c.resident_blocks(), 4);
        // A hot absent set at priority 3: selective eviction refuses to
        // displace the higher-priority residents (2 >= 3 fails), so the
        // foreground path bypasses forever.
        for _ in 0..3 {
            for lbn in 100..104u64 {
                c.submit(read_req(
                    lbn,
                    1,
                    RequestClass::Random,
                    QosPolicy::priority(3),
                ));
            }
        }
        assert_eq!(c.resident_blocks(), 4);
        assert!(!c.contains_block(BlockAddr(100)));
        let stats = c.migrate_idle();
        // One round: all four heat-3 absents displace all four heat-1
        // residents.
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.promoted, 4);
        assert_eq!(stats.demoted, 4);
        for lbn in 100..104u64 {
            assert!(c.contains_block(BlockAddr(lbn)), "block {lbn} not promoted");
            // Promotions re-enter via the policy's normal insertion path.
            assert_eq!(c.cached_priority(BlockAddr(lbn)), Some(CachePriority(3)));
        }
        for lbn in 0..4u64 {
            assert!(!c.contains_block(BlockAddr(lbn)), "block {lbn} not demoted");
        }
        // Migration is background work: the foreground action counters
        // must not have recorded its moves as evictions.
        assert_eq!(c.stats().action(CacheAction::Eviction), 0);
    }

    #[test]
    fn equal_heat_never_migrates() {
        let c = engine(CachePolicyKind::SemanticPriority, 1).with_migration(eager_migration(64));
        c.submit(read_req(0, 1, RequestClass::Random, QosPolicy::priority(2)));
        c.submit(read_req(
            100,
            1,
            RequestClass::Random,
            QosPolicy::priority(3),
        ));
        let stats = c.migrate_idle();
        // Equal heat (1 vs 1) is churn without gain: nothing moves.
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.migrated(), 0);
        assert!(c.contains_block(BlockAddr(0)));
        assert!(!c.contains_block(BlockAddr(100)));
    }

    #[test]
    fn trim_of_a_queued_candidate_never_resurrects_the_block() {
        // Budget 2 = one demote/promote pair per round, so with two hot
        // absent blocks one is left queued for the lazy window.
        let c = engine(CachePolicyKind::SemanticPriority, 4).with_migration(eager_migration(2));
        for lbn in 0..4u64 {
            c.submit(read_req(
                lbn,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        for _ in 0..3 {
            for lbn in [100u64, 101] {
                c.submit(read_req(
                    lbn,
                    1,
                    RequestClass::Random,
                    QosPolicy::priority(3),
                ));
            }
        }
        let stats = c.migrate_idle();
        assert_eq!(stats.promoted, 1);
        assert!(c.contains_block(BlockAddr(100)), "hotter tiebreak first");
        assert!(!c.contains_block(BlockAddr(101)), "queued, not promoted");
        // The queued candidate's lifetime ends before the next round.
        c.trim(&TrimCommand::new(vec![BlockRange::new(101u64, 1)]));
        let stats = c.migrate_idle();
        assert!(stats.trim_cancellations >= 1, "queue entry cancelled");
        assert!(
            !c.contains_block(BlockAddr(101)),
            "trimmed block resurrected by migration"
        );
        assert_eq!(stats.promoted, 1, "no further promotion of dead data");
    }

    #[test]
    fn a_hit_rescues_a_queued_demotion() {
        // Budget 2 and three hot absents: the round demotes one resident
        // and queues the next-coldest for demotion.
        let c = engine(CachePolicyKind::SemanticPriority, 2).with_migration(eager_migration(2));
        for lbn in 0..2u64 {
            c.submit(read_req(
                lbn,
                1,
                RequestClass::Random,
                QosPolicy::priority(2),
            ));
        }
        for _ in 0..3 {
            for lbn in 100..103u64 {
                c.submit(read_req(
                    lbn,
                    1,
                    RequestClass::Random,
                    QosPolicy::priority(3),
                ));
            }
        }
        let stats = c.migrate_idle();
        assert_eq!(stats.demoted, 1);
        // Block 1 is now queued for demotion; a foreground hit proves it
        // hot again and cancels the queue entry.
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.migration_stats().cancelled_demotions, 1);
    }

    #[test]
    fn journaling_is_off_by_default() {
        let c = engine(CachePolicyKind::SemanticPriority, 16);
        assert!(!c.journal_config().enabled);
        assert_eq!(c.journal_len(), 0);
        assert!(c.journal_snapshot().is_none());
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        assert_eq!(c.journal_len(), 0, "no journal attached, nothing recorded");
    }

    #[test]
    fn the_journal_frames_each_engine_op_in_a_batch() {
        let c = engine(CachePolicyKind::SemanticPriority, 16).with_journal(JournalConfig::on());
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        c.trim(&TrimCommand::new(vec![BlockRange::new(1u64, 1)]));
        // Two ops at commit interval 1: two begin/op/commit triples.
        assert_eq!(c.journal_len(), 6);
        let records = c.journal_snapshot().expect("journal attached");
        assert!(matches!(
            records.records()[1],
            crate::journal::JournalRecord::Op(JournalOp::Submit(_))
        ));
        assert!(matches!(
            records.records()[4],
            crate::journal::JournalRecord::Op(JournalOp::Trim(_))
        ));
    }

    #[test]
    #[should_panic(expected = "journaling must be configured before submitting traffic")]
    fn the_journal_cannot_be_attached_to_a_warm_engine() {
        let c = engine(CachePolicyKind::SemanticPriority, 16);
        c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        let _ = c.with_journal(JournalConfig::on());
    }

    #[test]
    fn reset_stats_preserves_learned_heat() {
        let c = engine(CachePolicyKind::SemanticPriority, 16)
            .with_migration(MigrationConfig::on().with_idle_threshold(Duration::from_secs(3600)));
        // Two slow-path accesses record heat directly; the third rides the
        // hot fast path and parks one pending count in `fast_heat`.
        for _ in 0..3 {
            c.submit(read_req(1, 1, RequestClass::Random, QosPolicy::priority(2)));
        }
        assert_eq!(c.learned_heat(BlockAddr(1)), 2);
        assert!(c.stats().action(CacheAction::CacheHit) > 0);
        c.reset_stats();
        // The counters are gone but the learned heat survived — including
        // the pending fast-path hit, folded in rather than dropped.
        assert_eq!(c.stats().action(CacheAction::CacheHit), 0);
        assert_eq!(c.learned_heat(BlockAddr(1)), 3);
        assert_eq!(c.heat_snapshot(), vec![(BlockAddr(1), 3)]);
    }
}
