//! A simulated persistent write-ahead journal for the cache engine.
//!
//! The engine is volatile: a crash mid-drain would tear cache metadata,
//! write-buffer accounting and migration state with no recovery story.
//! This module adds the durability half of that story as *command
//! logging* (logical WAL): instead of journaling every physical mutation,
//! the engine records the ordered stream of logical operations it was
//! asked to perform — submits, batch submits, TRIMs, migration pulses,
//! stats resets — framed into batches with explicit begin/commit records.
//! Because the engine is deterministic (simulated devices, pure policy
//! state), replaying the committed prefix of the log through a fresh
//! engine reproduces the exact pre-crash state: metadata, statistics,
//! device clocks and policy interior included. See [`crate::recovery`]
//! for the replay side and the convergence invariant.
//!
//! # Record format
//!
//! The log is an ordered sequence of [`JournalRecord`]s:
//!
//! ```text
//! BatchBegin { batch }        -- opens batch `batch`
//!   Op(Submit …)              -- one logical operation (WAL: appended
//!   Op(Trim …)                   *before* the engine executes it)
//!   DrainNote { shard, … }    -- informational: a write-buffer drain
//!                                happened inside this batch
//! BatchCommit { batch }       -- appended after every op in the batch
//!                                has fully executed
//! ```
//!
//! A crash is modelled as truncating the log at an arbitrary record
//! offset ([`JournalSnapshot::crash_at`]). Recovery replays only batches
//! whose commit record survived; a torn tail — an open batch whose
//! commit is missing — is discarded wholesale, which is exactly the
//! "dirty blocks durably on HDD or cleanly lost, never torn" invariant.
//!
//! # The knob
//!
//! [`JournalConfig`] follows the [`crate::migration::MigrationConfig`]
//! idiom: default **off**, in which case the engine carries no journal
//! at all and is bit-identical to an engine built without one. Enabled,
//! journaling is a pure observer of the submission stream — it appends
//! to an in-memory log under its own mutex and never touches the clock,
//! the devices or any cache decision.
//!
//! # Ordering under concurrency
//!
//! The journal mutex defines the authoritative serial order of logged
//! operations. Under concurrent submitters this order is *a* valid
//! linearisation but need not equal the interleaving the shards actually
//! executed, so byte-exact convergence of replayed statistics is
//! guaranteed for serially-driven engines (the crash suite and the
//! recovery experiment drive exactly that way).

use hstorage_storage::{ClassifiedRequest, TrimCommand};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Configuration of the write-ahead journal. Defaults to disabled, in
/// which case the engine behaves — bit for bit — as if the journal did
/// not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// Master switch. Disabled (the default), no journal is attached.
    pub enabled: bool,
    /// Group-commit width: how many logical operations a batch holds
    /// before its commit record is appended. `1` (the default) commits
    /// every operation individually; larger values model group commit,
    /// widening the window a crash can tear — everything in an
    /// uncommitted batch is discarded on recovery. Must be ≥ 1.
    pub commit_interval: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            enabled: false,
            commit_interval: 1,
        }
    }
}

impl JournalConfig {
    /// The default: journaling disabled.
    pub fn off() -> Self {
        JournalConfig::default()
    }

    /// Journaling enabled with per-operation commit.
    pub fn on() -> Self {
        JournalConfig {
            enabled: true,
            ..JournalConfig::default()
        }
    }

    /// Sets the group-commit width (operations per batch).
    pub fn with_commit_interval(mut self, ops: u32) -> Self {
        self.commit_interval = ops;
        self.validate().expect("invalid journal configuration");
        self
    }

    /// Validates the knob set.
    pub fn validate(&self) -> Result<(), String> {
        if self.commit_interval == 0 {
            return Err("journal commit_interval must be >= 1".to_string());
        }
        Ok(())
    }
}

/// One logical operation the engine performed, recorded verbatim so
/// replay can re-execute it through the same entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A single classified request ([`crate::StorageSystem::submit`]).
    Submit(ClassifiedRequest),
    /// A batched submission ([`crate::StorageSystem::submit_batch`]),
    /// kept as one record because the batched path merges adjacent
    /// device transfers — replaying it as individual submits would
    /// diverge from the original device timing.
    SubmitBatch(Vec<ClassifiedRequest>),
    /// A TRIM command ([`crate::StorageSystem::trim`]).
    Trim(TrimCommand),
    /// A tier-migration pulse ([`crate::StorageSystem::migrate_idle`]).
    /// Only logged while migration is enabled (disabled, the pulse is a
    /// no-op on both sides of a crash).
    MigrationPulse,
    /// A statistics reset ([`crate::StorageSystem::reset_stats`]).
    StatsReset,
}

/// One record of the simulated persistent log.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Opens batch `batch`. Batch ids are consecutive from 0.
    BatchBegin {
        /// The batch being opened.
        batch: u64,
    },
    /// A logical operation inside the currently open batch, appended
    /// *before* the engine executes it (write-ahead).
    Op(JournalOp),
    /// Informational marker: a write-buffer drain ran on `shard` while
    /// the enclosing batch was open. Never replayed (the operation that
    /// triggered the drain re-drains deterministically); it exists so
    /// fault-injection tests can position a crash inside the drain
    /// window — after the buffer was torn down but before the commit.
    DrainNote {
        /// Index of the shard whose buffer drained.
        shard: usize,
        /// Dirty blocks the drain wrote back to the HDD.
        dirty_blocks: u64,
    },
    /// Commits batch `batch`: every op it frames has fully executed.
    BatchCommit {
        /// The batch being committed.
        batch: u64,
    },
}

#[derive(Default)]
struct OpenBatch {
    id: u64,
    ops: u32,
}

#[derive(Default)]
struct JournalState {
    records: Vec<JournalRecord>,
    next_batch: u64,
    open: Option<OpenBatch>,
}

/// The in-memory stand-in for a persistent journal device. The engine
/// appends through the crate-internal `op_begin` / `op_end` pair;
/// everything else is observation.
pub struct Journal {
    config: JournalConfig,
    state: Mutex<JournalState>,
}

impl Journal {
    /// Creates an empty journal with the given (validated) knob set.
    pub fn new(config: JournalConfig) -> Self {
        config.validate().expect("invalid journal configuration");
        Journal {
            config,
            state: Mutex::new(JournalState::default()),
        }
    }

    /// The knob set in force.
    pub fn config(&self) -> JournalConfig {
        self.config
    }

    /// Appends `op` write-ahead: opens a batch if none is open, then
    /// records the operation. The engine calls this *before* executing
    /// the operation.
    pub(crate) fn op_begin(&self, op: JournalOp) {
        let mut state = self.state.lock();
        if state.open.is_none() {
            let id = state.next_batch;
            state.next_batch += 1;
            state.records.push(JournalRecord::BatchBegin { batch: id });
            state.open = Some(OpenBatch { id, ops: 0 });
        }
        state.records.push(JournalRecord::Op(op));
        state.open.as_mut().expect("batch opened above").ops += 1;
    }

    /// Marks the enclosing operation fully executed; commits the open
    /// batch once it holds `commit_interval` operations.
    pub(crate) fn op_end(&self) {
        let mut state = self.state.lock();
        let Some(open) = state.open.as_ref() else {
            return;
        };
        if open.ops >= self.config.commit_interval {
            let id = open.id;
            state.records.push(JournalRecord::BatchCommit { batch: id });
            state.open = None;
        }
    }

    /// Records a write-buffer drain that ran inside the open batch.
    pub(crate) fn note_drain(&self, shard: usize, dirty_blocks: u64) {
        self.state.lock().records.push(JournalRecord::DrainNote {
            shard,
            dirty_blocks,
        });
    }

    /// Commits any open batch regardless of the group-commit width (a
    /// clean shutdown).
    pub fn seal(&self) {
        let mut state = self.state.lock();
        if let Some(open) = state.open.take() {
            let id = open.id;
            state.records.push(JournalRecord::BatchCommit { batch: id });
        }
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the current log — the "persisted" image a crash would
    /// leave behind. An open batch appears exactly as far as it got.
    pub fn snapshot(&self) -> JournalSnapshot {
        JournalSnapshot {
            records: self.state.lock().records.clone(),
        }
    }
}

/// An immutable image of the journal, as recovered from the simulated
/// persistent device. [`JournalSnapshot::crash_at`] is the fault
/// injector: it truncates the image at an arbitrary record offset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalSnapshot {
    records: Vec<JournalRecord>,
}

impl JournalSnapshot {
    /// Wraps an explicit record sequence (tests).
    pub fn from_records(records: Vec<JournalRecord>) -> Self {
        JournalSnapshot { records }
    }

    /// The records, in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the image holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Simulates a crash after exactly `offset` records reached the
    /// persistent device: everything past the offset is lost. An
    /// `offset` at or beyond the current length keeps the whole image
    /// (the crash happened after the last append).
    pub fn crash_at(&self, offset: usize) -> JournalSnapshot {
        JournalSnapshot {
            records: self.records[..offset.min(self.records.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{BlockRange, IoRequest, QosPolicy, RequestClass};

    fn op(lbn: u64) -> JournalOp {
        JournalOp::Submit(ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(lbn, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        ))
    }

    #[test]
    fn default_is_off_and_validates() {
        let config = JournalConfig::default();
        assert!(!config.enabled);
        assert_eq!(config.commit_interval, 1);
        assert!(config.validate().is_ok());
        assert!(JournalConfig::on().enabled);
        assert!(JournalConfig::on()
            .with_commit_interval(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_commit_interval_is_rejected() {
        let config = JournalConfig {
            enabled: true,
            commit_interval: 0,
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn per_op_commit_frames_every_op_in_its_own_batch() {
        let journal = Journal::new(JournalConfig::on());
        journal.op_begin(op(1));
        journal.op_end();
        journal.op_begin(op(2));
        journal.op_end();
        let snap = journal.snapshot();
        assert_eq!(
            snap.records(),
            &[
                JournalRecord::BatchBegin { batch: 0 },
                JournalRecord::Op(op(1)),
                JournalRecord::BatchCommit { batch: 0 },
                JournalRecord::BatchBegin { batch: 1 },
                JournalRecord::Op(op(2)),
                JournalRecord::BatchCommit { batch: 1 },
            ]
        );
    }

    #[test]
    fn group_commit_holds_the_batch_open_until_the_interval() {
        let journal = Journal::new(JournalConfig::on().with_commit_interval(2));
        journal.op_begin(op(1));
        journal.op_end();
        // One op in a width-2 batch: still open.
        assert_eq!(journal.len(), 2);
        journal.op_begin(op(2));
        journal.op_end();
        let snap = journal.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.records().last(),
            Some(&JournalRecord::BatchCommit { batch: 0 })
        );
    }

    #[test]
    fn seal_commits_the_open_batch() {
        let journal = Journal::new(JournalConfig::on().with_commit_interval(10));
        journal.op_begin(op(1));
        journal.op_end();
        journal.seal();
        assert_eq!(
            journal.snapshot().records().last(),
            Some(&JournalRecord::BatchCommit { batch: 0 })
        );
        // Sealing with nothing open is a no-op.
        journal.seal();
        assert_eq!(journal.len(), 3);
    }

    #[test]
    fn drain_notes_land_inside_the_open_batch() {
        let journal = Journal::new(JournalConfig::on());
        journal.op_begin(op(1));
        journal.note_drain(0, 11);
        journal.op_end();
        assert_eq!(
            journal.snapshot().records(),
            &[
                JournalRecord::BatchBegin { batch: 0 },
                JournalRecord::Op(op(1)),
                JournalRecord::DrainNote {
                    shard: 0,
                    dirty_blocks: 11
                },
                JournalRecord::BatchCommit { batch: 0 },
            ]
        );
    }

    #[test]
    fn crash_at_truncates_and_clamps() {
        let journal = Journal::new(JournalConfig::on());
        journal.op_begin(op(1));
        journal.op_end();
        let snap = journal.snapshot();
        assert_eq!(snap.crash_at(0).len(), 0);
        assert_eq!(snap.crash_at(2).len(), 2);
        assert_eq!(snap.crash_at(999), snap);
    }
}
