//! Single-device baselines: HDD-only (the paper's baseline case) and
//! SSD-only (the paper's ideal case).
//!
//! Both ignore the DSS classification entirely — they are legacy block
//! devices. Their statistics are enum-indexed counter arrays
//! ([`LocalCacheStats`]) behind a mutex so the `&self` [`StorageSystem`]
//! interface can be served to concurrent callers without the hot path
//! walking a `BTreeMap`; the devices themselves are already
//! interior-mutable.

use crate::stats::{CacheStats, LocalCacheStats};
use crate::system::StorageSystem;
use hstorage_storage::{
    ClassifiedRequest, HddDevice, SimClock, SsdDevice, StorageDevice, TrimCommand,
};
use parking_lot::Mutex;
use std::time::Duration;

/// Every request is served by the hard disk.
pub struct HddOnly {
    clock: SimClock,
    hdd: HddDevice,
    stats: Mutex<LocalCacheStats>,
}

impl HddOnly {
    /// Creates an HDD-only configuration with the paper's disk model.
    pub fn new() -> Self {
        let clock = SimClock::new();
        Self::with_device(HddDevice::cheetah(clock.clone()), clock)
    }

    /// Creates an HDD-only configuration over an explicitly constructed
    /// disk. The device must share `clock`.
    pub fn with_device(hdd: HddDevice, clock: SimClock) -> Self {
        HddOnly {
            hdd,
            clock,
            stats: Mutex::new(LocalCacheStats::new()),
        }
    }
}

impl Default for HddOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageSystem for HddOnly {
    fn name(&self) -> &str {
        "HDD-only"
    }

    fn submit(&self, req: ClassifiedRequest) {
        self.stats.lock().record_class(req.class, req.blocks(), 0);
        self.hdd.serve(&req.io);
    }

    fn trim(&self, _cmd: &TrimCommand) {}

    fn stats(&self) -> CacheStats {
        let mut s = self.stats.lock().snapshot();
        s.hdd = Some(self.hdd.stats());
        s
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&self) {
        self.stats.lock().reset();
        self.hdd.reset_stats();
    }
}

/// Every request is served by the SSD — the ideal case of the evaluation.
pub struct SsdOnly {
    clock: SimClock,
    ssd: SsdDevice,
    stats: Mutex<LocalCacheStats>,
}

impl SsdOnly {
    /// Creates an SSD-only configuration with the Intel 320 model.
    pub fn new() -> Self {
        let clock = SimClock::new();
        Self::with_device(SsdDevice::intel_320(clock.clone()), clock)
    }

    /// Creates an SSD-only configuration over an explicitly constructed
    /// SSD. The device must share `clock`.
    pub fn with_device(ssd: SsdDevice, clock: SimClock) -> Self {
        SsdOnly {
            ssd,
            clock,
            stats: Mutex::new(LocalCacheStats::new()),
        }
    }
}

impl Default for SsdOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageSystem for SsdOnly {
    fn name(&self) -> &str {
        "SSD-only"
    }

    fn submit(&self, req: ClassifiedRequest) {
        self.stats.lock().record_class(req.class, req.blocks(), 0);
        self.ssd.serve(&req.io);
    }

    fn trim(&self, _cmd: &TrimCommand) {}

    fn stats(&self) -> CacheStats {
        let mut s = self.stats.lock().snapshot();
        s.ssd = Some(self.ssd.stats());
        s
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn reset_stats(&self) {
        self.stats.lock().reset();
        self.ssd.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_storage::{BlockRange, IoRequest, QosPolicy, RequestClass};

    fn rand_read(start: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    }

    fn seq_read(start: u64, len: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, len), true),
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        )
    }

    #[test]
    fn ssd_only_much_faster_for_random() {
        let hdd = HddOnly::new();
        let ssd = SsdOnly::new();
        for i in 0..200u64 {
            hdd.submit(rand_read(i * 10_000));
            ssd.submit(rand_read(i * 10_000));
        }
        assert!(hdd.now() > ssd.now() * 20);
    }

    #[test]
    fn comparable_for_sequential() {
        let hdd = HddOnly::new();
        let ssd = SsdOnly::new();
        for i in 0..100u64 {
            hdd.submit(seq_read(i * 128, 128));
            ssd.submit(seq_read(i * 128, 128));
        }
        let ratio = hdd.now().as_secs_f64() / ssd.now().as_secs_f64();
        assert!(ratio < 3.0, "HDD/SSD sequential ratio = {ratio}");
    }

    #[test]
    fn stats_record_classes_without_hits() {
        let hdd = HddOnly::new();
        hdd.submit(seq_read(0, 64));
        hdd.submit(rand_read(1_000));
        let s = hdd.stats();
        assert_eq!(s.class(RequestClass::Sequential).accessed_blocks, 64);
        assert_eq!(s.class(RequestClass::Random).accessed_blocks, 1);
        assert_eq!(s.totals().cache_hits, 0);
        assert_eq!(hdd.resident_blocks(), 0);
    }
}
