//! Request tracing.
//!
//! [`TraceRecorder`] wraps any [`StorageSystem`] and records the classified
//! request stream that reaches it. This is the tool used to debug policy
//! assignment (which priority did a request actually carry?) and to build
//! Figure-4-style breakdowns for new workloads without instrumenting the
//! engine. Traces can also be replayed against a different storage
//! configuration, which is how the cache microbenches compare managers on
//! identical input.
//!
//! The recorder shares the `&self` [`StorageSystem`] interface, so the
//! trace buffer lives behind a mutex; with concurrent callers the recorded
//! order is the arrival order at the recorder (one interleaving of the
//! concurrent submits).

use crate::stats::CacheStats;
use crate::system::StorageSystem;
use hstorage_storage::{ClassifiedRequest, RequestClass, TrimCommand};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A classified I/O request.
    Request(ClassifiedRequest),
    /// A TRIM command.
    Trim(TrimCommand),
}

/// A recorded request trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of blocks requested, per request class.
    pub fn blocks_by_class(&self) -> BTreeMap<RequestClass, u64> {
        let mut map = BTreeMap::new();
        for event in &self.events {
            if let TraceEvent::Request(req) = event {
                *map.entry(req.class).or_default() += req.blocks();
            }
        }
        map
    }

    /// Number of blocks requested, per QoS policy.
    pub fn blocks_by_policy(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for event in &self.events {
            if let TraceEvent::Request(req) = event {
                *map.entry(req.policy.to_string()).or_default() += req.blocks();
            }
        }
        map
    }

    /// Replays the trace against another storage system and returns its
    /// statistics and elapsed simulated time.
    pub fn replay(&self, target: &dyn StorageSystem) -> (CacheStats, Duration) {
        let start = target.now();
        for event in &self.events {
            match event {
                TraceEvent::Request(req) => target.submit(*req),
                TraceEvent::Trim(cmd) => target.trim(cmd),
            }
        }
        (target.stats(), target.now().saturating_sub(start))
    }
}

/// A [`StorageSystem`] decorator that records every request it forwards.
pub struct TraceRecorder<S> {
    inner: S,
    trace: Mutex<Trace>,
}

impl<S: StorageSystem> TraceRecorder<S> {
    /// Wraps `inner`, recording all traffic sent to it.
    pub fn new(inner: S) -> Self {
        TraceRecorder {
            inner,
            trace: Mutex::new(Trace::default()),
        }
    }

    /// A snapshot of the trace recorded so far.
    pub fn trace(&self) -> Trace {
        self.trace.lock().clone()
    }

    /// Consumes the recorder, returning the wrapped system and the trace.
    pub fn into_parts(self) -> (S, Trace) {
        (self.inner, self.trace.into_inner())
    }

    /// The wrapped storage system.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: StorageSystem> StorageSystem for TraceRecorder<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn submit(&self, req: ClassifiedRequest) {
        self.trace.lock().events.push(TraceEvent::Request(req));
        self.inner.submit(req);
    }

    fn trim(&self, cmd: &TrimCommand) {
        self.trace.lock().events.push(TraceEvent::Trim(cmd.clone()));
        self.inner.trim(cmd);
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn resident_blocks(&self) -> u64 {
        self.inner.resident_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridCache;
    use crate::lru_cache::LruCache;
    use hstorage_storage::{BlockRange, IoRequest, PolicyConfig, QosPolicy};

    fn req(start: u64, class: RequestClass, policy: QosPolicy) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(start, 1), false),
            class,
            policy,
        )
    }

    #[test]
    fn records_requests_and_trims_in_order() {
        let rec = TraceRecorder::new(HybridCache::new(PolicyConfig::paper_default(), 64));
        rec.submit(req(1, RequestClass::Random, QosPolicy::priority(2)));
        rec.submit(req(2, RequestClass::TemporaryData, QosPolicy::priority(1)));
        rec.trim(&TrimCommand::single(BlockRange::new(2u64, 1)));
        assert_eq!(rec.trace().len(), 3);
        assert!(matches!(rec.trace().events[2], TraceEvent::Trim(_)));
        // The wrapped cache saw the same traffic.
        assert_eq!(rec.stats().totals().accessed_blocks, 2);
        assert_eq!(rec.resident_blocks(), 1);
    }

    #[test]
    fn breakdown_by_class_and_policy() {
        let rec = TraceRecorder::new(HybridCache::new(PolicyConfig::paper_default(), 64));
        for i in 0..5 {
            rec.submit(req(i, RequestClass::Random, QosPolicy::priority(2)));
        }
        rec.submit(req(
            100,
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        let by_class = rec.trace().blocks_by_class();
        assert_eq!(by_class[&RequestClass::Random], 5);
        assert_eq!(by_class[&RequestClass::Sequential], 1);
        let by_policy = rec.trace().blocks_by_policy();
        assert_eq!(by_policy["P2"], 5);
    }

    #[test]
    fn replay_reproduces_identical_behaviour_on_an_identical_system() {
        let rec = TraceRecorder::new(HybridCache::new(PolicyConfig::paper_default(), 32));
        for round in 0..3u64 {
            for i in 0..20u64 {
                rec.submit(req(i, RequestClass::Random, QosPolicy::priority(2)));
            }
            let _ = round;
        }
        let (original, trace) = rec.into_parts();

        let replayed = HybridCache::new(PolicyConfig::paper_default(), 32);
        let (stats, elapsed) = trace.replay(&replayed);
        assert_eq!(
            stats.totals(),
            original.stats().totals(),
            "replay on an identical system must produce identical totals"
        );
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn replay_lets_managers_be_compared_on_identical_input() {
        // Record a pollution-heavy stream against hStorage-DB...
        let rec = TraceRecorder::new(HybridCache::new(PolicyConfig::paper_default(), 64));
        for i in 0..64u64 {
            rec.submit(req(i, RequestClass::Random, QosPolicy::priority(2)));
        }
        rec.submit(ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(1_000u64, 512), true),
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        ));
        for i in 0..64u64 {
            rec.submit(req(i, RequestClass::Random, QosPolicy::priority(2)));
        }
        let (hybrid, trace) = rec.into_parts();

        // ...and replay it against the LRU baseline.
        let lru = LruCache::new(64);
        let (lru_stats, _) = trace.replay(&lru);

        let hybrid_hits = hybrid.stats().class(RequestClass::Random).cache_hits;
        let lru_hits = lru_stats.class(RequestClass::Random).cache_hits;
        // The sequential scan wipes the LRU cache but not the hybrid one.
        assert!(hybrid_hits > lru_hits);
    }
}
