//! The policy assignment table (Table 1, Rules 1–5).
//!
//! This is the storage-manager extension at the heart of hStorage-DB: given
//! the semantic information of a data request, it returns the QoS policy to
//! embed into the outgoing I/O request.
//!
//! | Request type | Priority | Rule |
//! |---|---|---|
//! | temporary data requests | 1 | Rule 3 |
//! | random requests | 2 … N−2 | Rules 2, 5 |
//! | sequential requests | N−1 (non-caching, non-eviction) | Rule 1 |
//! | TRIM to temporary data | N (non-caching, eviction) | Rule 3 |
//! | updates | write buffer | Rule 4 |

use crate::concurrency::ConcurrencyRegistry;
use crate::semantic::{AccessPattern, SemanticInfo};
use hstorage_storage::{PolicyConfig, QosPolicy, RequestClass};
use serde::{Deserialize, Serialize};

/// The policy assignment table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyAssignmentTable {
    config: PolicyConfig,
}

impl PolicyAssignmentTable {
    /// Creates a table for the given policy configuration.
    pub fn new(config: PolicyConfig) -> Self {
        config.validate().expect("invalid policy configuration");
        PolicyAssignmentTable { config }
    }

    /// The policy configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Assigns a QoS policy to a request with the given semantic
    /// information.
    ///
    /// * `registry` supplies the shared state used by Rule 5; pass the
    ///   executor's registry even for a single query — the registry falls
    ///   back to the query-local values when it has no entry.
    /// * `query_bounds` are the issuing query's own `(llow, lhigh)`.
    pub fn assign(
        &self,
        info: &SemanticInfo,
        registry: &ConcurrencyRegistry,
        query_bounds: (u32, u32),
    ) -> QosPolicy {
        match info.request_class() {
            // Rule 4: updates are absorbed by the write buffer.
            RequestClass::Update => QosPolicy::WriteBuffer,
            // Rule 3: temporary data lives at the highest priority during
            // its lifetime...
            RequestClass::TemporaryData => QosPolicy::priority(1),
            // ...and is demoted for immediate eviction at end of lifetime.
            RequestClass::TemporaryDataTrim => QosPolicy::NonCachingEviction,
            // Rule 1: sequential requests never pollute the cache.
            RequestClass::Sequential => QosPolicy::NonCachingNonEviction,
            // Rules 2 and 5: random requests get a priority derived from the
            // plan level of the lowest operator accessing the object, over
            // the global level bounds.
            RequestClass::Random => {
                debug_assert_eq!(info.pattern, AccessPattern::Random);
                let level = info.level.unwrap_or(query_bounds.0);
                let prio = registry.random_priority(&self.config, info.oid, level, query_bounds);
                QosPolicy::Priority(prio)
            }
        }
    }
}

impl Default for PolicyAssignmentTable {
    fn default() -> Self {
        Self::new(PolicyConfig::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectId;
    use crate::semantic::ContentType;
    use hstorage_storage::CachePriority;

    fn table() -> PolicyAssignmentTable {
        PolicyAssignmentTable::default()
    }

    fn reg() -> ConcurrencyRegistry {
        ConcurrencyRegistry::new()
    }

    #[test]
    fn rule_1_sequential_requests() {
        let t = table();
        let info = SemanticInfo::sequential_scan(ObjectId(1), 0);
        assert_eq!(
            t.assign(&info, &reg(), (0, 0)),
            QosPolicy::NonCachingNonEviction
        );
    }

    #[test]
    fn rule_2_random_requests_by_level() {
        let t = table();
        let registry = reg();
        let low = SemanticInfo::random_access(ObjectId(1), ContentType::Index, 0);
        let high = SemanticInfo::random_access(ObjectId(2), ContentType::RegularTable, 2);
        assert_eq!(
            t.assign(&low, &registry, (0, 2)),
            QosPolicy::Priority(CachePriority(2))
        );
        assert_eq!(
            t.assign(&high, &registry, (0, 2)),
            QosPolicy::Priority(CachePriority(4))
        );
    }

    #[test]
    fn rule_3_temporary_data() {
        let t = table();
        let read = SemanticInfo::temporary(ObjectId(9), false);
        let write = SemanticInfo::temporary(ObjectId(9), true);
        let delete = SemanticInfo::temporary_delete(ObjectId(9));
        assert_eq!(t.assign(&read, &reg(), (0, 0)), QosPolicy::priority(1));
        assert_eq!(t.assign(&write, &reg(), (0, 0)), QosPolicy::priority(1));
        assert_eq!(
            t.assign(&delete, &reg(), (0, 0)),
            QosPolicy::NonCachingEviction
        );
    }

    #[test]
    fn rule_4_updates() {
        let t = table();
        let info = SemanticInfo::update(ObjectId(3));
        assert_eq!(t.assign(&info, &reg(), (0, 0)), QosPolicy::WriteBuffer);
    }

    #[test]
    fn rule_5_concurrent_queries_agree_on_shared_object() {
        use crate::plan::{Access, OperatorKind, PlanNode, PlanTree};

        let index_scan = |index: u32, table_oid: u32| {
            PlanNode::leaf(
                OperatorKind::IndexScan,
                Access::IndexScan {
                    index: ObjectId(index),
                    table: ObjectId(table_oid),
                    lookups: 10,
                    index_hot_fraction: 1.0,
                    table_hot_fraction: 1.0,
                },
            )
        };
        // Query A reaches table 1 at level 0; query B reaches the same
        // table from under a join, at level 1.
        let plan_a = PlanTree::new("A", index_scan(10, 1));
        let plan_b = PlanTree::new(
            "B",
            PlanNode::node(
                OperatorKind::HashJoin,
                Access::None,
                vec![index_scan(20, 3), index_scan(10, 1)],
            ),
        );

        let t = table();
        let registry = reg();
        let _ta = registry.register_query(&plan_a);
        let _tb = registry.register_query(&plan_b);

        // Rule 5: both queries' requests to table 1 carry the priority of
        // the *lowest* registered level (0), not each query's own level.
        let from_a = SemanticInfo::random_access(ObjectId(1), ContentType::RegularTable, 0);
        let from_b = SemanticInfo::random_access(ObjectId(1), ContentType::RegularTable, 1);
        let pa = t.assign(&from_a, &registry, (0, 0));
        let pb = t.assign(&from_b, &registry, (0, 1));
        assert_eq!(pa, pb);
        assert_eq!(pa, QosPolicy::Priority(CachePriority(2)));
    }

    #[test]
    fn function_1_assigns_one_priority_per_level() {
        // Paper default: range [n1, n2] = [2, 6], so with level bounds
        // (0, 4) we get Cprio = Lgap = 4 and p(i) = 2 + i exactly.
        let t = table();
        let registry = reg();
        for level in 0..=4u32 {
            let info =
                SemanticInfo::random_access(ObjectId(level + 1), ContentType::RegularTable, level);
            assert_eq!(
                t.assign(&info, &registry, (0, 4)),
                QosPolicy::Priority(CachePriority(2 + level as u8)),
                "level {level} must map to priority {}",
                2 + level
            );
        }
    }

    #[test]
    fn table_1_priority_layout() {
        // Reconstructs Table 1: temporary = 1, random ∈ [2, N−2],
        // sequential = N−1, TRIM = N, updates = write buffer.
        let t = table();
        let cfg = t.config();
        assert_eq!(cfg.random_range_high, 2);
        assert_eq!(cfg.random_range_low, cfg.total_priorities - 2);
        assert_eq!(
            cfg.resolve(QosPolicy::NonCachingNonEviction),
            CachePriority(cfg.total_priorities - 1)
        );
        assert_eq!(
            cfg.resolve(QosPolicy::NonCachingEviction),
            CachePriority(cfg.total_priorities)
        );
    }
}
