//! The query-service front end: a bounded worker pool over a bounded
//! submission queue.
//!
//! The library drivers ([`crate::run_concurrent`], [`crate::run_threaded`])
//! bind concurrency to *streams*: one cooperative slice or one pool slot per
//! stream. That shape cannot express a server sustaining tens of thousands
//! of logical query streams, and the obvious extension — a thread per
//! stream — is exactly the thread-explosion bug this module replaces. The
//! service decouples the two axes:
//!
//! * **logical concurrency** — any number of in-flight [`QueryRequest`]s,
//!   each tagged with the logical stream it belongs to;
//! * **physical concurrency** — a fixed pool of
//!   [`ServiceConfig::workers`] OS threads (default: available
//!   parallelism), each owning one [`QueryExecutor`] (its own DBMS buffer
//!   pool and RNG), all sharing one storage system and one
//!   [`ConcurrencyRegistry`] so Rule 5 priority assignment sees every
//!   concurrently running query.
//!
//! Requests flow through a bounded queue of [`ServiceConfig::queue_depth`]
//! entries. [`QueryService::submit`] blocks when the queue is full
//! (**backpressure** — a closed-loop client is paced by the service), while
//! [`QueryService::try_submit`] fails fast with [`SubmitError::QueueFull`]
//! (**admission control** — an open-loop client sheds load instead of
//! queueing without bound). Each completed request is answered on the reply
//! channel the submitter attached to it, so completion notification is
//! per-stream: every logical stream (or any grouping the caller chooses)
//! can wait on its own channel.
//!
//! [`run_streams_service`] is the closed-loop workload driver built on
//! top: it keeps every logical stream exactly one request deep, records one
//! simulated-time latency sample per query into a
//! [`LatencyHistogram`], and returns results grouped by stream. With one
//! worker the execution order is fully deterministic, which is what the
//! `bench_gate` latency rows pin.
//!
//! Statistics are **sharded per worker**: each worker accumulates its own
//! completion count and latency samples ([`WorkerStats`]) thread-locally
//! and hands them over only at join time, so reply-path accounting never
//! takes a lock the submit path (or another worker) contends on. The
//! driver merges the shards in worker-index order into the aggregate
//! histogram, which keeps the single-worker report bit-identical to the
//! old driver-side accounting. The report also carries the storage
//! system's [`ContentionCounters`], so a run exposes how often the cache
//! hot path went lock-free.

use crate::catalog::Catalog;
use crate::concurrency::ConcurrencyRegistry;
use crate::executor::{CompletedQuery, ExecutorConfig, QueryExecutor, StreamSpec};
use crate::plan::PlanTree;
use crate::stats::QueryStats;
use hstorage_cache::{ContentionCounters, LatencyHistogram, StorageSystem};
use hstorage_storage::{BlockRange, PolicyConfig};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs of the query service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker threads. `0` means one per unit of available
    /// hardware parallelism.
    pub workers: usize,
    /// Capacity of the bounded submission queue. [`QueryService::submit`]
    /// blocks and [`QueryService::try_submit`] fails once this many
    /// requests are queued (requests being executed no longer count).
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

impl ServiceConfig {
    /// The effective worker count: `workers`, or the hardware parallelism
    /// when `workers` is zero.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            available_parallelism()
        }
    }
}

/// The machine's available hardware parallelism (1 if unknown).
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One unit of work for the service: a query plan tagged with the logical
/// stream it belongs to and the channel its [`QueryResponse`] goes to.
pub struct QueryRequest {
    /// Index of the logical stream this query belongs to (echoed in the
    /// response; the service itself only passes it through).
    pub stream: usize,
    /// The query to compile and run.
    pub plan: PlanTree,
    /// Where the completion notification is delivered. Submitters that
    /// want per-stream notification attach one channel per stream; a
    /// central dispatcher can share one channel across all streams.
    pub reply: mpsc::Sender<QueryResponse>,
}

/// The completion notification for one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The logical stream the request carried.
    pub stream: usize,
    /// Execution statistics of the query.
    pub stats: QueryStats,
    /// Simulated time between the worker picking the request up and the
    /// query completing — the service-side request latency, excluding
    /// queueing delay (which simulated time does not observe: the sim
    /// clock only advances while requests execute).
    pub sim_latency: Duration,
}

/// Why a submission was rejected.
pub enum SubmitError {
    /// The queue is at [`ServiceConfig::queue_depth`]: the request is
    /// handed back so an open-loop caller can shed or retry it.
    QueueFull(QueryRequest),
    /// The service has been shut down; the request is handed back.
    Closed(QueryRequest),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue is full"),
            SubmitError::Closed(_) => write!(f, "query service is shut down"),
        }
    }
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The rejected request (a plan plus a channel) is not `Debug`;
        // the variant name is the informative part.
        match self {
            SubmitError::QueueFull(_) => f.write_str("QueueFull(..)"),
            SubmitError::Closed(_) => f.write_str("Closed(..)"),
        }
    }
}

/// Bounded MPMC queue: `Mutex<VecDeque>` plus two condition variables
/// (producers wait on `not_full`, workers on `not_empty`).
struct SubmissionQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState {
    items: VecDeque<QueryRequest>,
    capacity: usize,
    closed: bool,
}

impl SubmissionQueue {
    fn new(capacity: usize) -> Self {
        SubmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking push: waits while the queue is full (backpressure).
    fn push(&self, req: QueryRequest) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(SubmitError::Closed(req));
            }
            if state.items.len() < state.capacity {
                state.items.push_back(req);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Non-blocking push: fails when the queue is full (admission control).
    fn try_push(&self, req: QueryRequest) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed(req));
        }
        if state.items.len() >= state.capacity {
            return Err(SubmitError::QueueFull(req));
        }
        state.items.push_back(req);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` once the queue is closed and drained.
    fn pop(&self) -> Option<QueryRequest> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(req) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(req);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn queued(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }
}

/// Per-worker statistics shard: everything one service worker accounted
/// for entirely thread-locally (no shared counter is touched on the reply
/// path). Collected at join time and reported through
/// [`ServiceReport::per_worker`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Index of the worker (its spawn order, `0..worker_count`).
    pub worker: usize,
    /// Number of requests this worker completed.
    pub completed: u64,
    /// One simulated-latency sample per completed request, in the order
    /// this worker executed them.
    pub latency: LatencyHistogram,
}

impl WorkerStats {
    fn new(worker: usize) -> Self {
        WorkerStats {
            worker,
            completed: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

/// The request/response query service: a fixed worker pool consuming
/// [`QueryRequest`]s from a bounded submission queue.
///
/// Each worker owns a [`QueryExecutor`] (its own DBMS buffer pool; RNG
/// seeded `config.seed + worker index`) and a clone of the catalog whose
/// temporary region is relocated to a disjoint per-worker copy (worker 0
/// keeps the original placement), so concurrent spills never alias. All
/// workers share the storage system and the concurrency registry.
///
/// Dropping the service (or calling [`QueryService::shutdown`]) closes the
/// queue, lets the workers drain it, and joins them.
pub struct QueryService {
    queue: Arc<SubmissionQueue>,
    workers: Vec<std::thread::JoinHandle<WorkerStats>>,
}

impl QueryService {
    /// Starts the worker pool.
    pub fn start(
        config: ExecutorConfig,
        service: ServiceConfig,
        policy: PolicyConfig,
        registry: &ConcurrencyRegistry,
        catalog: &Catalog,
        storage: &Arc<dyn StorageSystem>,
    ) -> Self {
        assert!(service.queue_depth > 0, "queue_depth must be positive");
        let worker_count = service.effective_workers();
        let queue = Arc::new(SubmissionQueue::new(service.queue_depth));
        let workers = (0..worker_count)
            .map(|idx| {
                let queue = Arc::clone(&queue);
                let registry = registry.clone();
                let storage = Arc::clone(storage);
                let mut catalog = catalog.clone();
                // Same aliasing rule as `run_threaded`, but per worker
                // slot instead of per stream: a worker runs one query at a
                // time, and a spill's lifetime is contained in one query,
                // so disjoint per-worker temp regions suffice no matter
                // how many logical streams are in flight. A single worker
                // keeps the original placement, matching plain
                // `run_query`.
                if worker_count > 1 {
                    let region = catalog.temp_region();
                    let start = region.start.0 + idx as u64 * region.len;
                    catalog.set_temp_region(BlockRange::new(start, region.len));
                }
                let worker_config = ExecutorConfig {
                    seed: config.seed.wrapping_add(idx as u64),
                    ..config
                };
                std::thread::spawn(move || {
                    let mut executor =
                        QueryExecutor::with_registry(worker_config, policy, registry);
                    // Accounting is sharded: this worker's completion
                    // count and latency samples live on its own stack and
                    // are handed over only at join time.
                    let mut worker_stats = WorkerStats::new(idx);
                    while let Some(req) = queue.pop() {
                        let started = storage.now();
                        let stats = executor.run_query(&req.plan, &mut catalog, storage.as_ref());
                        let sim_latency = storage.now().saturating_sub(started);
                        worker_stats.completed += 1;
                        worker_stats.latency.record(sim_latency);
                        // A dropped receiver means the submitter stopped
                        // listening; the query still ran, drop the reply.
                        let _ = req.reply.send(QueryResponse {
                            stream: req.stream,
                            stats,
                            sim_latency,
                        });
                    }
                    worker_stats
                })
            })
            .collect();
        QueryService { queue, workers }
    }

    /// Submits a request, blocking while the queue is full
    /// (backpressure). Fails only when the service is shut down, handing
    /// the request back.
    pub fn submit(&self, req: QueryRequest) -> Result<(), SubmitError> {
        self.queue.push(req)
    }

    /// Submits a request without blocking: fails with
    /// [`SubmitError::QueueFull`] when the queue is at capacity
    /// (admission control for open-loop clients) and hands the request
    /// back.
    pub fn try_submit(&self, req: QueryRequest) -> Result<(), SubmitError> {
        self.queue.try_push(req)
    }

    /// Number of requests currently waiting in the submission queue (not
    /// counting those being executed).
    pub fn queued_requests(&self) -> usize {
        self.queue.queued()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue, lets the workers drain the remaining requests,
    /// joins them, and returns each worker's statistics shard in worker
    /// order.
    pub fn shutdown(mut self) -> Vec<WorkerStats> {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> Vec<WorkerStats> {
        self.queue.close();
        // Spawn order == worker index, so the collected shards arrive
        // already sorted by `WorkerStats::worker`.
        self.workers
            .drain(..)
            .map(|handle| handle.join().expect("service worker panicked"))
            .collect()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let _ = self.shutdown_in_place();
    }
}

/// The result of a [`run_streams_service`] run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Completed queries grouped by stream, in stream order (the same
    /// shape [`crate::run_threaded`] returns).
    pub completed: Vec<CompletedQuery>,
    /// One simulated-latency sample per completed query: the per-worker
    /// shards merged in worker-index order.
    pub latency: LatencyHistogram,
    /// Each worker's thread-local statistics shard, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// The storage system's lock-contention counters over the whole run
    /// (lock acquisitions vs optimistic fast-path hits on the cache hot
    /// path) — the signal future regression gates key on.
    pub contention: ContentionCounters,
}

/// Runs query streams through a [`QueryService`] in a closed loop: every
/// logical stream keeps exactly one request in flight, submitting its next
/// query only when the previous one completes.
///
/// This is the entry point that sustains 10⁴–10⁵ logical streams over a
/// bounded worker pool: driver-side state is one cursor per stream, and
/// the service never sees more threads than
/// [`ServiceConfig::effective_workers`] plus the driver. Backpressure from
/// the bounded queue paces the driver's submissions.
///
/// With `service.workers == 1` the execution order — and therefore the
/// simulated clock, all statistics and every latency sample — is fully
/// deterministic: requests are executed in submission order by a single
/// worker whose executor matches plain [`QueryExecutor::run_query`].
///
/// Results are grouped by stream, in stream order.
pub fn run_streams_service(
    config: ExecutorConfig,
    service: ServiceConfig,
    policy: PolicyConfig,
    registry: &ConcurrencyRegistry,
    streams: &[StreamSpec],
    catalog: &Catalog,
    storage: &Arc<dyn StorageSystem>,
) -> ServiceReport {
    let svc = QueryService::start(config, service, policy, registry, catalog, storage);
    let (reply, responses) = mpsc::channel();
    let mut cursors: Vec<usize> = vec![0; streams.len()];
    let mut results: Vec<Vec<QueryStats>> = streams.iter().map(|_| Vec::new()).collect();
    let mut in_flight = 0usize;

    let submit = |svc: &QueryService, idx: usize, query: usize| {
        svc.submit(QueryRequest {
            stream: idx,
            plan: streams[idx].queries[query].clone(),
            reply: reply.clone(),
        })
        .unwrap_or_else(|e| panic!("service rejected a closed-loop submit: {e}"));
    };

    // Open every stream: one request in flight per non-empty stream.
    for (idx, stream) in streams.iter().enumerate() {
        if !stream.queries.is_empty() {
            submit(&svc, idx, 0);
            cursors[idx] = 1;
            in_flight += 1;
        }
    }
    // Closed loop: each completion triggers the stream's next submission.
    while in_flight > 0 {
        let resp = responses.recv().expect("service workers hung up early");
        in_flight -= 1;
        results[resp.stream].push(resp.stats);
        let next = cursors[resp.stream];
        if next < streams[resp.stream].queries.len() {
            submit(&svc, resp.stream, next);
            cursors[resp.stream] = next + 1;
            in_flight += 1;
        }
    }
    let per_worker = svc.shutdown();
    // Merge the worker shards in worker-index order: with one worker this
    // reproduces the old driver-side recording order exactly, so the
    // deterministic latency rows are unchanged.
    let mut latency = LatencyHistogram::new();
    for shard in &per_worker {
        latency.merge(&shard.latency);
    }
    let contention = storage.stats().contention;

    let completed = streams
        .iter()
        .zip(results)
        .flat_map(|(stream, stats)| {
            stats.into_iter().map(|stats| CompletedQuery {
                stream: stream.name.clone(),
                stats,
            })
        })
        .collect();
    ServiceReport {
        completed,
        latency,
        per_worker,
        contention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectKind;
    use crate::plan::{Access, OperatorKind, PlanNode};
    use hstorage_cache::{StorageConfig, StorageConfigKind};

    fn small_catalog() -> (Catalog, crate::catalog::ObjectId) {
        let mut cat = Catalog::new();
        let table = cat.register("orders", ObjectKind::Table, BlockRange::new(0u64, 400));
        cat.set_temp_region(BlockRange::new(50_000u64, 1_000));
        (cat, table)
    }

    fn seq_plan(table: crate::catalog::ObjectId) -> PlanTree {
        PlanTree::new(
            "seq",
            PlanNode::leaf(OperatorKind::SeqScan, Access::SeqScan { table, passes: 1 }),
        )
    }

    fn cfg() -> ExecutorConfig {
        ExecutorConfig {
            buffer_pool_blocks: 128,
            ..ExecutorConfig::default()
        }
    }

    fn shared_storage() -> Arc<dyn StorageSystem> {
        StorageConfig::new(StorageConfigKind::HStorageDb, 2_000).build_shared()
    }

    #[test]
    fn closed_loop_driver_completes_every_stream() {
        let (cat, table) = small_catalog();
        let storage = shared_storage();
        let registry = ConcurrencyRegistry::new();
        let streams: Vec<StreamSpec> = (0..100)
            .map(|i| StreamSpec {
                name: format!("s{i}"),
                queries: vec![seq_plan(table), seq_plan(table)],
            })
            .collect();
        let report = run_streams_service(
            cfg(),
            ServiceConfig {
                workers: 3,
                queue_depth: 8,
            },
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &storage,
        );
        assert_eq!(report.completed.len(), 200);
        assert_eq!(report.latency.len(), 200);
        assert_eq!(registry.active_queries(), 0);
        assert!(report.latency.p50().expect("non-empty") > Duration::ZERO);
        // The statistics shards cover every completion exactly once and
        // arrive in worker order.
        assert_eq!(report.per_worker.len(), 3);
        let sharded: u64 = report.per_worker.iter().map(|w| w.completed).sum();
        assert_eq!(sharded, 200);
        for (i, shard) in report.per_worker.iter().enumerate() {
            assert_eq!(shard.worker, i);
            assert_eq!(shard.latency.len() as u64, shard.completed);
        }
        // The storage hot path was exercised, so the contention counters
        // are live.
        assert!(report.contention.lock_acquisitions > 0);
        // Grouped by stream, in stream order, two entries each.
        for (i, pair) in report.completed.chunks(2).enumerate() {
            assert!(pair.iter().all(|q| q.stream == format!("s{i}")));
        }
    }

    #[test]
    fn empty_streams_produce_no_results() {
        let (cat, table) = small_catalog();
        let storage = shared_storage();
        let registry = ConcurrencyRegistry::new();
        let streams = vec![
            StreamSpec {
                name: "empty".into(),
                queries: vec![],
            },
            StreamSpec {
                name: "one".into(),
                queries: vec![seq_plan(table)],
            },
        ];
        let report = run_streams_service(
            cfg(),
            ServiceConfig::default(),
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &storage,
        );
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].stream, "one");
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        let (cat, table) = small_catalog();
        let storage = shared_storage();
        let registry = ConcurrencyRegistry::new();
        // No worker ever pops: the queue must fill to exactly its depth.
        let svc = QueryService::start(
            cfg(),
            ServiceConfig {
                workers: 1,
                queue_depth: 2,
            },
            PolicyConfig::paper_default(),
            &registry,
            &cat,
            &storage,
        );
        // Flood far faster than one worker can drain (a try_submit is a
        // mutex push; a query is thousands of times more work): the first
        // rejection must be QueueFull with the request handed back intact.
        let (reply, responses) = mpsc::channel();
        let mut accepted = 0usize;
        let mut rejected = None;
        for i in 0..10_000 {
            match svc.try_submit(QueryRequest {
                stream: i,
                plan: seq_plan(table),
                reply: reply.clone(),
            }) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        assert!(accepted >= 2, "the queue admits up to its depth");
        match rejected.expect("overfill must be rejected") {
            // We broke at the first failure, so the handed-back request is
            // attempt number `accepted`.
            SubmitError::QueueFull(req) => assert_eq!(req.stream, accepted),
            other => panic!("expected QueueFull, got {other}"),
        }
        drop(reply);
        // The accepted requests still complete, and nothing else does.
        let done = responses.iter().count();
        assert_eq!(done, accepted);
        svc.shutdown();
    }

    #[test]
    fn submission_queue_bounds_fills_and_closes() {
        // Deterministic check of the queue mechanism itself, with no
        // worker racing the assertions.
        let (_cat, table) = small_catalog();
        let (reply, _responses) = mpsc::channel();
        let mk = |i: usize| QueryRequest {
            stream: i,
            plan: seq_plan(table),
            reply: reply.clone(),
        };
        let q = SubmissionQueue::new(2);
        assert!(q.try_push(mk(0)).is_ok());
        assert!(q.try_push(mk(1)).is_ok());
        assert_eq!(q.queued(), 2);
        match q.try_push(mk(2)) {
            Err(SubmitError::QueueFull(req)) => assert_eq!(req.stream, 2),
            other => panic!(
                "expected QueueFull, got {other:?}",
                other = other.map(|_| ())
            ),
        }
        // Draining one slot re-opens admission; FIFO order is preserved.
        assert_eq!(q.pop().expect("non-empty").stream, 0);
        assert!(q.try_push(mk(3)).is_ok());
        // After close, producers are refused but the queue drains.
        q.close();
        assert!(matches!(q.push(mk(4)), Err(SubmitError::Closed(_))));
        assert_eq!(q.pop().expect("drains after close").stream, 1);
        assert_eq!(q.pop().expect("drains after close").stream, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn submit_after_shutdown_reports_closed() {
        let (cat, table) = small_catalog();
        let storage = shared_storage();
        let registry = ConcurrencyRegistry::new();
        let svc = QueryService::start(
            cfg(),
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
            },
            PolicyConfig::paper_default(),
            &registry,
            &cat,
            &storage,
        );
        svc.queue.close();
        let (reply, _responses) = mpsc::channel();
        let req = QueryRequest {
            stream: 0,
            plan: seq_plan(table),
            reply,
        };
        match svc.submit(req) {
            Err(SubmitError::Closed(req)) => assert_eq!(req.stream, 0),
            other => panic!("expected Closed, got {:?}", other.map(|_| ())),
        }
        svc.shutdown();
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let (cat, table) = small_catalog();
        let registry = ConcurrencyRegistry::new();
        let streams: Vec<StreamSpec> = (0..20)
            .map(|i| StreamSpec {
                name: format!("s{i}"),
                queries: vec![seq_plan(table)],
            })
            .collect();
        let run = || {
            let storage = shared_storage();
            run_streams_service(
                cfg(),
                ServiceConfig {
                    workers: 1,
                    queue_depth: 4,
                },
                PolicyConfig::paper_default(),
                &registry,
                &streams,
                &cat,
                &storage,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.stats, y.stats);
        }
        // With one worker the single statistics shard IS the report: the
        // merge preserves sample order bit-exactly.
        assert_eq!(a.per_worker.len(), 1);
        assert_eq!(a.per_worker[0].latency, a.latency);
        assert_eq!(a.per_worker, b.per_worker);
        assert_eq!(a.contention, b.contention);
    }
}
