//! Function (1): mapping a plan level to a caching priority.
//!
//! Random requests are mapped onto the consecutive priority range
//! `[n1, n2]`. With `Lgap = lhigh - llow` and `Cprio = n2 - n1`, the
//! priority of a random request issued by an operator at level `i` is
//!
//! ```text
//! p(i) = n1                                   if Cprio = 0 or Lgap = 0
//!      = n1 + (i - llow)                      if Cprio >= Lgap
//!      = n1 + floor(Cprio * (i - llow)/Lgap)  if Cprio <  Lgap
//! ```

use hstorage_storage::{CachePriority, PolicyConfig};

/// Computes the caching priority of a random request issued by an operator
/// at (effective) level `level`, given the lowest and highest levels of all
/// random-access operators (`llow`, `lhigh`) and the policy configuration
/// (which supplies the priority range `[n1, n2]`).
///
/// Levels outside `[llow, lhigh]` are clamped into the range, which can
/// only happen transiently under concurrency when the global bounds lag a
/// newly registered query.
pub fn random_request_priority(
    config: &PolicyConfig,
    level: u32,
    llow: u32,
    lhigh: u32,
) -> CachePriority {
    let n1 = config.random_range_high;
    let n2 = config.random_range_low;
    let c_prio = (n2 - n1) as u32;
    let (llow, lhigh) = if llow <= lhigh {
        (llow, lhigh)
    } else {
        (lhigh, llow)
    };
    let l_gap = lhigh - llow;
    let i = level.clamp(llow, lhigh);

    let p = if c_prio == 0 || l_gap == 0 {
        n1 as u32
    } else if c_prio >= l_gap {
        n1 as u32 + (i - llow)
    } else {
        n1 as u32 + (c_prio * (i - llow)) / l_gap
    };
    CachePriority(p.min(n2 as u32) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PolicyConfig {
        // Paper default: range [2, 6] with N = 8.
        PolicyConfig::paper_default()
    }

    #[test]
    fn zero_gap_maps_to_highest_available() {
        let c = cfg();
        assert_eq!(random_request_priority(&c, 3, 3, 3), CachePriority(2));
    }

    #[test]
    fn zero_range_maps_everything_to_n1() {
        let mut c = cfg();
        c.random_range_low = c.random_range_high; // Cprio = 0
        assert_eq!(random_request_priority(&c, 0, 0, 5), CachePriority(2));
        assert_eq!(random_request_priority(&c, 5, 0, 5), CachePriority(2));
    }

    #[test]
    fn wide_range_assigns_one_priority_per_level() {
        let c = cfg(); // Cprio = 4
                       // Lgap = 2 <= Cprio: priority = n1 + (i - llow).
        assert_eq!(random_request_priority(&c, 0, 0, 2), CachePriority(2));
        assert_eq!(random_request_priority(&c, 1, 0, 2), CachePriority(3));
        assert_eq!(random_request_priority(&c, 2, 0, 2), CachePriority(4));
    }

    #[test]
    fn narrow_range_shares_priorities_between_levels() {
        let mut c = cfg();
        c.random_range_low = 3; // range [2, 3], Cprio = 1
                                // Lgap = 4 > Cprio: p = 2 + floor(1 * (i - 0) / 4).
        assert_eq!(random_request_priority(&c, 0, 0, 4), CachePriority(2));
        assert_eq!(random_request_priority(&c, 1, 0, 4), CachePriority(2));
        assert_eq!(random_request_priority(&c, 3, 0, 4), CachePriority(2));
        assert_eq!(random_request_priority(&c, 4, 0, 4), CachePriority(3));
    }

    #[test]
    fn paper_figure_2_example() {
        // "We assume that the available priority range is [2,5]."
        let mut c = cfg();
        c.random_range_high = 2;
        c.random_range_low = 5;
        // t.a's lowest random operator is at level 0 → priority 2.
        assert_eq!(random_request_priority(&c, 0, 0, 2), CachePriority(2));
        // t.b's random operator at level 2 → priority 4.
        assert_eq!(random_request_priority(&c, 2, 0, 2), CachePriority(4));
        // t.c's index scan recalculated to level 0 → priority 2.
        assert_eq!(random_request_priority(&c, 0, 0, 2), CachePriority(2));
    }

    #[test]
    fn level_outside_bounds_is_clamped() {
        let c = cfg();
        assert_eq!(random_request_priority(&c, 10, 0, 2), CachePriority(4));
        assert_eq!(random_request_priority(&c, 0, 1, 3), CachePriority(2));
    }

    #[test]
    fn priority_never_exceeds_range() {
        let c = cfg();
        for llow in 0..5u32 {
            for lhigh in llow..8u32 {
                for level in 0..10u32 {
                    let p = random_request_priority(&c, level, llow, lhigh);
                    assert!(p.0 >= c.random_range_high);
                    assert!(p.0 <= c.random_range_low);
                }
            }
        }
    }
}
