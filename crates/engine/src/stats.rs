//! Per-query execution statistics.

use hstorage_storage::RequestClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Statistics of one query execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Query name ("Q1", "Q18", "RF1", …).
    pub name: String,
    /// Total simulated execution time (I/O + CPU).
    pub elapsed: Duration,
    /// Simulated I/O time (storage-clock delta attributable to the query).
    pub io_time: Duration,
    /// Simulated CPU time.
    pub cpu_time: Duration,
    /// Number of storage I/O requests issued, per request class.
    pub requests_by_class: BTreeMap<String, u64>,
    /// Number of blocks requested from storage, per request class.
    pub blocks_by_class: BTreeMap<String, u64>,
    /// Buffer-pool hits during the query.
    pub buffer_pool_hits: u64,
    /// Buffer-pool misses during the query.
    pub buffer_pool_misses: u64,
}

impl QueryStats {
    /// Creates empty statistics for a named query.
    pub fn new(name: impl Into<String>) -> Self {
        QueryStats {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Records one storage request of `blocks` blocks of the given class.
    pub fn record_request(&mut self, class: RequestClass, blocks: u64) {
        *self
            .requests_by_class
            .entry(class.label().to_string())
            .or_default() += 1;
        *self
            .blocks_by_class
            .entry(class.label().to_string())
            .or_default() += blocks;
    }

    /// Total storage requests.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_class.values().sum()
    }

    /// Total blocks requested from storage.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_by_class.values().sum()
    }

    /// Requests of one class.
    pub fn requests(&self, class: RequestClass) -> u64 {
        self.requests_by_class
            .get(class.label())
            .copied()
            .unwrap_or(0)
    }

    /// Blocks of one class.
    pub fn blocks(&self, class: RequestClass) -> u64 {
        self.blocks_by_class
            .get(class.label())
            .copied()
            .unwrap_or(0)
    }

    /// Fraction of requests belonging to `class` (0 when nothing was issued).
    pub fn request_fraction(&self, class: RequestClass) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            0.0
        } else {
            self.requests(class) as f64 / total as f64
        }
    }

    /// Fraction of blocks belonging to `class` (0 when nothing was issued).
    pub fn block_fraction(&self, class: RequestClass) -> f64 {
        let total = self.total_blocks();
        if total == 0 {
            0.0
        } else {
            self.blocks(class) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut s = QueryStats::new("Q1");
        s.record_request(RequestClass::Sequential, 64);
        s.record_request(RequestClass::Sequential, 64);
        s.record_request(RequestClass::Random, 1);
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_blocks(), 129);
        assert_eq!(s.requests(RequestClass::Sequential), 2);
        assert_eq!(s.blocks(RequestClass::Random), 1);
        assert!((s.request_fraction(RequestClass::Random) - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.block_fraction(RequestClass::Sequential) - 128.0 / 129.0).abs() < 1e-9);
        assert_eq!(s.request_fraction(RequestClass::Update), 0.0);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = QueryStats::new("empty");
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.request_fraction(RequestClass::Sequential), 0.0);
        assert_eq!(s.block_fraction(RequestClass::Sequential), 0.0);
    }
}
