//! Database objects and their physical layout.
//!
//! The catalog maps object ids to the contiguous block ranges the objects
//! occupy on the second-level device. The hStorage-DB rules only need the
//! object identity (for the concurrency registry) and the block layout (to
//! generate the request stream), so this is intentionally lean.

use hstorage_storage::{BlockAddr, BlockRange};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a database object (table, index, or temporary file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid#{}", self.0)
    }
}

/// What kind of object an [`ObjectId`] denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A regular user table.
    Table,
    /// A secondary index.
    Index,
    /// A temporary file created during query execution.
    Temporary,
}

/// Catalog entry for one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// The object's id.
    pub oid: ObjectId,
    /// Human-readable name ("lineitem", "idx_l_orderkey", …).
    pub name: String,
    /// Table, index or temporary file.
    pub kind: ObjectKind,
    /// Physical location on the second-level device.
    pub range: BlockRange,
}

/// The object catalog plus a simple bump allocator for temporary files.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    objects: HashMap<ObjectId, ObjectInfo>,
    by_name: HashMap<String, ObjectId>,
    next_oid: u32,
    /// Region of the block address space reserved for temporary data.
    temp_region: BlockRange,
    temp_cursor: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an object at an explicit location, assigning it a fresh id.
    pub fn register(&mut self, name: &str, kind: ObjectKind, range: BlockRange) -> ObjectId {
        let oid = ObjectId(self.next_oid);
        self.next_oid += 1;
        self.objects.insert(
            oid,
            ObjectInfo {
                oid,
                name: name.to_string(),
                kind,
                range,
            },
        );
        self.by_name.insert(name.to_string(), oid);
        oid
    }

    /// Declares the block region used for temporary files.
    pub fn set_temp_region(&mut self, region: BlockRange) {
        self.temp_region = region;
        self.temp_cursor = 0;
    }

    /// The region reserved for temporary files.
    pub fn temp_region(&self) -> BlockRange {
        self.temp_region
    }

    /// Allocates a temporary file of `blocks` blocks inside the temp region.
    ///
    /// The allocator wraps around when the region is exhausted, mirroring a
    /// file system reusing space freed by earlier deletions.
    pub fn allocate_temp(&mut self, blocks: u64) -> ObjectId {
        assert!(
            blocks <= self.temp_region.len.max(1),
            "temporary file of {blocks} blocks exceeds the temp region ({})",
            self.temp_region.len
        );
        if self.temp_cursor + blocks > self.temp_region.len {
            self.temp_cursor = 0;
        }
        let start = BlockAddr(self.temp_region.start.0 + self.temp_cursor);
        self.temp_cursor += blocks;
        let name = format!("temp_{}", self.next_oid);
        self.register(&name, ObjectKind::Temporary, BlockRange::new(start, blocks))
    }

    /// Drops a temporary file from the catalog, returning its layout.
    pub fn drop_temp(&mut self, oid: ObjectId) -> Option<ObjectInfo> {
        let info = self.objects.get(&oid)?;
        if info.kind != ObjectKind::Temporary {
            return None;
        }
        let info = self.objects.remove(&oid)?;
        self.by_name.remove(&info.name);
        Some(info)
    }

    /// Looks up an object by id.
    pub fn get(&self, oid: ObjectId) -> Option<&ObjectInfo> {
        self.objects.get(&oid)
    }

    /// Looks up an object by name.
    pub fn by_name(&self, name: &str) -> Option<&ObjectInfo> {
        self.by_name.get(name).and_then(|oid| self.objects.get(oid))
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over all objects in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectInfo> {
        self.objects.values()
    }

    /// Total number of blocks occupied by non-temporary objects.
    pub fn data_blocks(&self) -> u64 {
        self.objects
            .values()
            .filter(|o| o.kind != ObjectKind::Temporary)
            .map(|o| o.range.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let t = c.register("lineitem", ObjectKind::Table, BlockRange::new(0u64, 1000));
        let i = c.register("idx_l", ObjectKind::Index, BlockRange::new(1000u64, 100));
        assert_ne!(t, i);
        assert_eq!(c.get(t).unwrap().name, "lineitem");
        assert_eq!(c.by_name("idx_l").unwrap().oid, i);
        assert_eq!(c.len(), 2);
        assert_eq!(c.data_blocks(), 1100);
    }

    #[test]
    fn temp_allocation_and_drop() {
        let mut c = Catalog::new();
        c.set_temp_region(BlockRange::new(10_000u64, 500));
        let t1 = c.allocate_temp(200);
        let t2 = c.allocate_temp(200);
        let r1 = c.get(t1).unwrap().range;
        let r2 = c.get(t2).unwrap().range;
        assert!(!r1.overlaps(&r2));
        assert!(c.temp_region().contains(r1.start));
        let dropped = c.drop_temp(t1).unwrap();
        assert_eq!(dropped.range, r1);
        assert!(c.get(t1).is_none());
    }

    #[test]
    fn temp_allocation_wraps_around() {
        let mut c = Catalog::new();
        c.set_temp_region(BlockRange::new(0u64, 100));
        let _a = c.allocate_temp(60);
        let b = c.allocate_temp(60); // does not fit after the first: wraps
        assert_eq!(c.get(b).unwrap().range.start, BlockAddr(0));
    }

    #[test]
    fn drop_temp_refuses_regular_tables() {
        let mut c = Catalog::new();
        let t = c.register("part", ObjectKind::Table, BlockRange::new(0u64, 10));
        assert!(c.drop_temp(t).is_none());
        assert!(c.get(t).is_some());
    }
}
