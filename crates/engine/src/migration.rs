//! The engine-side tier-migration driver.
//!
//! The cache's migration engine ([`hstorage_cache::migration`]) is purely
//! reactive: it runs a round only when
//! [`StorageSystem::migrate_idle`] is called and enough idle device time
//! has accrued. Something on the DBMS side has to supply those calls.
//! [`QueryExecutor::run_query`](crate::QueryExecutor::run_query) pulses
//! the storage system at every query boundary — the executor's natural
//! idle points — which covers the threaded drivers and the query service
//! for free. [`MigrationDriver`] is the explicit alternative for callers
//! that drive the storage system directly (experiments, benches, custom
//! loops) and want to pulse on their own cadence while keeping count.

use hstorage_cache::{MigrationStats, StorageSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pulses a shared storage system's migration engine and counts the
/// pulses. Cheap to clone-share across threads (the storage handle is an
/// `Arc`, the counter atomic); every pulse is a
/// [`StorageSystem::migrate_idle`] call, which the storage system turns
/// into a migration round or a counted skip depending on its idle gate.
pub struct MigrationDriver {
    storage: Arc<dyn StorageSystem>,
    pulses: AtomicU64,
}

impl MigrationDriver {
    /// Creates a driver pulsing `storage`.
    pub fn new(storage: Arc<dyn StorageSystem>) -> Self {
        MigrationDriver {
            storage,
            pulses: AtomicU64::new(0),
        }
    }

    /// Offers the storage system one migration window and returns its
    /// cumulative migration counters.
    pub fn pulse(&self) -> MigrationStats {
        self.pulses.fetch_add(1, Ordering::Relaxed);
        self.storage.migrate_idle()
    }

    /// Number of pulses issued through this driver.
    pub fn pulses(&self) -> u64 {
        self.pulses.load(Ordering::Relaxed)
    }

    /// The storage system's cumulative migration counters (without
    /// pulsing).
    pub fn stats(&self) -> MigrationStats {
        self.storage.migration_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_cache::{MigrationConfig, StorageConfig, StorageConfigKind};
    use hstorage_storage::{BlockRange, ClassifiedRequest, IoRequest, QosPolicy, RequestClass};
    use std::time::Duration;

    fn read(lbn: u64, prio: u8) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(lbn, 1), false),
            RequestClass::Random,
            QosPolicy::priority(prio),
        )
    }

    #[test]
    fn pulses_are_counted_and_noop_without_a_migration_engine() {
        let storage = StorageConfig::new(StorageConfigKind::HddOnly, 0).build_shared();
        let driver = MigrationDriver::new(storage);
        assert_eq!(driver.pulse(), MigrationStats::default());
        assert_eq!(driver.pulse(), MigrationStats::default());
        assert_eq!(driver.pulses(), 2);
        assert_eq!(driver.stats(), MigrationStats::default());
    }

    #[test]
    fn pulses_reach_a_configured_migration_engine() {
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 8)
            .with_migration(MigrationConfig::on().with_idle_threshold(Duration::ZERO))
            .build_shared();
        for lbn in 0..8u64 {
            storage.submit(read(lbn, 2));
        }
        let driver = MigrationDriver::new(storage);
        let stats = driver.pulse();
        assert_eq!(stats.rounds, 1);
        assert_eq!(driver.pulses(), 1);
    }
}
