//! Request programs: the compiled I/O behaviour of a query plan.
//!
//! The executor first *compiles* a plan tree against the catalog into a
//! flat sequence of [`IoOp`]s (the order an iterator-model executor with
//! blocking operators would issue them in), and then *executes* the
//! program, assigning QoS policies at issue time so that Rule 5 sees the
//! registry state of the moment. Keeping compilation separate from
//! execution is also what lets the concurrent-workload driver interleave
//! several programs over one storage system.

use crate::catalog::{Catalog, ObjectId};
use crate::plan::{Access, ExecStep, OperatorKind, PlanTree};
use crate::semantic::{ContentType, SemanticInfo};
use hstorage_storage::BlockRange;
use serde::{Deserialize, Serialize};

/// One unit of work of a compiled query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IoOp {
    /// A sequential read of a contiguous range of a table.
    SequentialRead {
        /// Semantic information to attach.
        info: SemanticInfo,
        /// Blocks to read.
        range: BlockRange,
    },
    /// One index-scan probe: a random read of one index block followed by a
    /// random read of one table block. The concrete block addresses are
    /// drawn at execution time from the hot subsets.
    IndexProbe {
        /// Semantic info for the index access.
        index_info: SemanticInfo,
        /// Hot subset of the index to probe.
        index_hot: BlockRange,
        /// Semantic info for the table access.
        table_info: SemanticInfo,
        /// Hot subset of the table to access.
        table_hot: BlockRange,
    },
    /// A write of temporary data during the generation phase.
    TempWrite {
        /// Semantic information (temporary, write).
        info: SemanticInfo,
        /// Blocks to write.
        range: BlockRange,
    },
    /// A read of temporary data during the consumption phase.
    TempRead {
        /// Semantic information (temporary, read).
        info: SemanticInfo,
        /// Blocks to read.
        range: BlockRange,
    },
    /// Deletion of a temporary file at the end of its lifetime.
    TempDelete {
        /// Semantic information (temporary delete).
        info: SemanticInfo,
        /// The whole file being deleted.
        range: BlockRange,
        /// The temporary object to drop from the catalog.
        oid: ObjectId,
    },
    /// An application update of one random block.
    UpdateWrite {
        /// Semantic information (update).
        info: SemanticInfo,
        /// The table region the updated block is drawn from.
        table_range: BlockRange,
    },
}

/// A compiled query: its name, the plan-level bounds used by Function (1),
/// and the ordered list of I/O operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestProgram {
    /// Query name.
    pub name: String,
    /// The query's own `(llow, lhigh)` over random operators; `(0, 0)` when
    /// the plan has no random operators.
    pub level_bounds: (u32, u32),
    /// Ordered operations.
    pub ops: Vec<IoOp>,
}

impl RequestProgram {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Compilation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Blocks per sequential read request.
    pub seq_blocks_per_request: u64,
    /// Blocks per temporary-data request.
    pub temp_blocks_per_request: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            seq_blocks_per_request: 64,
            temp_blocks_per_request: 32,
        }
    }
}

/// Returns the leading sub-range of `range` covering `fraction` of it
/// (at least one block for non-empty ranges).
fn hot_subset(range: BlockRange, fraction: f64) -> BlockRange {
    if range.is_empty() {
        return range;
    }
    let len = ((range.len as f64 * fraction).ceil() as u64).clamp(1, range.len);
    BlockRange::new(range.start, len)
}

/// Merges several operation streams proportionally, preserving the order
/// within each stream. This models pipelined execution: the children of a
/// non-blocking join produce and consume rows concurrently, so their I/O
/// interleaves rather than running back to back.
fn interleave(streams: Vec<Vec<IoOp>>) -> Vec<IoOp> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        // Pick the stream that is the least far through, proportionally.
        let mut best: Option<(usize, f64)> = None;
        for (i, stream) in streams.iter().enumerate() {
            if cursors[i] >= stream.len() {
                continue;
            }
            let progress = cursors[i] as f64 / stream.len() as f64;
            match best {
                Some((_, p)) if p <= progress => {}
                _ => best = Some((i, progress)),
            }
        }
        let (i, _) = best.expect("total count guarantees a non-exhausted stream");
        out.push(streams[i][cursors[i]].clone());
        cursors[i] += 1;
    }
    out
}

/// Compiles a plan tree into a request program.
///
/// Children of blocking operators (hash, sort, materialize) complete before
/// anything above them runs; children of pipelined operators (joins) have
/// their I/O interleaved proportionally.
///
/// Temporary spills model the two phases of Section 4.2.3: the *generation*
/// phase (the write stream) is interleaved with the spilling operator's
/// input, and the *consumption* phase (the read streams) plus the deletion
/// are deferred to the end of the query, when the materialised data is
/// actually consumed by the upper part of the plan. Temporary files are
/// allocated from the catalog's temp region; the corresponding
/// [`IoOp::TempDelete`] drops them again at execution time.
pub fn compile(plan: &PlanTree, catalog: &mut Catalog, options: CompileOptions) -> RequestProgram {
    let level_bounds = plan.random_level_bounds().unwrap_or((0, 0));
    let object_levels = plan.random_object_levels();
    let levels = plan.operator_levels();
    let eff: Vec<u32> = levels.iter().map(|l| l.effective_level).collect();

    fn walk(
        node: &crate::plan::PlanNode,
        counter: &mut usize,
        eff: &[u32],
        catalog: &mut Catalog,
        options: &CompileOptions,
        object_levels: &std::collections::HashMap<ObjectId, u32>,
        deferred: &mut Vec<IoOp>,
    ) -> Vec<IoOp> {
        let my_index = *counter;
        *counter += 1;
        let child_streams: Vec<Vec<IoOp>> = node
            .children
            .iter()
            .map(|c| walk(c, counter, eff, catalog, options, object_levels, deferred))
            .collect();

        // Blocking children finish before their siblings start; pipelined
        // children interleave.
        let any_blocking_child = node.children.iter().any(|c| c.kind.is_blocking());
        let mut ops = if child_streams.len() <= 1 || any_blocking_child {
            child_streams.into_iter().flatten().collect()
        } else {
            interleave(child_streams)
        };

        let step = ExecStep {
            kind: node.kind,
            access: node.access,
            level: eff[my_index],
        };
        let mut own = Vec::new();
        compile_step(&step, catalog, options, object_levels, &mut own);
        if let Access::TempSpill { .. } = node.access {
            // Generation (writes) interleaves with the input; consumption
            // (reads) and deletion are deferred to the end of the query.
            let (writes, rest): (Vec<IoOp>, Vec<IoOp>) = own
                .into_iter()
                .partition(|op| matches!(op, IoOp::TempWrite { .. }));
            ops = interleave(vec![ops, writes]);
            deferred.extend(rest);
        } else {
            ops.extend(own);
        }
        ops
    }

    let mut counter = 0;
    let mut deferred = Vec::new();
    let mut ops = walk(
        &plan.root,
        &mut counter,
        &eff,
        catalog,
        &options,
        &object_levels,
        &mut deferred,
    );
    ops.extend(deferred);

    RequestProgram {
        name: plan.name.clone(),
        level_bounds,
        ops,
    }
}

fn compile_step(
    step: &ExecStep,
    catalog: &mut Catalog,
    options: &CompileOptions,
    object_levels: &std::collections::HashMap<ObjectId, u32>,
    ops: &mut Vec<IoOp>,
) {
    match step.access {
        Access::None => {}
        Access::SeqScan { table, passes } => {
            let Some(info) = catalog.get(table) else {
                return;
            };
            let range = info.range;
            let sem = SemanticInfo::sequential_scan(table, step.level);
            for _ in 0..passes {
                let mut remaining = range;
                while !remaining.is_empty() {
                    let (chunk, rest) = remaining.split_at(options.seq_blocks_per_request);
                    ops.push(IoOp::SequentialRead {
                        info: sem,
                        range: chunk,
                    });
                    remaining = rest;
                }
            }
        }
        Access::IndexScan {
            index,
            table,
            lookups,
            index_hot_fraction,
            table_hot_fraction,
        } => {
            let (Some(index_obj), Some(table_obj)) = (catalog.get(index), catalog.get(table))
            else {
                return;
            };
            let index_hot = hot_subset(index_obj.range, index_hot_fraction);
            let table_hot = hot_subset(table_obj.range, table_hot_fraction);
            // Rule 2: the level that determines the priority of requests to
            // an object is the lowest level of any operator that accesses
            // it randomly — not necessarily this operator's own level.
            let index_level = *object_levels.get(&index).unwrap_or(&step.level);
            let table_level = *object_levels.get(&table).unwrap_or(&step.level);
            let index_info = SemanticInfo::random_access(index, ContentType::Index, index_level);
            let table_info =
                SemanticInfo::random_access(table, ContentType::RegularTable, table_level);
            for _ in 0..lookups {
                ops.push(IoOp::IndexProbe {
                    index_info,
                    index_hot,
                    table_info,
                    table_hot,
                });
            }
        }
        Access::TempSpill {
            blocks,
            read_passes,
        } => {
            if blocks == 0 {
                return;
            }
            let oid = catalog.allocate_temp(blocks);
            let range = catalog.get(oid).expect("temp just allocated").range;
            let write_info = SemanticInfo::temporary(oid, true);
            let read_info = SemanticInfo::temporary(oid, false);
            // Generation phase: one write stream.
            let mut remaining = range;
            while !remaining.is_empty() {
                let (chunk, rest) = remaining.split_at(options.temp_blocks_per_request);
                ops.push(IoOp::TempWrite {
                    info: write_info,
                    range: chunk,
                });
                remaining = rest;
            }
            // Consumption phase: one or more read streams.
            for _ in 0..read_passes {
                let mut remaining = range;
                while !remaining.is_empty() {
                    let (chunk, rest) = remaining.split_at(options.temp_blocks_per_request);
                    ops.push(IoOp::TempRead {
                        info: read_info,
                        range: chunk,
                    });
                    remaining = rest;
                }
            }
            // End of lifetime: delete the file.
            ops.push(IoOp::TempDelete {
                info: SemanticInfo::temporary_delete(oid),
                range,
                oid,
            });
        }
        Access::Update { table, blocks } => {
            let Some(table_obj) = catalog.get(table) else {
                return;
            };
            let info = SemanticInfo::update(table);
            for _ in 0..blocks {
                ops.push(IoOp::UpdateWrite {
                    info,
                    table_range: table_obj.range,
                });
            }
        }
    }
    // Operator kinds are only needed for level computation; the access spec
    // above fully describes the I/O. Blocking operators without a TempSpill
    // access (in-memory hash/sort) produce no I/O.
    let _ = OperatorKind::Hash;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectKind;
    use crate::plan::PlanNode;

    fn setup() -> (Catalog, ObjectId, ObjectId) {
        let mut cat = Catalog::new();
        let table = cat.register("orders", ObjectKind::Table, BlockRange::new(0u64, 1000));
        let index = cat.register(
            "idx_orders",
            ObjectKind::Index,
            BlockRange::new(1000u64, 100),
        );
        cat.set_temp_region(BlockRange::new(100_000u64, 10_000));
        (cat, table, index)
    }

    #[test]
    fn seq_scan_is_chunked() {
        let (mut cat, table, _) = setup();
        let plan = PlanTree::new(
            "scan",
            PlanNode::leaf(OperatorKind::SeqScan, Access::SeqScan { table, passes: 1 }),
        );
        let prog = compile(&plan, &mut cat, CompileOptions::default());
        assert_eq!(prog.len(), 1000usize.div_ceil(64));
        let total: u64 = prog
            .ops
            .iter()
            .map(|op| match op {
                IoOp::SequentialRead { range, .. } => range.len,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn index_scan_emits_one_probe_per_lookup() {
        let (mut cat, table, index) = setup();
        let plan = PlanTree::new(
            "probe",
            PlanNode::leaf(
                OperatorKind::IndexScan,
                Access::IndexScan {
                    index,
                    table,
                    lookups: 250,
                    index_hot_fraction: 0.5,
                    table_hot_fraction: 0.1,
                },
            ),
        );
        let prog = compile(&plan, &mut cat, CompileOptions::default());
        assert_eq!(prog.len(), 250);
        match &prog.ops[0] {
            IoOp::IndexProbe {
                index_hot,
                table_hot,
                ..
            } => {
                assert_eq!(index_hot.len, 50);
                assert_eq!(table_hot.len, 100);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn temp_spill_generates_write_read_delete_lifecycle() {
        let (mut cat, _, _) = setup();
        let plan = PlanTree::new(
            "spill",
            PlanNode::leaf(
                OperatorKind::Hash,
                Access::TempSpill {
                    blocks: 64,
                    read_passes: 2,
                },
            ),
        );
        let before = cat.len();
        let prog = compile(&plan, &mut cat, CompileOptions::default());
        assert_eq!(cat.len(), before + 1);
        let writes = prog
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::TempWrite { .. }))
            .count();
        let reads = prog
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::TempRead { .. }))
            .count();
        let deletes = prog
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::TempDelete { .. }))
            .count();
        assert_eq!(writes, 2); // 64 blocks / 32 per request
        assert_eq!(reads, 4); // two passes
        assert_eq!(deletes, 1);
        // Writes come before reads, delete is last.
        assert!(matches!(prog.ops.first().unwrap(), IoOp::TempWrite { .. }));
        assert!(matches!(prog.ops.last().unwrap(), IoOp::TempDelete { .. }));
    }

    #[test]
    fn update_emits_one_op_per_block() {
        let (mut cat, table, _) = setup();
        let plan = PlanTree::new(
            "rf1",
            PlanNode::leaf(OperatorKind::Update, Access::Update { table, blocks: 17 }),
        );
        let prog = compile(&plan, &mut cat, CompileOptions::default());
        assert_eq!(prog.len(), 17);
        assert!(prog
            .ops
            .iter()
            .all(|o| matches!(o, IoOp::UpdateWrite { .. })));
    }

    #[test]
    fn hot_subset_bounds() {
        let r = BlockRange::new(10u64, 100);
        assert_eq!(hot_subset(r, 0.25).len, 25);
        assert_eq!(hot_subset(r, 0.0).len, 1);
        assert_eq!(hot_subset(r, 1.0).len, 100);
        assert_eq!(hot_subset(r, 2.0).len, 100);
        assert!(hot_subset(BlockRange::empty(), 0.5).is_empty());
    }

    #[test]
    fn level_bounds_default_to_zero_without_random_ops() {
        let (mut cat, table, _) = setup();
        let plan = PlanTree::new(
            "scan",
            PlanNode::leaf(OperatorKind::SeqScan, Access::SeqScan { table, passes: 1 }),
        );
        let prog = compile(&plan, &mut cat, CompileOptions::default());
        assert_eq!(prog.level_bounds, (0, 0));
    }
}
