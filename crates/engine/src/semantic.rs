//! Semantic information attached to buffer-pool requests.
//!
//! Section 4.1: for the purpose of caching priorities the paper considers
//! the *content type* (regular table, index, temporary data) and the
//! *access pattern* (sequential or random, as decided by the query
//! optimizer), plus the plan-tree level of the operator that issued the
//! request. This module is the in-DBMS representation of that information
//! before the policy assignment table turns it into a QoS policy.

use crate::catalog::ObjectId;
use hstorage_storage::RequestClass;
use serde::{Deserialize, Serialize};

/// Content type of the accessed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// A regular user table.
    RegularTable,
    /// A secondary index.
    Index,
    /// Temporary data generated during query execution.
    Temporary,
}

/// Access pattern as determined by the query optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// The object is scanned sequentially.
    Sequential,
    /// The object is accessed at random (index scans and index-driven
    /// table lookups).
    Random,
}

/// Semantic information for one data request, as collected from the query
/// optimizer and execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemanticInfo {
    /// The object being accessed.
    pub oid: ObjectId,
    /// Content type of the object.
    pub content: ContentType,
    /// Access pattern of the issuing operator.
    pub pattern: AccessPattern,
    /// Effective plan-tree level of the issuing operator (after the
    /// blocking-operator recalculation), if the request comes from a query
    /// plan. Updates and temp-file deletions carry `None`.
    pub level: Option<u32>,
    /// Whether the request writes data.
    pub is_write: bool,
    /// Whether this request deletes temporary data (end of lifetime).
    pub is_temp_delete: bool,
    /// Whether this is an application update (INSERT/UPDATE/DELETE on a
    /// regular table).
    pub is_update: bool,
}

impl SemanticInfo {
    /// Semantic info for a sequential table scan request.
    pub fn sequential_scan(oid: ObjectId, level: u32) -> Self {
        SemanticInfo {
            oid,
            content: ContentType::RegularTable,
            pattern: AccessPattern::Sequential,
            level: Some(level),
            is_write: false,
            is_temp_delete: false,
            is_update: false,
        }
    }

    /// Semantic info for a random access to a table or index.
    pub fn random_access(oid: ObjectId, content: ContentType, level: u32) -> Self {
        SemanticInfo {
            oid,
            content,
            pattern: AccessPattern::Random,
            level: Some(level),
            is_write: false,
            is_temp_delete: false,
            is_update: false,
        }
    }

    /// Semantic info for temporary-data access during its lifetime.
    pub fn temporary(oid: ObjectId, is_write: bool) -> Self {
        SemanticInfo {
            oid,
            content: ContentType::Temporary,
            pattern: AccessPattern::Sequential,
            level: None,
            is_write,
            is_temp_delete: false,
            is_update: false,
        }
    }

    /// Semantic info for the deletion of temporary data (end of lifetime).
    pub fn temporary_delete(oid: ObjectId) -> Self {
        SemanticInfo {
            oid,
            content: ContentType::Temporary,
            pattern: AccessPattern::Sequential,
            level: None,
            is_write: false,
            is_temp_delete: true,
            is_update: false,
        }
    }

    /// Semantic info for an application update to a regular table.
    pub fn update(oid: ObjectId) -> Self {
        SemanticInfo {
            oid,
            content: ContentType::RegularTable,
            pattern: AccessPattern::Random,
            level: None,
            is_write: true,
            is_temp_delete: false,
            is_update: true,
        }
    }

    /// The request class (Section 4.1) this semantic information maps to.
    pub fn request_class(&self) -> RequestClass {
        if self.is_update {
            RequestClass::Update
        } else if self.is_temp_delete {
            RequestClass::TemporaryDataTrim
        } else if self.content == ContentType::Temporary {
            RequestClass::TemporaryData
        } else if self.pattern == AccessPattern::Random {
            RequestClass::Random
        } else {
            RequestClass::Sequential
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_section_4_1() {
        let oid = ObjectId(1);
        assert_eq!(
            SemanticInfo::sequential_scan(oid, 0).request_class(),
            RequestClass::Sequential
        );
        assert_eq!(
            SemanticInfo::random_access(oid, ContentType::Index, 2).request_class(),
            RequestClass::Random
        );
        assert_eq!(
            SemanticInfo::temporary(oid, true).request_class(),
            RequestClass::TemporaryData
        );
        assert_eq!(
            SemanticInfo::temporary_delete(oid).request_class(),
            RequestClass::TemporaryDataTrim
        );
        assert_eq!(
            SemanticInfo::update(oid).request_class(),
            RequestClass::Update
        );
    }

    #[test]
    fn update_takes_precedence_over_pattern() {
        // An update is random and a write, but must classify as Update.
        let info = SemanticInfo::update(ObjectId(7));
        assert_eq!(info.pattern, AccessPattern::Random);
        assert!(info.is_write);
        assert_eq!(info.request_class(), RequestClass::Update);
    }
}
