//! The DBMS buffer pool.
//!
//! The buffer pool absorbs re-accesses to very hot pages (index roots,
//! small dimension tables) before they ever become storage I/O, exactly as
//! PostgreSQL's shared buffers do in the paper's setup. It is a plain LRU
//! over block addresses — the interesting placement logic lives *below* it,
//! in the storage system.
//!
//! Sequential scans use a small ring of buffers in PostgreSQL so they do
//! not flood the pool; we reproduce that by making sequential accesses
//! non-caching in the pool.

use hstorage_cache::lru::LruList;
use hstorage_storage::BlockAddr;
use std::collections::HashSet;

/// A fixed-capacity LRU buffer pool.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: u64,
    lru: LruList,
    resident: HashSet<BlockAddr>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` blocks. A capacity of 0
    /// disables the pool (every access misses).
    pub fn new(capacity: u64) -> Self {
        BufferPool {
            capacity,
            lru: LruList::new(),
            resident: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of blocks currently buffered.
    pub fn resident(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Buffer-pool hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer-pool misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses one block through the pool. Returns `true` on a pool hit
    /// (no storage I/O needed). On a miss the block is admitted unless
    /// `cacheable` is false (used for sequential scans).
    pub fn access(&mut self, block: BlockAddr, cacheable: bool) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if self.resident.contains(&block) {
            self.lru.touch(&block);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if cacheable {
            while self.resident.len() as u64 >= self.capacity {
                if let Some(evicted) = self.lru.pop_lru() {
                    self.resident.remove(&evicted);
                } else {
                    break;
                }
            }
            self.lru.insert_mru(block);
            self.resident.insert(block);
        }
        false
    }

    /// Drops a block from the pool (e.g. when its temporary file is
    /// deleted). Returns whether it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        if self.resident.remove(&block) {
            self.lru.remove(&block);
            true
        } else {
            false
        }
    }

    /// Drops everything and clears the counters.
    pub fn clear(&mut self) {
        self.lru = LruList::new();
        self.resident.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_admission() {
        let mut p = BufferPool::new(10);
        assert!(!p.access(BlockAddr(1), true));
        assert!(p.access(BlockAddr(1), true));
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn sequential_accesses_are_not_admitted() {
        let mut p = BufferPool::new(10);
        assert!(!p.access(BlockAddr(1), false));
        assert!(!p.access(BlockAddr(1), false));
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn capacity_enforced_with_lru_eviction() {
        let mut p = BufferPool::new(3);
        for i in 0..3u64 {
            p.access(BlockAddr(i), true);
        }
        p.access(BlockAddr(0), true); // 0 becomes MRU
        p.access(BlockAddr(3), true); // evicts 1
        assert!(p.access(BlockAddr(0), true));
        assert!(!p.access(BlockAddr(1), true));
        assert!(p.resident() <= 3);
    }

    #[test]
    fn zero_capacity_disables_the_pool() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(BlockAddr(5), true));
        assert!(!p.access(BlockAddr(5), true));
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut p = BufferPool::new(10);
        p.access(BlockAddr(1), true);
        p.access(BlockAddr(2), true);
        assert!(p.invalidate(BlockAddr(1)));
        assert!(!p.invalidate(BlockAddr(1)));
        assert!(!p.access(BlockAddr(1), true));
        p.clear();
        assert_eq!(p.resident(), 0);
        assert_eq!(p.hits(), 0);
    }
}
