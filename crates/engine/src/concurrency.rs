//! Rule 5: deterministic priority assignment under concurrent queries.
//!
//! When several queries run at once, random requests to the same object
//! could be assigned different priorities depending on which query issued
//! them. The paper avoids this with a small set of shared data structures
//! (Section 4.3):
//!
//! * a hash table `H<oid, list>` where each list element `<level, count>`
//!   says that `count` operators (across all running queries) access `oid`
//!   from plan level `level`,
//! * `gl_low` / `gl_high`, the global minimum and maximum of the per-query
//!   `llow` / `lhigh` values.
//!
//! The structures are updated at query start and end; the priority of a
//! random request to `oid` is computed by Function (1) using the *lowest*
//! registered level for `oid` and the global bounds.

use crate::catalog::ObjectId;
use crate::plan::PlanTree;
use crate::priority::random_request_priority;
use hstorage_storage::{CachePriority, PolicyConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Default)]
struct RegistryInner {
    /// `oid → [(level, count)]`.
    objects: HashMap<ObjectId, Vec<(u32, u32)>>,
    /// Per-query `(llow, lhigh)` of the currently registered queries, keyed
    /// by registration ticket.
    query_bounds: HashMap<u64, (u32, u32)>,
    next_ticket: u64,
}

impl RegistryInner {
    fn global_bounds(&self) -> Option<(u32, u32)> {
        let mut bounds: Option<(u32, u32)> = None;
        for &(lo, hi) in self.query_bounds.values() {
            bounds = Some(match bounds {
                None => (lo, hi),
                Some((glo, ghi)) => (glo.min(lo), ghi.max(hi)),
            });
        }
        bounds
    }

    fn lowest_level_for(&self, oid: ObjectId) -> Option<u32> {
        self.objects
            .get(&oid)
            .and_then(|list| list.iter().map(|&(lvl, _)| lvl).min())
    }
}

/// Handle returned by [`ConcurrencyRegistry::register_query`]; pass it back
/// to [`ConcurrencyRegistry::unregister_query`] when the query finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTicket {
    ticket: u64,
}

/// The shared registry of running queries.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl ConcurrencyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query: records, for every object its plan accesses
    /// randomly, the level of the accessing operator, and folds the query's
    /// `llow`/`lhigh` into the global bounds.
    pub fn register_query(&self, plan: &PlanTree) -> QueryTicket {
        let mut inner = self.inner.lock();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;

        if let Some(bounds) = plan.random_level_bounds() {
            inner.query_bounds.insert(ticket, bounds);
        }
        for (oid, level) in plan.random_object_levels() {
            let list = inner.objects.entry(oid).or_default();
            match list.iter_mut().find(|(lvl, _)| *lvl == level) {
                Some((_, count)) => *count += 1,
                None => list.push((level, 1)),
            }
        }
        QueryTicket { ticket }
    }

    /// Unregisters a finished query, removing its contribution.
    pub fn unregister_query(&self, plan: &PlanTree, ticket: QueryTicket) {
        let mut inner = self.inner.lock();
        inner.query_bounds.remove(&ticket.ticket);
        for (oid, level) in plan.random_object_levels() {
            if let Some(list) = inner.objects.get_mut(&oid) {
                if let Some(pos) = list.iter().position(|(lvl, _)| *lvl == level) {
                    if list[pos].1 <= 1 {
                        list.remove(pos);
                    } else {
                        list[pos].1 -= 1;
                    }
                }
                if list.is_empty() {
                    inner.objects.remove(&oid);
                }
            }
        }
    }

    /// Number of queries currently registered.
    pub fn active_queries(&self) -> usize {
        self.inner.lock().query_bounds.len()
    }

    /// The global level bounds `(gl_low, gl_high)` over all running queries.
    pub fn global_bounds(&self) -> Option<(u32, u32)> {
        self.inner.lock().global_bounds()
    }

    /// The priority of a random request to `oid` under Rule 5: Function (1)
    /// evaluated at the lowest level registered for `oid`, with the global
    /// bounds substituted for the per-query bounds.
    ///
    /// `fallback_level` and `fallback_bounds` (from the issuing query's own
    /// plan) are used when the registry has no information, e.g. for a
    /// query running alone whose registration was skipped.
    pub fn random_priority(
        &self,
        config: &PolicyConfig,
        oid: ObjectId,
        fallback_level: u32,
        fallback_bounds: (u32, u32),
    ) -> CachePriority {
        let inner = self.inner.lock();
        let level = inner.lowest_level_for(oid).unwrap_or(fallback_level);
        let (gl_low, gl_high) = inner.global_bounds().unwrap_or(fallback_bounds);
        drop(inner);
        random_request_priority(config, level, gl_low, gl_high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Access, OperatorKind, PlanNode};

    fn oid(n: u32) -> ObjectId {
        ObjectId(n)
    }

    fn index_scan(index: u32, table: u32) -> PlanNode {
        PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: oid(index),
                table: oid(table),
                lookups: 10,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        )
    }

    fn seq_scan(table: u32) -> PlanNode {
        PlanNode::leaf(
            OperatorKind::SeqScan,
            Access::SeqScan {
                table: oid(table),
                passes: 1,
            },
        )
    }

    /// A two-level plan: an index scan under a join with a sequential scan.
    fn plan_a() -> PlanTree {
        let join = PlanNode::node(
            OperatorKind::HashJoin,
            Access::None,
            vec![index_scan(10, 1), seq_scan(2)],
        );
        PlanTree::new("A", join)
    }

    /// A deeper plan where table 1 is accessed from a higher level.
    fn plan_b() -> PlanTree {
        let inner = PlanNode::node(
            OperatorKind::HashJoin,
            Access::None,
            vec![index_scan(20, 3), seq_scan(4)],
        );
        let outer = PlanNode::node(
            OperatorKind::NestedLoop,
            Access::None,
            vec![inner, index_scan(10, 1)],
        );
        PlanTree::new("B", outer)
    }

    #[test]
    fn register_and_unregister_are_symmetric() {
        let reg = ConcurrencyRegistry::new();
        let a = plan_a();
        let t = reg.register_query(&a);
        assert_eq!(reg.active_queries(), 1);
        reg.unregister_query(&a, t);
        assert_eq!(reg.active_queries(), 0);
        assert!(reg.global_bounds().is_none());
    }

    #[test]
    fn same_object_gets_same_priority_across_queries() {
        let cfg = PolicyConfig::paper_default();
        let reg = ConcurrencyRegistry::new();
        let a = plan_a();
        let b = plan_b();
        let _ta = reg.register_query(&a);
        let _tb = reg.register_query(&b);

        // In plan A, table 1 is accessed at level 0; in plan B at level 1.
        // Rule 5 assigns the highest priority (from the lowest level) to
        // both queries' requests.
        let p_from_a = reg.random_priority(&cfg, oid(1), 0, (0, 0));
        let p_from_b = reg.random_priority(&cfg, oid(1), 1, (0, 1));
        assert_eq!(p_from_a, p_from_b);
        assert_eq!(p_from_a, CachePriority(2));
    }

    #[test]
    fn global_bounds_cover_all_registered_queries() {
        let reg = ConcurrencyRegistry::new();
        let a = plan_a();
        let b = plan_b();
        let _ta = reg.register_query(&a);
        assert_eq!(reg.global_bounds(), Some((0, 0)));
        let _tb = reg.register_query(&b);
        let (lo, hi) = reg.global_bounds().unwrap();
        assert_eq!(lo, 0);
        assert!(hi >= 1);
    }

    #[test]
    fn fallbacks_used_when_nothing_registered() {
        let cfg = PolicyConfig::paper_default();
        let reg = ConcurrencyRegistry::new();
        let p = reg.random_priority(&cfg, oid(99), 2, (0, 3));
        assert_eq!(p, CachePriority(4));
    }

    #[test]
    fn counts_prevent_premature_removal() {
        let reg = ConcurrencyRegistry::new();
        let a1 = plan_a();
        let a2 = plan_a();
        let t1 = reg.register_query(&a1);
        let _t2 = reg.register_query(&a2);
        reg.unregister_query(&a1, t1);
        // The second registration still pins table 1 at level 0.
        let cfg = PolicyConfig::paper_default();
        let p = reg.random_priority(&cfg, oid(1), 5, (0, 5));
        assert_eq!(p, CachePriority(2));
    }
}
