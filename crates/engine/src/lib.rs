//! The DBMS side of hStorage-DB.
//!
//! The paper instruments PostgreSQL so that semantic information flows from
//! the query optimizer and execution engine down to the storage manager,
//! which classifies every I/O request and attaches a QoS policy before the
//! request leaves the DBMS. This crate is a purpose-built mini engine that
//! reproduces exactly that pipeline:
//!
//! * [`catalog`] — database objects (tables, indexes, temporary files) and
//!   their physical block layout,
//! * [`semantic`] — the semantic information carried by each data request
//!   (content type, access pattern, originating plan level),
//! * [`plan`] — query plan trees with operator levels and the blocking-
//!   operator level recalculation of Section 4.2.2,
//! * [`priority`] — Function (1), the mapping from plan level to caching
//!   priority,
//! * [`concurrency`] — the shared registry (`H<oid, list>`, `gl_low`,
//!   `gl_high`) that makes priority assignment deterministic across
//!   concurrently running queries (Rule 5),
//! * [`policy_table`] — the policy assignment table implementing Rules 1–5,
//! * [`buffer_pool`] — the DBMS buffer pool that absorbs re-accesses before
//!   they become storage I/O,
//! * [`executor`] — turns a plan tree into a classified block-level request
//!   stream against a [`hstorage_cache::StorageSystem`],
//! * [`migration`] — the driver that offers the storage system background
//!   tier-migration windows at query boundaries (and on demand),
//! * [`service`] — the request/response query service: a bounded worker
//!   pool that sustains tens of thousands of logical query streams over a
//!   fixed number of OS threads, with backpressure, admission control and
//!   per-request latency percentiles,
//! * [`stats`] — per-query execution statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer_pool;
pub mod catalog;
pub mod concurrency;
pub mod executor;
pub mod migration;
pub mod plan;
pub mod policy_table;
pub mod priority;
pub mod program;
pub mod semantic;
pub mod service;
pub mod stats;

pub use buffer_pool::BufferPool;
pub use catalog::{Catalog, ObjectId, ObjectKind};
pub use concurrency::ConcurrencyRegistry;
pub use executor::{
    run_concurrent, run_threaded, CompletedQuery, ExecutorConfig, QueryExecutor, StreamSpec,
};
pub use migration::MigrationDriver;
pub use plan::{Access, OperatorKind, PlanNode, PlanTree};
pub use policy_table::PolicyAssignmentTable;
pub use priority::random_request_priority;
pub use program::{compile, CompileOptions, IoOp, RequestProgram};
pub use semantic::{AccessPattern, ContentType, SemanticInfo};
pub use service::{
    run_streams_service, QueryRequest, QueryResponse, QueryService, ServiceConfig, ServiceReport,
    SubmitError, WorkerStats,
};
pub use stats::QueryStats;
