//! The query executor.
//!
//! The executor turns a compiled [`RequestProgram`]
//! into classified I/O against a [`StorageSystem`], going through the DBMS
//! buffer pool first and assigning a QoS policy to every request via the
//! policy assignment table at issue time.
//!
//! Storage is accessed through `&dyn StorageSystem`: the storage service is
//! shared, and all its mutation is interior. Two multi-stream drivers are
//! provided on top of the single-query path:
//!
//! * [`run_concurrent`] — the deterministic cooperative slicer used by the
//!   paper-figure experiments: one executor, one buffer pool, streams
//!   interleaved a fixed number of operations at a time. Fully
//!   reproducible, single-threaded.
//! * [`run_threaded`] — real OS-thread concurrency: each stream runs on its
//!   own thread with its own executor (and buffer pool) against one shared
//!   `Arc<dyn StorageSystem>`, with one [`ConcurrencyRegistry`] shared by
//!   all streams so Rule 5 still governs priority assignment.
//!
//! Sequential streams (table scans, temporary-data generation and
//! consumption) are issued in *vectored batches* of up to
//! [`ExecutorConfig::io_batch_size`] requests through
//! [`StorageSystem::submit_batch`], so the storage system sees a scan as the
//! semantic batch it is — one classification, one shard-lock acquisition per
//! shard, mergeable device transfers — instead of a stream of independent
//! submits. Batches are flushed before any random submit, TRIM or query
//! completion, so the request order reaching storage is identical to
//! unbatched execution.

use crate::buffer_pool::BufferPool;
use crate::catalog::Catalog;
use crate::concurrency::ConcurrencyRegistry;
use crate::plan::PlanTree;
use crate::policy_table::PolicyAssignmentTable;
use crate::program::{compile, CompileOptions, IoOp, RequestProgram};
use crate::semantic::SemanticInfo;
use crate::stats::QueryStats;
use hstorage_cache::StorageSystem;
use hstorage_storage::{
    BlockAddr, BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, TrimCommand,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// DBMS buffer-pool capacity in blocks.
    pub buffer_pool_blocks: u64,
    /// CPU cost charged per block processed.
    pub cpu_time_per_block: Duration,
    /// Blocks per sequential read request.
    pub seq_blocks_per_request: u64,
    /// Blocks per temporary-data request.
    pub temp_blocks_per_request: u64,
    /// Seed for the deterministic random-access generator.
    pub seed: u64,
    /// Maximum number of sequential-stream requests the executor collects
    /// into one vectored [`StorageSystem::submit_batch`] call. Sequential
    /// scans and temporary-data streams vector their run of requests up to
    /// this size; index/random paths always submit per request. `1`
    /// disables batching. Because a batch is flushed before any
    /// non-batchable request (and before TRIM), the request order seen by
    /// storage is identical to unbatched execution.
    pub io_batch_size: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            buffer_pool_blocks: 4096,
            cpu_time_per_block: Duration::from_micros(12),
            seq_blocks_per_request: 64,
            temp_blocks_per_request: 32,
            seed: 0x5707ACEDB,
            io_batch_size: 16,
        }
    }
}

impl ExecutorConfig {
    /// The compile options implied by this configuration.
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            seq_blocks_per_request: self.seq_blocks_per_request,
            temp_blocks_per_request: self.temp_blocks_per_request,
        }
    }
}

/// Executes query plans against a storage system.
pub struct QueryExecutor {
    policy_table: PolicyAssignmentTable,
    registry: ConcurrencyRegistry,
    buffer_pool: BufferPool,
    config: ExecutorConfig,
    rng: SmallRng,
    /// Sequential-stream requests collected for the next vectored submit.
    pending: Vec<ClassifiedRequest>,
}

impl QueryExecutor {
    /// Creates an executor with its own (single-query) registry.
    pub fn new(config: ExecutorConfig, policy: PolicyConfig) -> Self {
        Self::with_registry(config, policy, ConcurrencyRegistry::new())
    }

    /// Creates an executor that shares `registry` with other executors
    /// (Rule 5: concurrent queries must agree on priorities).
    pub fn with_registry(
        config: ExecutorConfig,
        policy: PolicyConfig,
        registry: ConcurrencyRegistry,
    ) -> Self {
        QueryExecutor {
            policy_table: PolicyAssignmentTable::new(policy),
            registry,
            buffer_pool: BufferPool::new(config.buffer_pool_blocks),
            rng: SmallRng::seed_from_u64(config.seed),
            pending: Vec::with_capacity(config.io_batch_size),
            config,
        }
    }

    /// The shared concurrency registry.
    pub fn registry(&self) -> &ConcurrencyRegistry {
        &self.registry
    }

    /// The policy assignment table.
    pub fn policy_table(&self) -> &PolicyAssignmentTable {
        &self.policy_table
    }

    /// The DBMS buffer pool.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.buffer_pool
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Clears the buffer pool (used between independent experiment runs).
    pub fn clear_buffer_pool(&mut self) {
        self.buffer_pool.clear();
    }

    /// Compiles a plan against the catalog.
    pub fn compile(&self, plan: &PlanTree, catalog: &mut Catalog) -> RequestProgram {
        compile(plan, catalog, self.config.compile_options())
    }

    /// Compiles and runs one query to completion, registering it with the
    /// concurrency registry for its duration.
    pub fn run_query(
        &mut self,
        plan: &PlanTree,
        catalog: &mut Catalog,
        storage: &dyn StorageSystem,
    ) -> QueryStats {
        let program = self.compile(plan, catalog);
        let ticket = self.registry.register_query(plan);
        let mut stats = QueryStats::new(&program.name);
        let io_start = storage.now();
        for op in &program.ops {
            self.execute_op(op, program.level_bounds, catalog, storage, &mut stats);
        }
        self.flush_pending(storage);
        self.registry.unregister_query(plan, ticket);
        finalize(&mut stats, io_start, storage);
        // Query boundaries are the executor's natural idle points: offer
        // the storage system a tier-migration window (a no-op unless a
        // migration engine is configured). Placed after `finalize` so
        // background device traffic is never charged to this query's I/O
        // time.
        storage.migrate_idle();
        stats
    }

    /// Executes one operation of a compiled program. Used directly by the
    /// concurrent-workload driver; most callers want [`Self::run_query`].
    pub fn execute_op(
        &mut self,
        op: &IoOp,
        level_bounds: (u32, u32),
        catalog: &mut Catalog,
        storage: &dyn StorageSystem,
        stats: &mut QueryStats,
    ) {
        match op {
            IoOp::SequentialRead { info, range } => {
                self.issue(storage, stats, info, level_bounds, *range, false, true);
                self.charge_cpu(stats, range.len);
            }
            IoOp::IndexProbe {
                index_info,
                index_hot,
                table_info,
                table_hot,
            } => {
                let index_block = self.pick(index_hot);
                let table_block = self.pick(table_hot);
                self.random_block_access(storage, stats, index_info, level_bounds, index_block);
                self.random_block_access(storage, stats, table_info, level_bounds, table_block);
                self.charge_cpu(stats, 2);
            }
            IoOp::TempWrite { info, range } => {
                self.issue(storage, stats, info, level_bounds, *range, true, true);
                self.charge_cpu(stats, range.len);
            }
            IoOp::TempRead { info, range } => {
                self.issue(storage, stats, info, level_bounds, *range, false, true);
                self.charge_cpu(stats, range.len);
            }
            IoOp::TempDelete { info, range, oid } => {
                // The deletion itself is a metadata operation: the DBMS
                // notifies the storage system that the blocks are dead. In
                // hStorage-DB this becomes a TRIM (or the "non-caching and
                // eviction" scan workaround); legacy systems ignore it.
                stats.record_request(info.request_class(), range.len);
                // Pending batched reads/writes must reach storage before
                // the blocks are invalidated.
                self.flush_pending(storage);
                storage.trim(&TrimCommand::single(*range));
                for block in range.iter() {
                    self.buffer_pool.invalidate(block);
                }
                catalog.drop_temp(*oid);
            }
            IoOp::UpdateWrite { info, table_range } => {
                let block = self.pick(table_range);
                let policy = self.policy_table.assign(info, &self.registry, level_bounds);
                let io = IoRequest::write(BlockRange::new(block, 1), false);
                stats.record_request(info.request_class(), 1);
                self.flush_pending(storage);
                storage.submit(ClassifiedRequest::new(io, info.request_class(), policy));
                self.buffer_pool.invalidate(block);
                self.charge_cpu(stats, 1);
            }
        }
    }

    /// One random single-block read that goes through the buffer pool.
    fn random_block_access(
        &mut self,
        storage: &dyn StorageSystem,
        stats: &mut QueryStats,
        info: &SemanticInfo,
        level_bounds: (u32, u32),
        block: BlockAddr,
    ) {
        if self.buffer_pool.access(block, true) {
            stats.buffer_pool_hits += 1;
            return;
        }
        stats.buffer_pool_misses += 1;
        self.issue(
            storage,
            stats,
            info,
            level_bounds,
            BlockRange::new(block, 1),
            false,
            false,
        );
    }

    /// Issues one classified storage request.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        storage: &dyn StorageSystem,
        stats: &mut QueryStats,
        info: &SemanticInfo,
        level_bounds: (u32, u32),
        range: BlockRange,
        is_write: bool,
        sequential: bool,
    ) {
        let policy = self.policy_table.assign(info, &self.registry, level_bounds);
        let io = if is_write {
            IoRequest::write(range, sequential)
        } else {
            IoRequest::read(range, sequential)
        };
        let class = info.request_class();
        stats.record_request(class, range.len);
        let req = ClassifiedRequest::new(io, class, policy);
        if sequential && self.config.io_batch_size > 1 {
            // Sequential streams vector their run of requests; the batch is
            // flushed as soon as it is full or a non-batchable request
            // needs to preserve ordering.
            self.pending.push(req);
            if self.pending.len() >= self.config.io_batch_size {
                self.flush_pending(storage);
            }
        } else {
            self.flush_pending(storage);
            storage.submit(req);
        }
    }

    /// Submits any batched sequential requests still pending, as one
    /// vectored [`StorageSystem::submit_batch`] call.
    ///
    /// [`Self::run_query`] and the stream drivers flush at every point that
    /// needs ordering (before random submits, TRIMs, and query completion);
    /// callers driving [`Self::execute_op`] directly must flush before
    /// reading storage state or time.
    pub fn flush_pending(&mut self, storage: &dyn StorageSystem) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        storage.submit_batch(batch);
    }

    fn pick(&mut self, range: &BlockRange) -> BlockAddr {
        if range.len <= 1 {
            return range.start;
        }
        BlockAddr(range.start.0 + self.rng.gen_range(0..range.len))
    }

    fn charge_cpu(&self, stats: &mut QueryStats, blocks: u64) {
        stats.cpu_time += self.config.cpu_time_per_block * blocks as u32;
    }
}

fn finalize(stats: &mut QueryStats, io_start: Duration, storage: &dyn StorageSystem) {
    stats.io_time = storage.now().saturating_sub(io_start);
    stats.elapsed = stats.io_time + stats.cpu_time;
}

/// Internal state of one query inside the concurrent driver.
struct ActiveQuery {
    plan: PlanTree,
    ticket: crate::concurrency::QueryTicket,
    program: RequestProgram,
    cursor: usize,
    stats: QueryStats,
    io_start: Duration,
}

/// One stream of queries for the concurrent driver.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream name ("stream-1", "update-stream", …).
    pub name: String,
    /// Queries to run, in order.
    pub queries: Vec<PlanTree>,
}

/// The result of one query completed by the concurrent driver.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// The stream the query belonged to.
    pub stream: String,
    /// Execution statistics. `elapsed` is the wall-clock (simulated) time
    /// between the query's first and last operation, so it includes the
    /// interference of the other streams — the quantity Figure 12b reports.
    pub stats: QueryStats,
}

/// Runs several query streams concurrently against one storage system.
///
/// The driver interleaves the streams' compiled programs `ops_per_slice`
/// operations at a time, which models concurrent query execution over a
/// shared storage system with a shared DBMS buffer pool. All queries are
/// registered with the executor's concurrency registry for their duration,
/// so Rule 5 governs priority assignment.
///
/// This is the *deterministic* driver: a single thread, a fixed
/// interleaving, bit-identical results run to run — the tool for
/// reproducing the paper's throughput figures. For real parallelism over OS
/// threads use [`run_threaded`].
pub fn run_concurrent(
    executor: &mut QueryExecutor,
    streams: &[StreamSpec],
    catalog: &mut Catalog,
    storage: &dyn StorageSystem,
    ops_per_slice: usize,
) -> Vec<CompletedQuery> {
    assert!(ops_per_slice > 0, "ops_per_slice must be positive");
    let mut pending: Vec<std::collections::VecDeque<PlanTree>> = streams
        .iter()
        .map(|s| s.queries.iter().cloned().collect())
        .collect();
    let mut active: Vec<Option<ActiveQuery>> = streams.iter().map(|_| None).collect();
    let mut completed = Vec::new();

    loop {
        let mut any_work = false;
        for (idx, stream) in streams.iter().enumerate() {
            // Start the next query of this stream if none is active.
            if active[idx].is_none() {
                if let Some(plan) = pending[idx].pop_front() {
                    let program = executor.compile(&plan, catalog);
                    let ticket = executor.registry.register_query(&plan);
                    let stats = QueryStats::new(&program.name);
                    active[idx] = Some(ActiveQuery {
                        plan,
                        ticket,
                        program,
                        cursor: 0,
                        stats,
                        io_start: storage.now(),
                    });
                }
            }
            let Some(query) = active[idx].as_mut() else {
                continue;
            };
            any_work = true;

            // Split borrows: the ops are read out of `program` while the
            // stats are written, so the slice executes in place — no
            // per-slice clone of the `IoOp`s.
            let ActiveQuery {
                program,
                cursor,
                stats,
                ..
            } = query;
            let end = (*cursor + ops_per_slice).min(program.ops.len());
            for op in &program.ops[*cursor..end] {
                executor.execute_op(op, program.level_bounds, catalog, storage, stats);
            }
            // The slice boundary is also the batch boundary: flushing here
            // keeps the interleaving deterministic (a stream's batched scan
            // I/O never drifts into another stream's slice) and lets the
            // completion check below observe a fully up-to-date clock.
            executor.flush_pending(storage);
            *cursor = end;

            if query.cursor >= query.program.ops.len() {
                let mut done = active[idx].take().expect("query was active");
                executor.registry.unregister_query(&done.plan, done.ticket);
                finalize(&mut done.stats, done.io_start, storage);
                completed.push(CompletedQuery {
                    stream: stream.name.clone(),
                    stats: done.stats,
                });
            }
        }
        if !any_work {
            break;
        }
    }
    completed
}

/// Runs query streams in parallel OS threads against one shared storage
/// system, over a **bounded** pool of at most
/// `min(streams.len(), available_parallelism)` threads.
///
/// Every stream gets its own [`QueryExecutor`] (with its own DBMS buffer
/// pool and a per-stream RNG seed of `config.seed + stream index`) and its
/// own clone of `catalog` for temporary-file bookkeeping, with the temp
/// region relocated to a disjoint full-size per-stream copy so concurrent
/// spills never alias each other's blocks in the shared storage; all
/// executors share `registry`, so Rule 5 priority assignment sees every
/// concurrently running query exactly as the cooperative slicer does. The
/// storage system serializes internally (lock striping in the hybrid
/// cache), so the total device traffic is the union of all streams'
/// requests — but the interleaving, and therefore per-query cache hit
/// counts, are scheduling-dependent. Use [`run_concurrent`] when bit-exact
/// reproducibility matters and `run_threaded` to exercise or measure real
/// parallelism.
///
/// Pool workers claim whole streams from a shared counter, so a workload of
/// many streams completes over a fixed number of threads instead of
/// spawning one thread per stream (the fan-out bug this replaces — 10,000
/// streams used to mean 10,000 OS threads). A stream's per-stream state
/// (seed, temp region) depends only on its *index*, not on which worker
/// runs it. At most `available_parallelism` streams run at once; for
/// latency percentiles over huge stream counts, or for open-loop request
/// traffic, use the [`crate::service`] layer instead.
///
/// Results are returned grouped by stream, in stream order.
pub fn run_threaded(
    config: ExecutorConfig,
    policy: PolicyConfig,
    registry: &ConcurrencyRegistry,
    streams: &[StreamSpec],
    catalog: &Catalog,
    storage: &Arc<dyn StorageSystem>,
) -> Vec<CompletedQuery> {
    let workers = streams.len().min(crate::service::available_parallelism());
    let next_stream = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Mutex<Vec<CompletedQuery>>> =
        streams.iter().map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next_stream = &next_stream;
            let results = &results;
            let registry = registry.clone();
            scope.spawn(move || loop {
                let idx = next_stream.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(stream) = streams.get(idx) else {
                    break;
                };
                let mut catalog = catalog.clone();
                // Relocate each stream's temp region to a disjoint,
                // full-size copy of the original (stream 0 keeps the
                // original placement), so concurrent spills never alias
                // each other's blocks in the shared storage. The block
                // address space is simulated, so stacking fresh regions
                // past the original is free; keeping the original length
                // preserves each stream's spill/wrap behaviour. A single
                // stream keeps the whole region and the parent's cursor,
                // matching plain `run_query`.
                if streams.len() > 1 {
                    let region = catalog.temp_region();
                    let start = region.start.0 + idx as u64 * region.len;
                    catalog.set_temp_region(BlockRange::new(start, region.len));
                }
                let stream_config = ExecutorConfig {
                    seed: config.seed.wrapping_add(idx as u64),
                    ..config
                };
                let mut executor =
                    QueryExecutor::with_registry(stream_config, policy, registry.clone());
                let completed: Vec<CompletedQuery> = stream
                    .queries
                    .iter()
                    .map(|plan| CompletedQuery {
                        stream: stream.name.clone(),
                        stats: executor.run_query(plan, &mut catalog, storage.as_ref()),
                    })
                    .collect();
                *results[idx].lock().expect("result slot poisoned") = completed;
            });
        }
    });
    results
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectKind;
    use crate::plan::{Access, OperatorKind, PlanNode};
    use hstorage_cache::{HybridCache, StorageConfig, StorageConfigKind};
    use hstorage_storage::{QosPolicy, RequestClass};

    fn small_catalog() -> (Catalog, crate::catalog::ObjectId, crate::catalog::ObjectId) {
        let mut cat = Catalog::new();
        let table = cat.register("orders", ObjectKind::Table, BlockRange::new(0u64, 2_000));
        let index = cat.register(
            "idx_orders",
            ObjectKind::Index,
            BlockRange::new(2_000u64, 200),
        );
        cat.set_temp_region(BlockRange::new(50_000u64, 20_000));
        (cat, table, index)
    }

    fn seq_plan(table: crate::catalog::ObjectId) -> PlanTree {
        PlanTree::new(
            "seq",
            PlanNode::node(
                OperatorKind::Aggregate,
                Access::None,
                vec![PlanNode::leaf(
                    OperatorKind::SeqScan,
                    Access::SeqScan { table, passes: 1 },
                )],
            ),
        )
    }

    fn random_plan(
        table: crate::catalog::ObjectId,
        index: crate::catalog::ObjectId,
        lookups: u64,
    ) -> PlanTree {
        PlanTree::new(
            "rand",
            PlanNode::leaf(
                OperatorKind::IndexScan,
                Access::IndexScan {
                    index,
                    table,
                    lookups,
                    index_hot_fraction: 0.5,
                    table_hot_fraction: 0.2,
                },
            ),
        )
    }

    fn executor() -> QueryExecutor {
        let cfg = ExecutorConfig {
            buffer_pool_blocks: 128,
            ..ExecutorConfig::default()
        };
        QueryExecutor::new(cfg, PolicyConfig::paper_default())
    }

    #[test]
    fn sequential_query_issues_only_sequential_requests() {
        let (mut cat, table, _) = small_catalog();
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 1_000).build();
        let stats = exec.run_query(&seq_plan(table), &mut cat, storage.as_ref());
        assert_eq!(stats.blocks(RequestClass::Sequential), 2_000);
        assert_eq!(stats.requests(RequestClass::Random), 0);
        assert!(stats.elapsed > Duration::ZERO);
        assert!(stats.io_time > Duration::ZERO);
        // hStorage-DB does not cache sequentially scanned blocks.
        assert_eq!(storage.resident_blocks(), 0);
    }

    #[test]
    fn random_query_populates_cache_and_buffer_pool() {
        let (mut cat, table, index) = small_catalog();
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
        let stats = exec.run_query(
            &random_plan(table, index, 3_000),
            &mut cat,
            storage.as_ref(),
        );
        assert_eq!(stats.requests(RequestClass::Sequential), 0);
        assert!(stats.blocks(RequestClass::Random) > 0);
        assert!(storage.resident_blocks() > 0);
        assert!(stats.buffer_pool_hits + stats.buffer_pool_misses == 6_000);
    }

    #[test]
    fn repeated_random_query_benefits_from_the_ssd_cache() {
        let (mut cat, table, index) = small_catalog();
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
        let cold = exec.run_query(
            &random_plan(table, index, 2_000),
            &mut cat,
            storage.as_ref(),
        );
        let warm = exec.run_query(
            &random_plan(table, index, 2_000),
            &mut cat,
            storage.as_ref(),
        );
        assert!(
            warm.io_time < cold.io_time / 2,
            "warm {:?} vs cold {:?}",
            warm.io_time,
            cold.io_time
        );
    }

    #[test]
    fn temp_spill_lifecycle_reaches_storage_and_is_trimmed() {
        let (mut cat, _, _) = small_catalog();
        let plan = PlanTree::new(
            "spill",
            PlanNode::leaf(
                OperatorKind::Hash,
                Access::TempSpill {
                    blocks: 256,
                    read_passes: 1,
                },
            ),
        );
        let mut exec = executor();
        let hybrid = HybridCache::new(PolicyConfig::paper_default(), 10_000);
        let stats = exec.run_query(&plan, &mut cat, &hybrid);
        assert_eq!(stats.blocks(RequestClass::TemporaryData), 512); // write + read
        assert_eq!(stats.blocks(RequestClass::TemporaryDataTrim), 256);
        // After the TRIM at end of lifetime nothing remains cached.
        assert_eq!(hybrid.resident_blocks(), 0);
        // Temporary reads were all served from cache.
        let s = hybrid.stats();
        assert_eq!(s.class(RequestClass::TemporaryData).cache_hits, 256);
    }

    #[test]
    fn updates_go_to_the_write_buffer() {
        let (mut cat, table, _) = small_catalog();
        let plan = PlanTree::new(
            "rf1",
            PlanNode::leaf(OperatorKind::Update, Access::Update { table, blocks: 50 }),
        );
        let mut exec = executor();
        let hybrid = HybridCache::new(PolicyConfig::paper_default(), 10_000);
        let stats = exec.run_query(&plan, &mut cat, &hybrid);
        assert_eq!(stats.requests(RequestClass::Update), 50);
        let s = hybrid.stats();
        assert_eq!(s.class(RequestClass::Update).accessed_blocks, 50);
        assert!(s.action(hstorage_cache::CacheAction::WriteAllocation) > 0);
    }

    #[test]
    fn policy_assignment_reaches_storage_with_expected_priorities() {
        // A plan with index scans at two levels must produce requests at two
        // different priorities (Rule 2), which the hybrid cache tracks in
        // its per-priority statistics.
        let (mut cat, table, index) = small_catalog();
        let other_table = cat.register(
            "supplier",
            ObjectKind::Table,
            BlockRange::new(10_000u64, 200),
        );
        let other_index = cat.register(
            "idx_supplier",
            ObjectKind::Index,
            BlockRange::new(10_200u64, 20),
        );
        let low = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: other_index,
                table: other_table,
                lookups: 100,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        );
        let join = PlanNode::node(OperatorKind::HashJoin, Access::None, vec![low]);
        let high = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index,
                table,
                lookups: 100,
                index_hot_fraction: 0.5,
                table_hot_fraction: 0.2,
            },
        );
        let root = PlanNode::node(OperatorKind::NestedLoop, Access::None, vec![join, high]);
        let plan = PlanTree::new("two-level", root);

        let mut exec = executor();
        let hybrid = HybridCache::new(PolicyConfig::paper_default(), 10_000);
        exec.run_query(&plan, &mut cat, &hybrid);
        let s = hybrid.stats();
        assert!(s.priority(2).accessed_blocks > 0, "priority 2 traffic");
        assert!(s.priority(3).accessed_blocks > 0, "priority 3 traffic");
        let _ = QosPolicy::priority(2);
    }

    #[test]
    fn scan_batching_is_equivalent_to_unbatched_execution() {
        // With the default queue depth (1) the vectored path is not just
        // statistically but *timing*-identical to per-request submission,
        // for every op kind including spills (whose TRIM forces a flush).
        let (cat, table, index) = small_catalog();
        let spill = PlanTree::new(
            "spill",
            PlanNode::leaf(
                OperatorKind::Hash,
                Access::TempSpill {
                    blocks: 256,
                    read_passes: 1,
                },
            ),
        );
        let plans = [seq_plan(table), random_plan(table, index, 300), spill];

        let run = |io_batch_size: usize| {
            let cfg = ExecutorConfig {
                buffer_pool_blocks: 128,
                io_batch_size,
                ..ExecutorConfig::default()
            };
            let mut exec = QueryExecutor::new(cfg, PolicyConfig::paper_default());
            let mut cat = cat.clone();
            let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
            let stats: Vec<QueryStats> = plans
                .iter()
                .map(|p| exec.run_query(p, &mut cat, storage.as_ref()))
                .collect();
            (stats, storage.stats(), storage.now())
        };

        let (batched, batched_storage, batched_now) = run(16);
        let (unbatched, unbatched_storage, unbatched_now) = run(1);
        assert_eq!(batched, unbatched);
        assert_eq!(batched_storage, unbatched_storage);
        assert_eq!(batched_now, unbatched_now);
    }

    #[test]
    fn concurrent_driver_completes_all_queries() {
        let (mut cat, table, index) = small_catalog();
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
        let streams = vec![
            StreamSpec {
                name: "s1".into(),
                queries: vec![random_plan(table, index, 500), seq_plan(table)],
            },
            StreamSpec {
                name: "s2".into(),
                queries: vec![seq_plan(table)],
            },
        ];
        let done = run_concurrent(&mut exec, &streams, &mut cat, storage.as_ref(), 16);
        assert_eq!(done.len(), 3);
        assert_eq!(exec.registry().active_queries(), 0);
        assert!(done.iter().all(|q| q.stats.elapsed > Duration::ZERO));
        let s1_count = done.iter().filter(|q| q.stream == "s1").count();
        assert_eq!(s1_count, 2);
    }

    #[test]
    fn concurrent_queries_take_longer_than_standalone() {
        let (mut cat, table, index) = small_catalog();

        // Standalone execution.
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HddOnly, 0).build();
        let solo = exec.run_query(&random_plan(table, index, 500), &mut cat, storage.as_ref());

        // The same query with two competing sequential streams.
        let mut exec = executor();
        let storage = StorageConfig::new(StorageConfigKind::HddOnly, 0).build();
        let streams = vec![
            StreamSpec {
                name: "q".into(),
                queries: vec![random_plan(table, index, 500)],
            },
            StreamSpec {
                name: "noise1".into(),
                queries: vec![seq_plan(table)],
            },
            StreamSpec {
                name: "noise2".into(),
                queries: vec![seq_plan(table)],
            },
        ];
        let done = run_concurrent(&mut exec, &streams, &mut cat, storage.as_ref(), 8);
        let contended = &done.iter().find(|q| q.stream == "q").unwrap().stats;
        assert!(contended.elapsed > solo.elapsed);
    }

    #[test]
    fn threaded_driver_completes_all_queries_on_shared_storage() {
        let (cat, table, index) = small_catalog();
        let storage: Arc<dyn StorageSystem> =
            StorageConfig::new(StorageConfigKind::HStorageDb, 5_000)
                .with_shards(8)
                .build_shared();
        let registry = ConcurrencyRegistry::new();
        let streams = vec![
            StreamSpec {
                name: "s1".into(),
                queries: vec![random_plan(table, index, 500), seq_plan(table)],
            },
            StreamSpec {
                name: "s2".into(),
                queries: vec![seq_plan(table)],
            },
            StreamSpec {
                name: "s3".into(),
                queries: vec![random_plan(table, index, 200)],
            },
        ];
        let cfg = ExecutorConfig {
            buffer_pool_blocks: 128,
            ..ExecutorConfig::default()
        };
        let done = run_threaded(
            cfg,
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &storage,
        );
        assert_eq!(done.len(), 4);
        assert_eq!(registry.active_queries(), 0);
        assert!(done.iter().all(|q| q.stats.elapsed > Duration::ZERO));
        // Results are grouped by stream, in stream order.
        let order: Vec<&str> = done.iter().map(|q| q.stream.as_str()).collect();
        assert_eq!(order, ["s1", "s1", "s2", "s3"]);
    }

    /// Forwards to an inner storage system while recording every OS
    /// thread that ever touches it — ground truth for the pool bound.
    struct ThreadRecordingStorage {
        inner: Box<dyn StorageSystem>,
        threads: std::sync::Mutex<std::collections::HashSet<std::thread::ThreadId>>,
    }

    impl ThreadRecordingStorage {
        fn new(inner: Box<dyn StorageSystem>) -> Self {
            ThreadRecordingStorage {
                inner,
                threads: std::sync::Mutex::new(std::collections::HashSet::new()),
            }
        }

        fn record(&self) {
            self.threads
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
        }

        fn distinct_threads(&self) -> usize {
            self.threads.lock().unwrap().len()
        }
    }

    impl StorageSystem for ThreadRecordingStorage {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn submit(&self, req: ClassifiedRequest) {
            self.record();
            self.inner.submit(req);
        }
        fn submit_batch(&self, reqs: Vec<ClassifiedRequest>) {
            self.record();
            self.inner.submit_batch(reqs);
        }
        fn trim(&self, cmd: &TrimCommand) {
            self.record();
            self.inner.trim(cmd);
        }
        fn stats(&self) -> hstorage_cache::CacheStats {
            self.inner.stats()
        }
        fn now(&self) -> Duration {
            self.inner.now()
        }
        fn reset_stats(&self) {
            self.inner.reset_stats();
        }
        fn resident_blocks(&self) -> u64 {
            self.inner.resident_blocks()
        }
    }

    #[test]
    fn threaded_driver_bounds_its_thread_fan_out() {
        // Regression test for the thread-explosion bug: 10,000 single-query
        // streams used to spawn 10,000 OS threads. The pooled driver must
        // complete them all over at most `available_parallelism` workers.
        let mut cat = Catalog::new();
        let tiny = cat.register("tiny", ObjectKind::Table, BlockRange::new(0u64, 1));
        cat.set_temp_region(BlockRange::new(50_000u64, 64));
        let recorder = Arc::new(ThreadRecordingStorage::new(
            StorageConfig::new(StorageConfigKind::HStorageDb, 1_000)
                .with_shards(8)
                .build(),
        ));
        let storage: Arc<dyn StorageSystem> = recorder.clone();
        let streams: Vec<StreamSpec> = (0..10_000)
            .map(|i| StreamSpec {
                name: format!("s{i}"),
                queries: vec![seq_plan(tiny)],
            })
            .collect();
        let cfg = ExecutorConfig {
            buffer_pool_blocks: 16,
            ..ExecutorConfig::default()
        };
        let registry = ConcurrencyRegistry::new();
        let done = run_threaded(
            cfg,
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &storage,
        );
        assert_eq!(done.len(), 10_000);
        assert_eq!(registry.active_queries(), 0);
        // Results stay grouped by stream, in stream order.
        assert_eq!(done[0].stream, "s0");
        assert_eq!(done[9_999].stream, "s9999");
        let bound = crate::service::available_parallelism();
        let threads = recorder.distinct_threads();
        assert!(
            threads <= bound,
            "{threads} distinct submitter threads exceed the pool bound {bound}"
        );
        assert!(
            threads < 10_000,
            "thread fan-out must not scale with streams"
        );
    }

    #[test]
    fn threaded_driver_with_one_stream_matches_run_query() {
        let (cat, table, index) = small_catalog();
        let plans = vec![random_plan(table, index, 400), seq_plan(table)];
        let cfg = ExecutorConfig {
            buffer_pool_blocks: 128,
            ..ExecutorConfig::default()
        };

        let mut solo_cat = cat.clone();
        let mut exec = QueryExecutor::new(cfg, PolicyConfig::paper_default());
        let storage = StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build();
        let solo: Vec<QueryStats> = plans
            .iter()
            .map(|p| exec.run_query(p, &mut solo_cat, storage.as_ref()))
            .collect();

        let shared: Arc<dyn StorageSystem> =
            StorageConfig::new(StorageConfigKind::HStorageDb, 5_000).build_shared();
        let registry = ConcurrencyRegistry::new();
        let streams = vec![StreamSpec {
            name: "only".into(),
            queries: plans.clone(),
        }];
        let threaded = run_threaded(
            cfg,
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &shared,
        );
        assert_eq!(threaded.len(), solo.len());
        for (t, s) in threaded.iter().zip(&solo) {
            assert_eq!(t.stats.total_blocks(), s.total_blocks());
            assert_eq!(t.stats.total_requests(), s.total_requests());
            for class in RequestClass::all() {
                assert_eq!(t.stats.blocks(class), s.blocks(class), "{class:?}");
            }
        }
    }
}
