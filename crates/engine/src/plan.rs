//! Query plan trees.
//!
//! The priority assignment of Rule 2 depends only on the *shape* of the
//! query plan: which operators access which objects randomly, at which
//! level of the tree, and where blocking operators (hash, sort,
//! materialize) reset the level numbering. This module provides exactly
//! that: a plan tree whose nodes carry an operator kind and an access
//! specification, plus the level computations of Section 4.2.2:
//!
//! * the root is on the highest level; the leaf farthest from the root is
//!   on Level 0,
//! * a blocking operator at level `L` causes every operator that has to
//!   wait for it (its ancestors and their other subtrees at level `>= L`)
//!   to be renumbered as if the blocking operator were at Level 0.

use crate::catalog::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Operator kinds found in the TPC-H plans of the paper (Figures 2, 7, 8, 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Full sequential scan of a table.
    SeqScan,
    /// Index scan: random accesses to an index and its table.
    IndexScan,
    /// Hash build (blocking; may spill temporary data).
    Hash,
    /// Sort (blocking; may spill temporary data).
    Sort,
    /// Hash join probe side driver.
    HashJoin,
    /// Merge join.
    MergeJoin,
    /// Nested-loop join.
    NestedLoop,
    /// Aggregation (hash or group aggregate).
    Aggregate,
    /// Materialize (blocking; may spill temporary data).
    Materialize,
    /// Plain row-limit / top-level result node.
    Result,
    /// Application update statement (RF1/RF2 refresh functions).
    Update,
}

impl OperatorKind {
    /// Whether this operator is *blocking* in the sense of Section 4.2.2:
    /// operators above it (or its sibling) cannot proceed until it finishes.
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            OperatorKind::Hash | OperatorKind::Sort | OperatorKind::Materialize
        )
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            OperatorKind::SeqScan => "seq scan",
            OperatorKind::IndexScan => "index scan",
            OperatorKind::Hash => "hash",
            OperatorKind::Sort => "sort",
            OperatorKind::HashJoin => "hash join",
            OperatorKind::MergeJoin => "merge join",
            OperatorKind::NestedLoop => "nested loop",
            OperatorKind::Aggregate => "aggregate",
            OperatorKind::Materialize => "materialize",
            OperatorKind::Result => "result",
            OperatorKind::Update => "update",
        }
    }
}

/// The I/O an operator performs, in workload-model terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Access {
    /// The operator performs no storage I/O of its own (pure pipelining).
    None,
    /// Sequential scan of a table, `passes` full passes.
    SeqScan {
        /// Table being scanned.
        table: ObjectId,
        /// Number of complete passes over the table.
        passes: u32,
    },
    /// Index scan: `lookups` random probes. Each probe touches one index
    /// block and one table block, drawn from hot subsets of the two objects.
    IndexScan {
        /// The index being probed.
        index: ObjectId,
        /// The table the index points into.
        table: ObjectId,
        /// Number of probe operations.
        lookups: u64,
        /// Fraction of the index blocks the probes actually land on.
        index_hot_fraction: f64,
        /// Fraction of the table blocks the probes actually land on.
        table_hot_fraction: f64,
    },
    /// The operator spills temporary data: `blocks` are written during the
    /// generation phase and read back `read_passes` times during the
    /// consumption phase, after which the temporary file is deleted.
    TempSpill {
        /// Number of temporary blocks generated.
        blocks: u64,
        /// Number of read passes over the temporary data.
        read_passes: u32,
    },
    /// Application update: `blocks` random blocks of `table` are written.
    Update {
        /// The table being updated.
        table: ObjectId,
        /// Number of blocks written.
        blocks: u64,
    },
}

impl Access {
    /// Object ids this access touches *randomly* (relevant for Rule 2).
    pub fn random_objects(&self) -> Vec<ObjectId> {
        match self {
            Access::IndexScan { index, table, .. } => vec![*index, *table],
            _ => Vec::new(),
        }
    }
}

/// A node of a query plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Operator kind.
    pub kind: OperatorKind,
    /// The I/O this operator performs.
    pub access: Access,
    /// Child operators (inputs).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Creates a leaf node.
    pub fn leaf(kind: OperatorKind, access: Access) -> Self {
        PlanNode {
            kind,
            access,
            children: Vec::new(),
        }
    }

    /// Creates an interior node.
    pub fn node(kind: OperatorKind, access: Access, children: Vec<PlanNode>) -> Self {
        PlanNode {
            kind,
            access,
            children,
        }
    }

    /// Number of nodes in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }
}

/// One operator of a flattened plan, with its computed levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorLevel {
    /// Pre-order index of the node.
    pub index: usize,
    /// Operator kind.
    pub kind: OperatorKind,
    /// The operator's access specification.
    pub access: Access,
    /// Level before blocking-operator recalculation.
    pub original_level: u32,
    /// Level after blocking-operator recalculation (used by Rule 2).
    pub effective_level: u32,
}

/// A step of the execution order (post-order walk of the tree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecStep {
    /// Operator kind.
    pub kind: OperatorKind,
    /// The I/O the operator performs.
    pub access: Access,
    /// The operator's effective level (after blocking recalculation).
    pub level: u32,
}

/// A full query plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanTree {
    /// Query name ("Q9", "RF1", …).
    pub name: String,
    /// Root operator.
    pub root: PlanNode,
}

#[derive(Debug, Clone)]
struct FlatNode {
    kind: OperatorKind,
    access: Access,
    depth: u32,
    parent: Option<usize>,
}

impl PlanTree {
    /// Creates a plan tree.
    pub fn new(name: impl Into<String>, root: PlanNode) -> Self {
        PlanTree {
            name: name.into(),
            root,
        }
    }

    /// Total number of operators.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    fn flatten(&self) -> Vec<FlatNode> {
        fn walk(node: &PlanNode, depth: u32, parent: Option<usize>, out: &mut Vec<FlatNode>) {
            let idx = out.len();
            out.push(FlatNode {
                kind: node.kind,
                access: node.access,
                depth,
                parent,
            });
            for child in &node.children {
                walk(child, depth + 1, Some(idx), out);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        walk(&self.root, 0, None, &mut out);
        out
    }

    /// Number of levels in the tree (the root is on level `levels() - 1`).
    pub fn level_count(&self) -> u32 {
        let flat = self.flatten();
        flat.iter().map(|n| n.depth).max().unwrap_or(0) + 1
    }

    /// Computes original and effective levels for every operator.
    ///
    /// Original level: `max_depth - depth`, so the deepest leaf is Level 0
    /// and the root is on the highest level.
    ///
    /// Effective level: for every blocking operator `b` at original level
    /// `L_b`, every operator that is *not* in `b`'s subtree and whose
    /// original level is `>= L_b` is renumbered as if `b` were at Level 0,
    /// i.e. its level is reduced by `L_b`. When several blocking operators
    /// affect the same node, the largest reduction applies.
    pub fn operator_levels(&self) -> Vec<OperatorLevel> {
        let flat = self.flatten();
        let max_depth = flat.iter().map(|n| n.depth).max().unwrap_or(0);
        let original: Vec<u32> = flat.iter().map(|n| max_depth - n.depth).collect();

        // Subtree membership: node j is in subtree(i) iff i is an ancestor
        // of j (or i == j). With pre-order numbering, subtree(i) is a
        // contiguous index range; recompute by walking parents (trees here
        // are tiny, a dozen nodes at most).
        let is_ancestor = |anc: usize, mut node: usize| -> bool {
            loop {
                if node == anc {
                    return true;
                }
                match flat[node].parent {
                    Some(p) => node = p,
                    None => return false,
                }
            }
        };

        let blocking: Vec<(usize, u32)> = flat
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind.is_blocking())
            .map(|(i, _)| (i, original[i]))
            .collect();

        let mut effective = original.clone();
        for (i, lvl) in flat.iter().enumerate() {
            let _ = lvl;
            let mut reduction = 0u32;
            for &(b, lb) in &blocking {
                if b == i {
                    continue;
                }
                if !is_ancestor(b, i) && !is_ancestor(i, b) {
                    // `i` is in a sibling subtree of `b`.
                    if original[i] >= lb {
                        reduction = reduction.max(lb);
                    }
                } else if is_ancestor(b, i) {
                    // `i` is inside the blocking subtree: unaffected.
                } else {
                    // `i` is an ancestor of `b`: it waits for `b`.
                    if original[i] >= lb {
                        reduction = reduction.max(lb);
                    }
                }
            }
            effective[i] = original[i] - reduction.min(original[i]);
        }

        flat.into_iter()
            .enumerate()
            .map(|(i, n)| OperatorLevel {
                index: i,
                kind: n.kind,
                access: n.access,
                original_level: original[i],
                effective_level: effective[i],
            })
            .collect()
    }

    /// The lowest and highest *effective* levels over all operators that
    /// issue random requests (`llow`, `lhigh` in Function (1)). `None` if
    /// the plan has no random operators.
    pub fn random_level_bounds(&self) -> Option<(u32, u32)> {
        let levels = self.operator_levels();
        let mut bounds: Option<(u32, u32)> = None;
        for op in &levels {
            if op.access.random_objects().is_empty() {
                continue;
            }
            bounds = Some(match bounds {
                None => (op.effective_level, op.effective_level),
                Some((lo, hi)) => (lo.min(op.effective_level), hi.max(op.effective_level)),
            });
        }
        bounds
    }

    /// For every object accessed randomly, the minimum effective level of
    /// the operators accessing it — Rule 2's "the priorities of all random
    /// requests to this table are determined by the operator at the lowest
    /// level of the query plan tree".
    pub fn random_object_levels(&self) -> HashMap<ObjectId, u32> {
        let mut map: HashMap<ObjectId, u32> = HashMap::new();
        for op in self.operator_levels() {
            for oid in op.access.random_objects() {
                map.entry(oid)
                    .and_modify(|l| *l = (*l).min(op.effective_level))
                    .or_insert(op.effective_level);
            }
        }
        map
    }

    /// The execution order: a post-order walk (children before parents), as
    /// produced by an iterator-model executor where blocking operators fully
    /// consume their input before producing output.
    pub fn execution_order(&self) -> Vec<ExecStep> {
        let levels = self.operator_levels();
        // Build a map from pre-order index to effective level, then walk
        // post-order.
        let eff: Vec<u32> = levels.iter().map(|l| l.effective_level).collect();
        let mut steps = Vec::with_capacity(levels.len());
        fn walk(node: &PlanNode, counter: &mut usize, eff: &[u32], steps: &mut Vec<ExecStep>) {
            let my_index = *counter;
            *counter += 1;
            for child in &node.children {
                walk(child, counter, eff, steps);
            }
            steps.push(ExecStep {
                kind: node.kind,
                access: node.access,
                level: eff[my_index],
            });
        }
        let mut counter = 0;
        walk(&self.root, &mut counter, &eff, &mut steps);
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u32) -> ObjectId {
        ObjectId(n)
    }

    /// Builds the example plan tree of Figure 2:
    ///
    /// ```text
    /// Level 5:        nested loop                      index scan t.a (idx at L1 in paper's text)
    /// Level 4:     hash        index scan t.c
    /// ...
    /// Level 0: index scan t.a   seq scan t.b   index scan t.b ...
    /// ```
    ///
    /// We reproduce the structural facts the paper states: a 6-level tree,
    /// a blocking hash on level 4 whose sibling (index scan on t.c) and
    /// parent (root) are renumbered to levels 0 and 1.
    fn figure2_tree() -> PlanTree {
        // Objects: 1 = t.a, 2 = t.a index, 3 = t.b, 4 = t.b index,
        //          5 = t.c, 6 = t.c index.
        let idx_a_low = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: oid(2),
                table: oid(1),
                lookups: 100,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        );
        let seq_b = PlanNode::leaf(
            OperatorKind::SeqScan,
            Access::SeqScan {
                table: oid(3),
                passes: 1,
            },
        );
        let join_l1 = PlanNode::node(OperatorKind::HashJoin, Access::None, vec![idx_a_low, seq_b]);
        let idx_b = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: oid(4),
                table: oid(3),
                lookups: 100,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        );
        let join_l2 = PlanNode::node(OperatorKind::NestedLoop, Access::None, vec![join_l1, idx_b]);
        let idx_a_high = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: oid(2),
                table: oid(1),
                lookups: 100,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        );
        let join_l3 = PlanNode::node(
            OperatorKind::NestedLoop,
            Access::None,
            vec![join_l2, idx_a_high],
        );
        let hash = PlanNode::node(OperatorKind::Hash, Access::None, vec![join_l3]);
        let idx_c = PlanNode::leaf(
            OperatorKind::IndexScan,
            Access::IndexScan {
                index: oid(6),
                table: oid(5),
                lookups: 100,
                index_hot_fraction: 1.0,
                table_hot_fraction: 1.0,
            },
        );
        let root = PlanNode::node(OperatorKind::HashJoin, Access::None, vec![hash, idx_c]);
        PlanTree::new("figure2", root)
    }

    #[test]
    fn figure2_has_six_levels() {
        let t = figure2_tree();
        assert_eq!(t.level_count(), 6);
        assert_eq!(t.size(), 10);
    }

    #[test]
    fn figure2_blocking_recalculation() {
        let t = figure2_tree();
        let levels = t.operator_levels();
        // Root (hash join) is originally on level 5; the hash below it is on
        // level 4; the index scan on t.c is the hash's sibling on level 4.
        let root = &levels[0];
        assert_eq!(root.kind, OperatorKind::HashJoin);
        assert_eq!(root.original_level, 5);
        assert_eq!(root.effective_level, 1);

        let hash = levels
            .iter()
            .find(|l| l.kind == OperatorKind::Hash)
            .unwrap();
        assert_eq!(hash.original_level, 4);
        // The blocking operator itself keeps its level; only waiters are
        // renumbered.
        assert_eq!(hash.effective_level, 4);

        let idx_c = levels
            .iter()
            .find(|l| matches!(l.access, Access::IndexScan { table, .. } if table == oid(5)))
            .unwrap();
        assert_eq!(idx_c.original_level, 4);
        assert_eq!(idx_c.effective_level, 0);
    }

    #[test]
    fn figure2_random_object_levels_follow_rule_2() {
        let t = figure2_tree();
        let map = t.random_object_levels();
        // t.a (oid 1) is accessed by index scans on levels 0 and 3; the
        // lowest level (0) wins.
        assert_eq!(map[&oid(1)], 0);
        assert_eq!(map[&oid(2)], 0);
        // t.b (oid 3) is randomly accessed by the index scan one level above
        // the deepest leaves.
        assert_eq!(map[&oid(3)], 1);
        // t.c (oid 5) is randomly accessed by the renumbered index scan at
        // level 0.
        assert_eq!(map[&oid(5)], 0);
    }

    #[test]
    fn figure2_random_level_bounds() {
        let t = figure2_tree();
        let (lo, hi) = t.random_level_bounds().unwrap();
        assert_eq!(lo, 0);
        // Highest effective level of a random operator: the upper index
        // scan on t.a lives inside the hash's subtree, so its level (2) is
        // unaffected by the blocking recalculation.
        assert_eq!(hi, 2);
    }

    #[test]
    fn execution_order_is_post_order() {
        let t = figure2_tree();
        let order = t.execution_order();
        assert_eq!(order.len(), t.size());
        // The root must come last.
        assert_eq!(order.last().unwrap().kind, OperatorKind::HashJoin);
        // The first executed operator is the deepest leaf (index scan t.a).
        assert_eq!(order[0].kind, OperatorKind::IndexScan);
        assert_eq!(order[0].level, 0);
    }

    #[test]
    fn plan_without_random_operators_has_no_bounds() {
        let scan = PlanNode::leaf(
            OperatorKind::SeqScan,
            Access::SeqScan {
                table: oid(1),
                passes: 1,
            },
        );
        let root = PlanNode::node(OperatorKind::Aggregate, Access::None, vec![scan]);
        let t = PlanTree::new("seq-only", root);
        assert!(t.random_level_bounds().is_none());
        assert!(t.random_object_levels().is_empty());
    }

    #[test]
    fn single_node_plan_levels() {
        let t = PlanTree::new(
            "tiny",
            PlanNode::leaf(
                OperatorKind::SeqScan,
                Access::SeqScan {
                    table: oid(9),
                    passes: 1,
                },
            ),
        );
        let levels = t.operator_levels();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].original_level, 0);
        assert_eq!(levels[0].effective_level, 0);
        assert_eq!(t.level_count(), 1);
    }
}
