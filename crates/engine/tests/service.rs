//! Equivalence of the query service at one worker with plain sequential
//! execution.
//!
//! With a single worker the service executes requests in a fully
//! deterministic global order: the head query of every stream in stream
//! order, then — because the closed-loop driver submits a stream's next
//! query only when its previous one completes — the remaining queries
//! generation by generation (every stream's second query in stream order,
//! then every third, …). A single [`QueryExecutor`] running the same
//! queries in that order through [`QueryExecutor::run_query`] must produce
//! identical per-query statistics and identical simulated storage timing:
//! the service adds scheduling, not semantics.

use hstorage_cache::{StorageConfig, StorageConfigKind, StorageSystem};
use hstorage_engine::{
    run_streams_service, Access, Catalog, ConcurrencyRegistry, ExecutorConfig, ObjectKind,
    OperatorKind, PlanNode, PlanTree, QueryExecutor, ServiceConfig, StreamSpec,
};
use hstorage_storage::{BlockRange, PolicyConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn catalog() -> (
    Catalog,
    hstorage_engine::ObjectId,
    hstorage_engine::ObjectId,
) {
    let mut cat = Catalog::new();
    let table = cat.register("orders", ObjectKind::Table, BlockRange::new(0u64, 800));
    let index = cat.register("idx", ObjectKind::Index, BlockRange::new(2_000u64, 100));
    cat.set_temp_region(BlockRange::new(50_000u64, 4_000));
    (cat, table, index)
}

/// One randomly chosen small query shape.
#[derive(Debug, Clone)]
enum QueryShape {
    Seq { passes: u32 },
    Index { lookups: u64 },
    Spill { blocks: u64 },
}

impl QueryShape {
    fn plan(&self, table: hstorage_engine::ObjectId, index: hstorage_engine::ObjectId) -> PlanTree {
        match *self {
            QueryShape::Seq { passes } => PlanTree::new(
                "seq",
                PlanNode::leaf(OperatorKind::SeqScan, Access::SeqScan { table, passes }),
            ),
            QueryShape::Index { lookups } => PlanTree::new(
                "rand",
                PlanNode::leaf(
                    OperatorKind::IndexScan,
                    Access::IndexScan {
                        index,
                        table,
                        lookups,
                        index_hot_fraction: 0.5,
                        table_hot_fraction: 0.2,
                    },
                ),
            ),
            QueryShape::Spill { blocks } => PlanTree::new(
                "spill",
                PlanNode::leaf(
                    OperatorKind::Hash,
                    Access::TempSpill {
                        blocks,
                        read_passes: 1,
                    },
                ),
            ),
        }
    }
}

fn query_shape() -> impl Strategy<Value = QueryShape> {
    // The offline proptest stand-in has no `prop_oneof!`; a discriminant
    // drawn alongside the parameters selects the variant.
    (0u8..3, 1u32..=2, 10u64..=120, 16u64..=64).prop_map(|(kind, passes, lookups, blocks)| {
        match kind {
            0 => QueryShape::Seq { passes },
            1 => QueryShape::Index { lookups },
            _ => QueryShape::Spill { blocks },
        }
    })
}

fn workload() -> impl Strategy<Value = Vec<Vec<QueryShape>>> {
    prop::collection::vec(prop::collection::vec(query_shape(), 0..4), 1..5)
}

fn config() -> ExecutorConfig {
    ExecutorConfig {
        buffer_pool_blocks: 128,
        ..ExecutorConfig::default()
    }
}

/// The single-worker service's deterministic execution order: generation
/// by generation, streams in order.
fn round_robin_order(streams: &[StreamSpec]) -> Vec<(usize, usize)> {
    let mut order = Vec::new();
    let mut generation = 0;
    loop {
        let before = order.len();
        for (idx, stream) in streams.iter().enumerate() {
            if generation < stream.queries.len() {
                order.push((idx, generation));
            }
        }
        if order.len() == before {
            return order;
        }
        generation += 1;
    }
}

/// Service soak: 10⁴ logical streams sustained over a bounded worker pool.
///
/// Run explicitly (`cargo test --release -- --ignored soak`); the CI
/// `service-soak` step runs it in release mode with a capped test-thread
/// count. Debug-mode `cargo test` skips it to keep the default suite fast.
#[test]
#[ignore = "release-mode soak; exercised by the CI service-soak step"]
fn soak_ten_thousand_streams_over_bounded_workers() {
    let mut cat = Catalog::new();
    let tiny = cat.register("tiny", ObjectKind::Table, BlockRange::new(0u64, 4));
    cat.set_temp_region(BlockRange::new(50_000u64, 64));
    let storage: Arc<dyn StorageSystem> = StorageConfig::new(StorageConfigKind::HStorageDb, 1_000)
        .with_shards(8)
        .build_shared();
    let registry = ConcurrencyRegistry::new();
    let streams: Vec<StreamSpec> = (0..10_000)
        .map(|i| StreamSpec {
            name: format!("s{i}"),
            queries: vec![PlanTree::new(
                "seq",
                PlanNode::leaf(
                    OperatorKind::SeqScan,
                    Access::SeqScan {
                        table: tiny,
                        passes: 1,
                    },
                ),
            )],
        })
        .collect();
    let service = ServiceConfig::default(); // workers = available parallelism
    let report = run_streams_service(
        ExecutorConfig {
            buffer_pool_blocks: 16,
            ..ExecutorConfig::default()
        },
        service,
        PolicyConfig::paper_default(),
        &registry,
        &streams,
        &cat,
        &storage,
    );
    assert_eq!(report.completed.len(), 10_000);
    assert_eq!(report.latency.len(), 10_000);
    assert_eq!(registry.active_queries(), 0);
    let (p50, p99, p999) = (
        report.latency.p50().expect("non-empty"),
        report.latency.p99().expect("non-empty"),
        report.latency.p999().expect("non-empty"),
    );
    assert!(p50 <= p99 && p99 <= p999, "{p50:?} <= {p99:?} <= {p999:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_worker_service_matches_sequential_run_query(shapes in workload()) {
        let (cat, table, index) = catalog();
        let streams: Vec<StreamSpec> = shapes
            .iter()
            .enumerate()
            .map(|(i, queries)| StreamSpec {
                name: format!("s{i}"),
                queries: queries.iter().map(|q| q.plan(table, index)).collect(),
            })
            .collect();

        // Service side: one worker, closed loop.
        let service_storage: Arc<dyn StorageSystem> =
            StorageConfig::new(StorageConfigKind::HStorageDb, 2_000).build_shared();
        let registry = ConcurrencyRegistry::new();
        let report = run_streams_service(
            config(),
            ServiceConfig { workers: 1, queue_depth: 4 },
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &cat,
            &service_storage,
        );

        // Reference side: one executor, same queries, the service's
        // deterministic execution order.
        let reference_storage =
            StorageConfig::new(StorageConfigKind::HStorageDb, 2_000).build();
        let mut reference_cat = cat.clone();
        let mut exec = QueryExecutor::new(config(), PolicyConfig::paper_default());
        let mut reference: Vec<Vec<hstorage_engine::QueryStats>> =
            streams.iter().map(|_| Vec::new()).collect();
        for (stream_idx, query_idx) in round_robin_order(&streams) {
            let stats = exec.run_query(
                &streams[stream_idx].queries[query_idx],
                &mut reference_cat,
                reference_storage.as_ref(),
            );
            reference[stream_idx].push(stats);
        }

        // Per-query statistics agree, grouped by stream in stream order.
        let flat_reference: Vec<_> = streams
            .iter()
            .zip(&reference)
            .flat_map(|(stream, stats)| stats.iter().map(move |s| (stream.name.clone(), s)))
            .collect();
        prop_assert_eq!(report.completed.len(), flat_reference.len());
        for (got, (name, want)) in report.completed.iter().zip(&flat_reference) {
            prop_assert_eq!(&got.stream, name);
            prop_assert_eq!(&got.stats, *want);
        }
        // Simulated storage timing and statistics agree exactly.
        prop_assert_eq!(service_storage.now(), reference_storage.now());
        prop_assert_eq!(service_storage.stats(), reference_storage.stats());
        // One latency sample per completed query.
        prop_assert_eq!(report.latency.len(), flat_reference.len());
    }
}
