//! # hStorage-DB
//!
//! A full-system reproduction of *"hStorage-DB: Heterogeneity-aware Data
//! Management to Exploit the Full Capability of Hybrid Storage Systems"*
//! (Luo, Lee, Mesnier, Chen, Zhang — VLDB 2012), built from scratch in
//! Rust.
//!
//! The library is organised as a stack:
//!
//! * [`hstorage_storage`] — block model, QoS policy vocabulary, simulated
//!   HDD/SSD devices, the Differentiated Storage Services request tagging,
//! * [`hstorage_cache`] — the hybrid SSD-over-HDD cache with selective
//!   allocation/eviction over priority groups, plus the LRU / HDD-only /
//!   SSD-only baselines,
//! * [`hstorage_engine`] — the mini DBMS: plan trees, semantic information,
//!   the policy assignment table (Rules 1–5, Function (1)), buffer pool,
//!   concurrency registry and executor,
//! * [`hstorage_tpch`] — the TPC-H substrate: schema, layout, the nine
//!   indexes of Table 3, plan templates for Q1–Q22 and RF1/RF2, power and
//!   throughput orderings,
//! * this crate — a [`TpchSystem`] façade that wires all of the above
//!   together, and the [`experiments`] module that regenerates every table
//!   and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use hstorage::{SystemConfig, TpchSystem};
//! use hstorage_cache::StorageConfigKind;
//! use hstorage_tpch::{QueryId, TpchScale};
//!
//! // A small database with the paper's cache:data ratio, managed by
//! // hStorage-DB.
//! let config = SystemConfig::single_query(TpchScale::new(0.02), StorageConfigKind::HStorageDb);
//! let mut system = TpchSystem::new(config);
//! let stats = system.run(QueryId::Q(1));
//! assert!(stats.elapsed.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod system;

pub use config::SystemConfig;
pub use report::{format_duration_table, PaperComparison};
pub use system::TpchSystem;

// Re-export the crates of the stack so downstream users need only one
// dependency.
pub use hstorage_cache as cache;
pub use hstorage_engine as engine;
pub use hstorage_storage as storage;
pub use hstorage_tpch as tpch;
