//! Report formatting: plain-text tables and paper-vs-measured comparisons.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// One paper-vs-measured comparison row, used by EXPERIMENTS.md and the
/// benchmark harness output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperComparison {
    /// What is being compared ("Q9 SSD-only/HDD-only speedup", …).
    pub metric: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measures.
    pub measured: f64,
}

impl PaperComparison {
    /// Creates a comparison row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        PaperComparison {
            metric: metric.into(),
            paper,
            measured,
        }
    }

    /// Whether paper and measured values agree in *direction* relative to
    /// 1.0 (both are speedups > 1, both are slowdowns < 1, or both ≈ 1).
    pub fn same_direction(&self) -> bool {
        let side = |v: f64| {
            if v > 1.05 {
                1
            } else if v < 0.95 {
                -1
            } else {
                0
            }
        };
        side(self.paper) == side(self.measured) || side(self.measured) == 0 || side(self.paper) == 0
    }
}

/// Renders a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    };
    render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&sep, &widths, &mut out);
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Renders a table of (label, duration) pairs in seconds.
pub fn format_duration_table(title: &str, rows: &[(String, Duration)]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, d)| vec![label.clone(), format!("{:.3}", d.as_secs_f64())])
        .collect();
    format!("{title}\n{}", format_table(&["case", "seconds"], &body))
}

/// Formats a ratio ("3.3x") for report text.
pub fn format_speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let s = format_table(
            &["query", "seconds"],
            &[
                vec!["Q1".into(), "317".into()],
                vec!["Q19".into(), "252".into()],
            ],
        );
        assert!(s.contains("Q1"));
        assert!(s.contains("317"));
        assert!(s.contains("Q19"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|')));
    }

    #[test]
    fn duration_table_formats_seconds() {
        let s = format_duration_table(
            "Fig 5",
            &[("HDD-only".to_string(), Duration::from_millis(1500))],
        );
        assert!(s.starts_with("Fig 5"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn comparison_direction() {
        assert!(PaperComparison::new("a", 7.2, 4.0).same_direction());
        assert!(PaperComparison::new("b", 0.8, 0.7).same_direction());
        assert!(!PaperComparison::new("c", 3.0, 0.5).same_direction());
        assert!(PaperComparison::new("d", 1.0, 2.0).same_direction());
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(format_speedup(3.275), "3.27x");
    }
}
