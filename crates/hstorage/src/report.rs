//! Report formatting: plain-text tables and paper-vs-measured comparisons.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// One paper-vs-measured comparison row, used by EXPERIMENTS.md and the
/// benchmark harness output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperComparison {
    /// What is being compared ("Q9 SSD-only/HDD-only speedup", …).
    pub metric: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measures.
    pub measured: f64,
}

impl PaperComparison {
    /// Creates a comparison row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        PaperComparison {
            metric: metric.into(),
            paper,
            measured,
        }
    }

    /// Whether paper and measured values agree in *direction* relative to
    /// 1.0 (both are speedups > 1, both are slowdowns < 1, or both ≈ 1).
    pub fn same_direction(&self) -> bool {
        let side = |v: f64| {
            if v > 1.05 {
                1
            } else if v < 0.95 {
                -1
            } else {
                0
            }
        };
        side(self.paper) == side(self.measured) || side(self.measured) == 0 || side(self.paper) == 0
    }
}

/// Serializes comparison rows as a JSON array — the format of
/// `BENCH_report.json` / `BENCH_baseline.json` used by the CI performance
/// gate. The vendored serde stand-in has no serializer, so the flat row
/// schema (`metric`, `paper`, `measured`) is written by hand; swapping in
/// the real `serde_json` would make this a one-liner over the existing
/// derives.
pub fn comparisons_to_json(rows: &[PaperComparison]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"metric\": {}, \"paper\": {}, \"measured\": {}}}",
            json_string(&row.metric),
            json_number(row.paper),
            json_number(row.measured)
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/inf; null round-trips to NaN.
        "null".to_string()
    }
}

/// Parses comparison rows written by [`comparisons_to_json`] (tolerating
/// arbitrary whitespace, key order and unknown numeric precision).
pub fn comparisons_from_json(text: &str) -> Result<Vec<PaperComparison>, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut rows = Vec::new();
    p.skip_ws();
    if !p.eat(b']') {
        loop {
            rows.push(p.row()?);
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b']')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(rows)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(c), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (metric names are free text).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn row(&mut self) -> Result<PaperComparison, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut metric = None;
        let mut paper = None;
        let mut measured = None;
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "metric" => metric = Some(self.string()?),
                "paper" => paper = Some(self.number()?),
                "measured" => measured = Some(self.number()?),
                other => return Err(format!("unknown key {other:?}")),
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            break;
        }
        Ok(PaperComparison {
            metric: metric.ok_or("row missing \"metric\"")?,
            paper: paper.ok_or("row missing \"paper\"")?,
            measured: measured.ok_or("row missing \"measured\"")?,
        })
    }
}

/// Renders a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    };
    render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&sep, &widths, &mut out);
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Renders a table of (label, duration) pairs in seconds.
pub fn format_duration_table(title: &str, rows: &[(String, Duration)]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, d)| vec![label.clone(), format!("{:.3}", d.as_secs_f64())])
        .collect();
    format!("{title}\n{}", format_table(&["case", "seconds"], &body))
}

/// Formats a ratio ("3.3x") for report text.
pub fn format_speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let s = format_table(
            &["query", "seconds"],
            &[
                vec!["Q1".into(), "317".into()],
                vec!["Q19".into(), "252".into()],
            ],
        );
        assert!(s.contains("Q1"));
        assert!(s.contains("317"));
        assert!(s.contains("Q19"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|')));
    }

    #[test]
    fn duration_table_formats_seconds() {
        let s = format_duration_table(
            "Fig 5",
            &[("HDD-only".to_string(), Duration::from_millis(1500))],
        );
        assert!(s.starts_with("Fig 5"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn comparison_direction() {
        assert!(PaperComparison::new("a", 7.2, 4.0).same_direction());
        assert!(PaperComparison::new("b", 0.8, 0.7).same_direction());
        assert!(!PaperComparison::new("c", 3.0, 0.5).same_direction());
        assert!(PaperComparison::new("d", 1.0, 2.0).same_direction());
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(format_speedup(3.275), "3.27x");
    }

    #[test]
    fn json_round_trips_comparison_rows() {
        let rows = vec![
            PaperComparison::new("plain metric", 7.2, 4.0),
            PaperComparison::new("quotes \" and \\ back\nslash", 0.25, 1e-3),
            PaperComparison::new("empty-ish", 0.0, 123456.789),
        ];
        let json = comparisons_to_json(&rows);
        let parsed = comparisons_from_json(&json).expect("round trip parses");
        assert_eq!(parsed, rows);
    }

    #[test]
    fn json_parser_accepts_reordered_keys_and_whitespace() {
        let text = r#" [ {"paper": 1.5, "measured": 2, "metric": "m"} ] "#;
        let rows = comparisons_from_json(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].metric, "m");
        assert_eq!(rows[0].paper, 1.5);
        assert_eq!(rows[0].measured, 2.0);
        assert_eq!(comparisons_from_json("[]").unwrap(), vec![]);
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        assert!(comparisons_from_json("").is_err());
        assert!(comparisons_from_json("[{\"metric\": \"m\"}]").is_err());
        assert!(comparisons_from_json("[] trailing").is_err());
        assert!(comparisons_from_json("[{\"metric\": \"m\", \"paper\": x}]").is_err());
    }
}
