//! Policy-knob ablation: how sensitive the tunable baselines are to their
//! knobs on the policy-comparison TPC-H mix.
//!
//! PR 4 hard-coded the 2Q fractions (`Kin` 25%, `Kout` 50%) and the CFLRU
//! clean-first window (25%); this experiment sweeps each knob over the
//! same query mix the policy comparison uses
//! ([`super::policy_comparison::QUERY_MIX`]) so the defaults stop being an
//! article of faith:
//!
//! * **CFLRU window** — a wider clean-first window finds more clean
//!   victims and so pays fewer dirty write-backs to the HDD (the gated
//!   direction), at some cost in hit ratio;
//! * **2Q `Kin`** — a larger probationary queue approaches plain FIFO
//!   behaviour and lets one-shot traffic crowd the hot queue; shrinking
//!   it must not lose hits on this mix (the gated direction);
//! * **2Q `Kout`** — a larger ghost directory remembers evictions longer,
//!   catching longer re-reference distances (reported, not gated: on this
//!   mix the re-reference distances are short enough that a small
//!   directory is already sufficient);
//! * **ARC** — reported alongside as the self-tuning reference point: the
//!   policy the sweeps motivate, because it needs none of these knobs.

use crate::experiments::policy_comparison::QUERY_MIX;
use crate::report::format_table;
use crate::{SystemConfig, TpchSystem};
use hstorage_cache::{CachePolicyKind, StorageConfigKind};
use hstorage_tpch::TpchScale;
use std::fmt;

/// One knob setting's result over the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobRow {
    /// The policy (with knobs) that produced the row, e.g.
    /// `2q(kin=10%,kout=50%)`.
    pub setting: String,
    /// Total simulated execution time of the mix in seconds.
    pub seconds: f64,
    /// Overall cache hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
    /// Blocks written to the second-level (HDD) device.
    pub hdd_blocks_written: u64,
}

/// Results of the policy-knob ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyAblationReport {
    /// CFLRU clean-first window sweep, in ascending window order.
    pub cflru_window: Vec<KnobRow>,
    /// 2Q probationary-fraction sweep (`Kout` fixed at its default).
    pub two_q_kin: Vec<KnobRow>,
    /// 2Q ghost-fraction sweep (`Kin` fixed at its default).
    pub two_q_kout: Vec<KnobRow>,
    /// The self-tuning ARC reference row.
    pub arc: KnobRow,
}

fn run_mix(scale: TpchScale, kind: CachePolicyKind) -> KnobRow {
    let config =
        SystemConfig::single_query(scale, StorageConfigKind::HStorageDb).with_cache_policy(kind);
    let mut system = TpchSystem::new(config);
    let stats = system.run_sequence(&QUERY_MIX);
    let seconds = stats.iter().map(|s| s.elapsed.as_secs_f64()).sum();
    let storage = system.storage_stats();
    let totals = storage.totals();
    KnobRow {
        setting: kind.describe(),
        seconds,
        hit_ratio: if totals.accessed_blocks == 0 {
            0.0
        } else {
            totals.cache_hits as f64 / totals.accessed_blocks as f64
        },
        hdd_blocks_written: storage.hdd.map(|d| d.blocks_written).unwrap_or(0),
    }
}

/// The swept CFLRU windows, in percent (first = narrowest, last = widest).
pub const CFLRU_WINDOWS: [u8; 3] = [5, 25, 75];
/// The swept 2Q `Kin` fractions, in percent.
pub const TWO_Q_KINS: [u8; 3] = [10, 25, 50];
/// The swept 2Q `Kout` fractions, in percent (first = smallest ghost
/// directory, last = largest).
pub const TWO_Q_KOUTS: [u8; 3] = [10, 50, 150];

/// Runs every sweep on the policy-comparison mix at `scale`. Both 2Q
/// sweeps pass through the default point (`kin` 25% / `kout` 50%), which
/// is simulated once and shared.
pub fn run(scale: TpchScale) -> PolicyAblationReport {
    let two_q_kin: Vec<KnobRow> = TWO_Q_KINS
        .iter()
        .map(|&kin_pct| {
            run_mix(
                scale,
                CachePolicyKind::TwoQ {
                    kin_pct,
                    kout_pct: 50,
                },
            )
        })
        .collect();
    let default_two_q = two_q_kin
        .iter()
        .find(|r| r.setting == CachePolicyKind::two_q().describe())
        .cloned();
    let two_q_kout = TWO_Q_KOUTS
        .iter()
        .map(|&kout_pct| match (kout_pct, &default_two_q) {
            (50, Some(row)) => row.clone(),
            _ => run_mix(
                scale,
                CachePolicyKind::TwoQ {
                    kin_pct: 25,
                    kout_pct,
                },
            ),
        })
        .collect();
    PolicyAblationReport {
        cflru_window: CFLRU_WINDOWS
            .iter()
            .map(|&window_pct| run_mix(scale, CachePolicyKind::Cflru { window_pct }))
            .collect(),
        two_q_kin,
        two_q_kout,
        arc: run_mix(scale, CachePolicyKind::Arc),
    }
}

impl PolicyAblationReport {
    /// Dirty write-backs saved by widening the CFLRU window: HDD blocks
    /// written at the narrowest window over the widest, add-one smoothed
    /// because a wide enough window routinely reaches **zero** dirty
    /// write-backs on this mix. The gated direction is ≥ 1 (a wider
    /// clean-first search must not *add* HDD write traffic).
    pub fn cflru_writeback_saving(&self) -> Option<f64> {
        let narrow = self.cflru_window.first()?.hdd_blocks_written;
        let wide = self.cflru_window.last()?.hdd_blocks_written;
        Some((narrow as f64 + 1.0) / (wide as f64 + 1.0))
    }

    /// Scan resistance of a small probationary queue: hit ratio at the
    /// smallest `Kin` over the largest. A large `A1in` approaches plain
    /// FIFO and lets the mix's scan and temp traffic crowd out `Am`, so
    /// the gated direction is ≥ 1 (shrinking probation must not lose
    /// hits).
    pub fn two_q_probation_payoff(&self) -> Option<f64> {
        let small = self.two_q_kin.first()?.hit_ratio;
        let large = self.two_q_kin.last()?.hit_ratio;
        if large == 0.0 {
            return None;
        }
        Some(small / large)
    }

    /// All rows in display order.
    fn all_rows(&self) -> Vec<&KnobRow> {
        self.cflru_window
            .iter()
            .chain(&self.two_q_kin)
            .chain(&self.two_q_kout)
            .chain(std::iter::once(&self.arc))
            .collect()
    }
}

impl fmt::Display for PolicyAblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mix: Vec<String> = QUERY_MIX.iter().map(|q| q.name()).collect();
        writeln!(
            f,
            "Policy knob ablation — CFLRU window / 2Q Kin / 2Q Kout sweeps on mix {}",
            mix.join("+")
        )?;
        let rows: Vec<Vec<String>> = self
            .all_rows()
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    format!("{:.3}", r.seconds),
                    format!("{:.1}%", r.hit_ratio * 100.0),
                    r.hdd_blocks_written.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &["setting", "seconds", "hit ratio", "hdd blks written"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn sweeps_cover_every_requested_setting() {
        let report = run(test_scale());
        assert_eq!(report.cflru_window.len(), CFLRU_WINDOWS.len());
        assert_eq!(report.two_q_kin.len(), TWO_Q_KINS.len());
        assert_eq!(report.two_q_kout.len(), TWO_Q_KOUTS.len());
        assert!(report.cflru_window[0].setting.contains("window=5%"));
        assert!(report.two_q_kin[0].setting.contains("kin=10%"));
        assert!(report.two_q_kout[2].setting.contains("kout=150%"));
        assert_eq!(report.arc.setting, "arc");
        // Every run served the same logical mix; the table text lists
        // every setting once.
        let text = report.to_string();
        for row in report.all_rows() {
            assert!(text.contains(&row.setting), "{}", row.setting);
        }
    }

    #[test]
    fn gated_directions_hold_at_test_scale() {
        let report = run(test_scale());
        let saving = report
            .cflru_writeback_saving()
            .expect("the window sweep ran");
        assert!(
            saving >= 0.95,
            "wider CFLRU window must not add write-backs (ratio {saving})"
        );
        let payoff = report.two_q_probation_payoff().expect("2Q hits exist");
        assert!(
            payoff >= 0.95,
            "a smaller 2Q probationary queue must not lose hits (ratio {payoff})"
        );
    }

    #[test]
    fn default_knob_rows_match_the_bare_policy_kinds() {
        // The middle points of the sweeps are the defaults, so a run under
        // the knob-free constructors must be identical — the proof that
        // the knob plumbing (unset) changed nothing.
        let scale = test_scale();
        let report = run(scale);
        let cflru_default = run_mix(scale, CachePolicyKind::cflru());
        let two_q_default = run_mix(scale, CachePolicyKind::two_q());
        assert_eq!(
            (
                report.cflru_window[1].seconds,
                report.cflru_window[1].hdd_blocks_written
            ),
            (cflru_default.seconds, cflru_default.hdd_blocks_written)
        );
        assert_eq!(
            (
                report.two_q_kin[1].seconds,
                report.two_q_kin[1].hdd_blocks_written
            ),
            (two_q_default.seconds, two_q_default.hdd_blocks_written)
        );
    }
}
