//! Crash consistency of the cache engine: fault-injected recovery from
//! the write-ahead journal, with recovery time as a measured quantity.
//!
//! The scenario exercises every journaled operation kind on one engine:
//! priority reads warm the cache and the heat tracker, write-buffer
//! bursts overflow the buffer so drains run (the torn-drain window the
//! journal's `DrainNote` records mark), TRIMs retire block ranges,
//! migration pulses run rounds, and a mid-workload stats reset checks
//! that learned heat survives counter resets on both sides of a crash.
//!
//! Fault injection then crashes the "persisted" journal image at a
//! deterministic spread of record offsets
//! ([`hstorage_cache::recovery::crash_offset`]) and recovers each
//! truncation into a fresh engine. Two convergence checks run:
//!
//! * **full log** — the recovered engine must match a *journal-off*
//!   engine driven through the identical workload, which proves the
//!   journal is a pure observer (journaling changed nothing) and that
//!   the log captured the op stream completely;
//! * **every crash point** — the recovered engine must match a clean
//!   twin that executed exactly the committed operation prefix, which
//!   proves truncation only ever tears whole batches — dirty
//!   write-buffer blocks are durably drained or cleanly lost, never
//!   half-applied.
//!
//! Everything except the wall-clock replay time is deterministic
//! (simulated devices, fixed workload, fixed seeds); `bench_gate` pins
//! the replayed-record count, the simulated replay time and the
//! blocks-recovered ratio as `sim: recovery` rows.

use crate::report::format_table;
use hstorage_cache::{
    apply_op, crash_offset, recover, replay_plan, verify_convergence, CacheEngine, JournalConfig,
    MigrationConfig, StorageSystem,
};
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass, TrimCommand,
};
use std::fmt;
use std::time::Duration;

/// Cache capacity in blocks (write-buffer share: one quarter).
pub const BLOCKS: u64 = 256;
/// Warm-up passes of priority reads over the cache-sized set.
pub const READ_PASSES: usize = 2;
/// Write-buffer burst rounds (each overflows the buffer, forcing drains).
pub const BURST_ROUNDS: u64 = 4;
/// Buffered writes per burst round.
pub const BURST_WRITES: u64 = 40;
/// Group-commit width of the journaled engine: wide enough that a crash
/// can tear several operations at once.
pub const COMMIT_INTERVAL: u32 = 4;
/// Crash points injected per run (seeds `0..CRASH_SEEDS`).
pub const CRASH_SEEDS: u64 = 48;
/// Seed of the torn gate row pinned by `bench_gate`.
pub const GATE_SEED: u64 = 42;

/// One recovered crash point.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// `"full log"` or `"seed-42 crash"`.
    pub label: String,
    /// Record offset the journal was truncated at.
    pub crash_offset: usize,
    /// Records covered by committed batches (the replayed span).
    pub records_replayed: usize,
    /// Trailing records discarded as the torn tail.
    pub records_discarded: usize,
    /// Logical operations re-executed.
    pub ops_applied: usize,
    /// Simulated device time the replay consumed, in seconds.
    pub replay_sim: f64,
    /// Blocks resident in the recovered cache.
    pub resident_blocks: u64,
    /// Whether the recovered engine converged with its clean twin.
    pub converged: bool,
}

/// Results of the crash-recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Records the full (sealed) journal holds.
    pub log_records: usize,
    /// Crash points injected.
    pub crash_points: u64,
    /// Crash points whose recovery converged with the clean twin.
    pub converged_points: u64,
    /// Recovery of the complete journal, verified against a journal-off
    /// clean run of the same workload.
    pub full: RecoveryRow,
    /// Recovery of the `GATE_SEED` truncation.
    pub torn: RecoveryRow,
    /// Resident blocks of the journal-off clean run.
    pub clean_resident: u64,
    /// Simulated seconds the journal-off clean run consumed.
    pub clean_seconds: f64,
    /// Wall-clock time the full-log replay took. Machine-dependent — the
    /// one non-deterministic measurement, excluded from equality.
    pub replay_wall: Duration,
}

/// Equality over the deterministic fields only: `replay_wall` is the one
/// machine-dependent measurement in the report.
impl PartialEq for RecoveryReport {
    fn eq(&self, other: &Self) -> bool {
        self.log_records == other.log_records
            && self.crash_points == other.crash_points
            && self.converged_points == other.converged_points
            && self.full == other.full
            && self.torn == other.torn
            && self.clean_resident == other.clean_resident
            && self.clean_seconds == other.clean_seconds
    }
}

impl RecoveryReport {
    /// Fraction of injected crash points that recovered into a
    /// convergent state (the gated invariant: must be 1.0).
    pub fn convergence_rate(&self) -> f64 {
        if self.crash_points == 0 {
            return 1.0;
        }
        self.converged_points as f64 / self.crash_points as f64
    }

    /// Resident blocks after full-log recovery over the clean run's
    /// (must be 1.0: nothing lost, nothing invented).
    pub fn blocks_recovered_ratio(&self) -> f64 {
        if self.clean_resident == 0 {
            return f64::INFINITY;
        }
        self.full.resident_blocks as f64 / self.clean_resident as f64
    }

    /// Simulated replay time of the full log over the clean run's
    /// simulated time (must be 1.0: replay re-executes the same
    /// traffic).
    pub fn sim_time_ratio(&self) -> f64 {
        if self.clean_seconds == 0.0 {
            return f64::INFINITY;
        }
        self.full.replay_sim / self.clean_seconds
    }
}

/// The migration knobs of the journaled engine: enabled with a small
/// idle gate so the workload's explicit pulses actually run rounds.
pub fn experiment_config() -> MigrationConfig {
    MigrationConfig::on().with_idle_threshold(Duration::from_micros(500))
}

fn build_engine(journal: JournalConfig) -> CacheEngine {
    CacheEngine::new(PolicyConfig::paper_default(), BLOCKS)
        .with_migration(experiment_config())
        .with_journal(journal)
}

fn read(lbn: u64, prio: u8) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::read(BlockRange::new(lbn, 1), false),
        RequestClass::Random,
        QosPolicy::priority(prio),
    )
}

fn buffered_write(lbn: u64) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::write(BlockRange::new(lbn, 1), false),
        RequestClass::Update,
        QosPolicy::WriteBuffer,
    )
}

/// Drives the fixed workload: warm reads, a stats reset, then
/// write-buffer bursts interleaved with TRIMs and migration pulses.
fn workload(engine: &CacheEngine) {
    for _ in 0..READ_PASSES {
        for lbn in 0..BLOCKS {
            engine.submit(read(lbn, 2));
        }
    }
    // Counters restart mid-run; learned heat must survive on both the
    // crashed and the clean side.
    engine.reset_stats();
    for round in 0..BURST_ROUNDS {
        let base = 10_000 + round * BURST_WRITES;
        for i in 0..BURST_WRITES {
            engine.submit(buffered_write(base + i));
        }
        engine.trim(&TrimCommand::new(vec![BlockRange::new(round * 8, 4u64)]));
        engine.migrate_idle();
    }
}

/// Crashes the journal image at `offset`, recovers it, and verifies the
/// result against a clean twin that executed the committed prefix.
fn inject(
    snapshot: &hstorage_cache::JournalSnapshot,
    offset: usize,
    label: &str,
) -> (RecoveryRow, Duration) {
    let torn = snapshot.crash_at(offset);
    let (recovered, outcome) =
        recover(&torn, build_engine(journal_config())).expect("truncated prefix is well-formed");
    let clean = build_engine(JournalConfig::off());
    let plan = replay_plan(&torn).expect("truncated prefix is well-formed");
    for op in &plan.ops {
        apply_op(&clean, op);
    }
    let converged = verify_convergence(&recovered, &clean).is_ok();
    (
        RecoveryRow {
            label: label.to_string(),
            crash_offset: offset,
            records_replayed: outcome.records_replayed,
            records_discarded: outcome.records_discarded,
            ops_applied: outcome.ops_applied,
            replay_sim: outcome.replay_sim.as_secs_f64(),
            resident_blocks: outcome.resident_blocks,
            converged,
        },
        outcome.replay_wall,
    )
}

/// The journal knobs of the crashed engine.
pub fn journal_config() -> JournalConfig {
    JournalConfig::on().with_commit_interval(COMMIT_INTERVAL)
}

/// Runs the workload on a journaled engine, injects `CRASH_SEEDS` crash
/// points plus the two gate points, and returns the report. Fully
/// deterministic apart from the wall-clock replay time.
pub fn run() -> RecoveryReport {
    let original = build_engine(journal_config());
    workload(&original);
    // Clean shutdown: the tail batch commits, so full-log recovery
    // replays every operation.
    original.journal_seal();
    let snapshot = original.journal_snapshot().expect("journal attached");
    let log_records = snapshot.len();

    let mut converged_points = 0u64;
    for seed in 0..CRASH_SEEDS {
        let (row, _) = inject(&snapshot, crash_offset(seed, log_records), "sweep");
        if row.converged {
            converged_points += 1;
        }
    }
    let (mut full, replay_wall) = inject(&snapshot, log_records, "full log");
    let (torn, _) = inject(
        &snapshot,
        crash_offset(GATE_SEED, log_records),
        "seed-42 crash",
    );

    // The full-log check is the strong one: the recovered engine must
    // match a *journal-off* engine driven through the workload itself,
    // proving journaling observed without interfering and the log
    // captured everything.
    let clean = build_engine(JournalConfig::off());
    workload(&clean);
    let (recovered, _) =
        recover(&snapshot, build_engine(journal_config())).expect("sealed log is well-formed");
    full.converged = verify_convergence(&recovered, &clean).is_ok();

    RecoveryReport {
        log_records,
        crash_points: CRASH_SEEDS,
        converged_points,
        full,
        torn,
        clean_resident: clean.resident_blocks(),
        clean_seconds: clean.now().as_secs_f64(),
        replay_wall,
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Crash recovery — {} journal records, {} injected crash points \
             ({} converged), clean run {:.3}s",
            self.log_records, self.crash_points, self.converged_points, self.clean_seconds,
        )?;
        let rows: Vec<Vec<String>> = [&self.full, &self.torn]
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.crash_offset.to_string(),
                    r.records_replayed.to_string(),
                    r.records_discarded.to_string(),
                    r.ops_applied.to_string(),
                    format!("{:.3}", r.replay_sim),
                    r.resident_blocks.to_string(),
                    if r.converged { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "crash point",
                    "offset",
                    "replayed",
                    "discarded",
                    "ops",
                    "replay sim s",
                    "resident",
                    "converged"
                ],
                &rows
            )
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "convergence rate: {:.2}   blocks recovered: {:.2}x   sim-time ratio: {:.2}x   \
             full replay wall: {:.3}ms",
            self.convergence_rate(),
            self.blocks_recovered_ratio(),
            self.sim_time_ratio(),
            self.replay_wall.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_injected_crash_point_converges() {
        let report = run();
        assert_eq!(report.converged_points, report.crash_points);
        assert!(report.full.converged, "full-log recovery must converge");
        assert!(report.torn.converged, "gate-seed recovery must converge");
        assert_eq!(report.convergence_rate(), 1.0);
    }

    #[test]
    fn full_log_recovery_is_exact() {
        let report = run();
        assert_eq!(report.full.records_discarded, 0, "sealed log has no tail");
        assert_eq!(report.full.records_replayed, report.log_records);
        assert_eq!(report.blocks_recovered_ratio(), 1.0);
        assert_eq!(report.sim_time_ratio(), 1.0);
    }

    #[test]
    fn the_workload_exercises_drains_and_torn_tails() {
        let report = run();
        // The bursts overflow the write buffer, so the journal must
        // carry drain notes inside its batches.
        let original = build_engine(journal_config());
        workload(&original);
        let snapshot = original.journal_snapshot().expect("journal attached");
        let drains = snapshot
            .records()
            .iter()
            .filter(|r| matches!(r, hstorage_cache::JournalRecord::DrainNote { .. }))
            .count();
        assert!(drains > 0, "no write-buffer drain was journaled");
        // The gate-seed truncation lands mid-log.
        assert!(report.torn.crash_offset < report.log_records);
    }

    #[test]
    fn the_report_is_deterministic() {
        assert_eq!(run(), run());
    }
}
