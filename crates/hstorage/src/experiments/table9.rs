//! Table 9 and Figure 12: the concurrent throughput test.
//!
//! Section 6.4: three query streams and one update stream run concurrently
//! at a reduced scale with a small buffer pool and a small SSD cache. The
//! paper reports the TPC-H throughput metric per configuration (Table 9:
//! 13 / 28 / 43 / 114) and, in Figure 12, compares the standalone execution
//! times of Q9 and Q18 with their average times inside the throughput test
//! to show that hStorage-DB's advantage *grows* under concurrency.

use crate::report::format_table;
use crate::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::throughput::{
    query_stream, throughput_metric, update_stream, PAPER_QUERY_STREAMS,
};
use hstorage_tpch::{QueryId, TpchScale};
use std::fmt;

/// Result of the throughput test for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Configuration label.
    pub config: String,
    /// Total simulated wall-clock of the test in seconds.
    pub elapsed_seconds: f64,
    /// The TPC-H throughput metric (queries per hour across the streams).
    pub throughput: f64,
    /// Average execution time of Q9 inside the test, in seconds.
    pub q9_avg_seconds: f64,
    /// Average execution time of Q18 inside the test, in seconds.
    pub q18_avg_seconds: f64,
}

/// One Figure 12 comparison: standalone vs in-throughput execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Configuration label.
    pub config: String,
    /// Query name ("Q9" or "Q18").
    pub query: String,
    /// Standalone execution time (Figure 12a).
    pub standalone_seconds: f64,
    /// Average execution time inside the throughput test (Figure 12b).
    pub concurrent_seconds: f64,
}

/// Table 9 + Figure 12 results.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// One row per configuration (Table 9).
    pub rows: Vec<ThroughputRow>,
    /// Figure 12 comparisons.
    pub fig12: Vec<Fig12Row>,
}

/// Runs the throughput test under every configuration.
pub fn run(scale: TpchScale) -> ThroughputReport {
    let mut rows = Vec::new();
    let mut fig12 = Vec::new();

    for kind in StorageConfigKind::all() {
        // Concurrent run: 3 query streams + 1 update stream.
        let mut system = TpchSystem::new(SystemConfig::throughput(scale, kind));
        let mut streams: Vec<(String, Vec<QueryId>)> = (0..PAPER_QUERY_STREAMS)
            .map(|i| (format!("query-stream-{}", i + 1), query_stream(i)))
            .collect();
        streams.push((
            "update-stream".to_string(),
            update_stream(PAPER_QUERY_STREAMS),
        ));
        let completed = system.run_streams(&streams, 64);
        let elapsed_seconds = system.storage_time().as_secs_f64();
        let throughput = throughput_metric(PAPER_QUERY_STREAMS, elapsed_seconds);

        let avg = |name: &str| -> f64 {
            let times: Vec<f64> = completed
                .iter()
                .filter(|c| c.stats.name == name)
                .map(|c| c.stats.elapsed.as_secs_f64())
                .collect();
            if times.is_empty() {
                0.0
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            }
        };
        let q9_avg_seconds = avg("Q9");
        let q18_avg_seconds = avg("Q18");

        // Standalone runs for Figure 12a, at the same (throughput) scale.
        for (query, concurrent) in [
            (QueryId::Q(9), q9_avg_seconds),
            (QueryId::Q(18), q18_avg_seconds),
        ] {
            let mut solo = TpchSystem::new(SystemConfig::throughput(scale, kind));
            let stats = solo.run(query);
            fig12.push(Fig12Row {
                config: kind.label().to_string(),
                query: query.name(),
                standalone_seconds: stats.elapsed.as_secs_f64(),
                concurrent_seconds: concurrent,
            });
        }

        rows.push(ThroughputRow {
            config: kind.label().to_string(),
            elapsed_seconds,
            throughput,
            q9_avg_seconds,
            q18_avg_seconds,
        });
    }
    ThroughputReport { rows, fig12 }
}

impl ThroughputReport {
    /// The row for one configuration.
    pub fn row(&self, config: &str) -> Option<&ThroughputRow> {
        self.rows.iter().find(|r| r.config == config)
    }

    /// hStorage-DB throughput speedup over the baseline (paper: 3.3x).
    pub fn hstorage_over_hdd(&self) -> Option<f64> {
        Some(self.row("hStorage-DB")?.throughput / self.row("HDD-only")?.throughput)
    }

    /// hStorage-DB throughput speedup over LRU (paper: 1.5x).
    pub fn hstorage_over_lru(&self) -> Option<f64> {
        Some(self.row("hStorage-DB")?.throughput / self.row("LRU")?.throughput)
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 9 — TPC-H throughput results")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.config.clone(),
                    format!("{:.1}", r.throughput),
                    format!("{:.1}", r.elapsed_seconds),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &["config", "throughput (queries/hour)", "elapsed (s)"],
                &rows
            )
        )?;
        writeln!(
            f,
            "\nFigure 12 — Q9/Q18 standalone vs throughput-test average (seconds)"
        )?;
        let rows: Vec<Vec<String>> = self
            .fig12
            .iter()
            .map(|r| {
                vec![
                    r.query.clone(),
                    r.config.clone(),
                    format!("{:.3}", r.standalone_seconds),
                    format!("{:.3}", r.concurrent_seconds),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &["query", "config", "standalone", "in throughput test"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The throughput test is the heaviest experiment; run it at a very
    // small scale in unit tests (the benchmark harness uses larger scales).
    fn tiny_scale() -> TpchScale {
        TpchScale::new(0.01)
    }

    #[test]
    fn throughput_ordering_matches_the_paper() {
        let report = run(tiny_scale());
        assert_eq!(report.rows.len(), 4);
        let hdd = report.row("HDD-only").unwrap().throughput;
        let lru = report.row("LRU").unwrap().throughput;
        let h = report.row("hStorage-DB").unwrap().throughput;
        let ssd = report.row("SSD-only").unwrap().throughput;
        // Table 9 ordering: HDD-only < LRU < hStorage-DB < SSD-only.
        assert!(hdd < lru, "HDD {hdd} !< LRU {lru}");
        assert!(lru < h, "LRU {lru} !< hStorage {h}");
        assert!(h < ssd, "hStorage {h} !< SSD {ssd}");
        assert!(report.hstorage_over_hdd().unwrap() > 1.3);
        assert!(report.hstorage_over_lru().unwrap() > 1.0);
    }

    #[test]
    fn fig12_concurrent_times_exceed_standalone() {
        let report = run(tiny_scale());
        assert_eq!(report.fig12.len(), 8);
        for row in &report.fig12 {
            assert!(
                row.concurrent_seconds >= row.standalone_seconds * 0.9,
                "{} {} concurrent {} vs standalone {}",
                row.config,
                row.query,
                row.concurrent_seconds,
                row.standalone_seconds
            );
        }
    }

    #[test]
    fn display_contains_table9_and_fig12() {
        let report = run(tiny_scale());
        let text = report.to_string();
        assert!(text.contains("Table 9"));
        assert!(text.contains("Figure 12"));
    }
}
