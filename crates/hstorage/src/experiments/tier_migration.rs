//! Tier migration under a phase-shifting workload: hit ratio and
//! per-device busy time with and without the background migration engine.
//!
//! The scenario is the paper's own Achilles heel made concrete. Selective
//! allocation/eviction places blocks by the QoS priority attached at
//! admission and never revisits the decision, so when the working set
//! shifts to data carrying a (numerically) lower priority, the incoming
//! blocks cannot displace the now-cold residents — `pop_victim` admits
//! only over victims of equal or lower value — and every access bypasses
//! to the HDD forever:
//!
//! * **phase A** fills the cache with a priority-2 set (several passes of
//!   random reads, so the set is both resident and warm);
//! * **phase B** abandons it and hammers a disjoint priority-3 set of the
//!   same size.
//!
//! Without migration, phase B is a permanent bypass storm: the hit ratio
//! collapses and the HDD carries the whole phase. With migration enabled
//! ([`MigrationConfig`]), the heat tracker watches the bypassing
//! accesses, idle rounds demote the decayed phase-A residents and promote
//! the observed-hot phase-B blocks, and the cache converges on the new
//! working set. The comparison is deterministic end to end (simulated
//! devices, fixed workload, fixed pulse cadence) — `bench_gate` pins both
//! sides as `sim:` rows, and the migration-off side must stay
//! bit-identical to an engine built without a migration engine at all.

use crate::report::format_table;
use hstorage_cache::{MigrationConfig, StorageConfig, StorageConfigKind, StorageSystem};
use hstorage_engine::MigrationDriver;
use hstorage_storage::{BlockRange, ClassifiedRequest, IoRequest, QosPolicy, RequestClass};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Cache capacity and per-phase working-set size, in blocks.
pub const BLOCKS: u64 = 256;
/// Block-address offset of the phase-B working set (disjoint from A).
pub const PHASE_B_OFFSET: u64 = 10_000;
/// Passes over the phase-A set (fills and warms the cache).
pub const PHASE_A_PASSES: usize = 4;
/// Passes over the phase-B set (the shifted working set).
pub const PHASE_B_PASSES: usize = 16;
/// Submissions between two migration pulses.
pub const PULSE_EVERY: usize = 64;

/// One side of the comparison: the workload run with one migration
/// setting.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRow {
    /// `"migration off"` or `"migration on"`.
    pub config: String,
    /// Overall cache hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
    /// Simulated SSD busy time in seconds.
    pub ssd_busy: f64,
    /// Simulated HDD busy time in seconds.
    pub hdd_busy: f64,
    /// Total simulated time of the run in seconds.
    pub seconds: f64,
    /// Blocks promoted HDD → SSD by migration rounds.
    pub promoted: u64,
    /// Blocks demoted SSD → HDD by migration rounds.
    pub demoted: u64,
    /// Migration rounds that ran.
    pub rounds: u64,
}

/// Results of the tier-migration experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The phase-shift workload without migration (the PR 7 baseline).
    pub off: MigrationRow,
    /// The same workload with the migration engine enabled.
    pub on: MigrationRow,
}

impl MigrationReport {
    /// Hit-ratio gain of migration-on over migration-off (> 1 means
    /// migration wins — the gated direction).
    pub fn hit_gain(&self) -> f64 {
        if self.off.hit_ratio == 0.0 {
            return f64::INFINITY;
        }
        self.on.hit_ratio / self.off.hit_ratio
    }

    /// HDD busy-time saving: off over on (> 1 means migration moved
    /// traffic off the disk — the gated direction).
    pub fn hdd_saving(&self) -> f64 {
        if self.on.hdd_busy == 0.0 {
            return f64::INFINITY;
        }
        self.off.hdd_busy / self.on.hdd_busy
    }
}

fn read(lbn: u64, prio: u8) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::read(BlockRange::new(lbn, 1), false),
        RequestClass::Random,
        QosPolicy::priority(prio),
    )
}

fn run_side(migration: MigrationConfig, label: &str) -> MigrationRow {
    let storage: Arc<dyn StorageSystem> = StorageConfig::new(StorageConfigKind::HStorageDb, BLOCKS)
        .with_migration(migration)
        .build_shared();
    let driver = MigrationDriver::new(Arc::clone(&storage));
    let mut since_pulse = 0usize;
    let mut submit = |req: ClassifiedRequest| {
        storage.submit(req);
        since_pulse += 1;
        if since_pulse == PULSE_EVERY {
            since_pulse = 0;
            driver.pulse();
        }
    };
    // Phase A: a priority-2 set fills and warms the cache.
    for _ in 0..PHASE_A_PASSES {
        for lbn in 0..BLOCKS {
            submit(read(lbn, 2));
        }
    }
    // Phase B: the working set shifts to a disjoint priority-3 set that
    // selective eviction refuses to admit over the phase-A residents.
    for _ in 0..PHASE_B_PASSES {
        for lbn in PHASE_B_OFFSET..PHASE_B_OFFSET + BLOCKS {
            submit(read(lbn, 3));
        }
    }
    let stats = storage.stats();
    let totals = stats.totals();
    let migration = storage.migration_stats();
    MigrationRow {
        config: label.to_string(),
        hit_ratio: if totals.accessed_blocks == 0 {
            0.0
        } else {
            totals.cache_hits as f64 / totals.accessed_blocks as f64
        },
        ssd_busy: stats
            .ssd
            .as_ref()
            .map_or(0.0, |d| d.busy_time.as_secs_f64()),
        hdd_busy: stats
            .hdd
            .as_ref()
            .map_or(0.0, |d| d.busy_time.as_secs_f64()),
        seconds: storage.now().as_secs_f64(),
        promoted: migration.promoted,
        demoted: migration.demoted,
        rounds: migration.rounds,
    }
}

/// The migration knobs the enabled side runs with. The half-life is
/// doubled relative to the default (8 rounds = two passes at this pulse
/// cadence) so the shifted working set's heat survives across passes and
/// accumulates past the old residents' decaying heat, instead of being
/// forgotten every pass.
pub fn experiment_config() -> MigrationConfig {
    MigrationConfig::on()
        .with_half_life_rounds(8)
        .with_idle_threshold(Duration::from_micros(500))
}

/// Runs the phase-shift workload twice — migration off, then on — and
/// returns both rows. Fully deterministic: fixed workload, simulated
/// devices, fixed pulse cadence.
pub fn run() -> MigrationReport {
    MigrationReport {
        off: run_side(MigrationConfig::off(), "migration off"),
        on: run_side(experiment_config(), "migration on"),
    }
}

impl fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tier migration — phase-shifting workload ({PHASE_A_PASSES} passes prio-2, \
             {PHASE_B_PASSES} passes prio-3, {BLOCKS}-block cache)",
        )?;
        let rows: Vec<Vec<String>> = [&self.off, &self.on]
            .iter()
            .map(|r| {
                vec![
                    r.config.clone(),
                    format!("{:.1}%", r.hit_ratio * 100.0),
                    format!("{:.3}", r.ssd_busy),
                    format!("{:.3}", r.hdd_busy),
                    format!("{:.3}", r.seconds),
                    r.promoted.to_string(),
                    r.demoted.to_string(),
                    r.rounds.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "hit ratio",
                    "ssd busy s",
                    "hdd busy s",
                    "total s",
                    "promoted",
                    "demoted",
                    "rounds"
                ],
                &rows
            )
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "hit-ratio gain (on/off): {:.2}x   hdd busy saving (off/on): {:.2}x",
            self.hit_gain(),
            self.hdd_saving()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_off_runs_no_rounds_and_moves_nothing() {
        let report = run();
        assert_eq!(report.off.rounds, 0);
        assert_eq!(report.off.promoted, 0);
        assert_eq!(report.off.demoted, 0);
    }

    #[test]
    fn migration_wins_the_phase_shift_on_both_gated_directions() {
        let report = run();
        assert!(report.on.rounds > 0, "pulses must have run rounds");
        assert!(report.on.promoted > 0, "the phase-B set must be promoted");
        assert!(report.on.demoted > 0, "the phase-A set must make room");
        assert!(
            report.hit_gain() > 1.0,
            "migration-on must beat migration-off on hit ratio ({:.3} vs {:.3})",
            report.on.hit_ratio,
            report.off.hit_ratio
        );
        assert!(
            report.hdd_saving() > 1.0,
            "migration must move phase-B traffic off the HDD ({:.3}s vs {:.3}s)",
            report.off.hdd_busy,
            report.on.hdd_busy
        );
    }

    #[test]
    fn the_comparison_is_deterministic() {
        assert_eq!(run(), run());
    }
}
