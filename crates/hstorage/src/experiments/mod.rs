//! Experiment drivers: one module per table/figure of the paper's
//! evaluation (Section 6).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig4`] | Figure 4a/4b — request-type diversity per TPC-H query |
//! | [`fig5`] | Figure 5 and Table 4 — sequential-dominated queries |
//! | [`fig6`] | Figure 6, Tables 5 and 6 — random-dominated queries |
//! | [`fig9`] | Figure 9 and Table 7 — temporary-data-dominated query |
//! | [`fig11`] | Figure 11 and Table 8 — the power-test query sequence |
//! | [`table9`] | Table 9 and Figure 12 — the concurrent throughput test |
//! | [`ablation`] | Design-choice sweeps not in the paper (write-buffer size, priority-range width, TRIM on/off) |
//! | [`policy_comparison`] | One cache engine under every selectable replacement policy (semantic priority vs LRU / CFLRU / 2Q / ARC / per-stream) on a TPC-H mix |
//! | [`policy_ablation`] | Knob sweeps for the tunable policies (CFLRU clean-first window, 2Q `Kin`/`Kout`) with self-tuning ARC as the reference |
//! | [`tier_migration`] | Online tier migration under a phase-shifting workload (hit ratio and per-device busy time, with vs without migration) |
//! | [`crash_recovery`] | Fault-injected recovery from the write-ahead journal (convergence across crash points, recovery time) |
//!
//! Every driver takes the TPC-H scale to run at and returns a plain data
//! structure with a `Display` implementation that prints the same rows the
//! paper reports. (The [`tier_migration`] and [`crash_recovery`] drivers
//! are the exception: their workloads are fixed synthetic scenarios, so
//! they take no scale.)

pub mod ablation;
pub mod crash_recovery;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig9;
pub mod policy_ablation;
pub mod policy_comparison;
pub mod table9;
pub mod tier_migration;

use crate::config::SystemConfig;
use crate::system::TpchSystem;
use hstorage_cache::{CacheStats, StorageConfigKind};
use hstorage_engine::QueryStats;
use hstorage_tpch::{QueryId, TpchScale};

/// Runs `query` standalone (cold cache, cold buffer pool) on the given
/// storage configuration and returns its execution statistics together
/// with the storage statistics accumulated during the run.
pub fn run_single_query(
    scale: TpchScale,
    kind: StorageConfigKind,
    query: QueryId,
) -> (QueryStats, CacheStats) {
    let mut system = TpchSystem::new(SystemConfig::single_query(scale, kind));
    let stats = system.run(query);
    (stats, system.storage_stats())
}

/// One (query, storage configuration, execution time) measurement, the
/// building block of every execution-time figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeRow {
    /// Query name.
    pub query: String,
    /// Storage configuration label.
    pub config: String,
    /// Simulated execution time in seconds.
    pub seconds: f64,
}

impl TimeRow {
    pub(crate) fn new(query: &QueryId, kind: StorageConfigKind, stats: &QueryStats) -> Self {
        TimeRow {
            query: query.name(),
            config: kind.label().to_string(),
            seconds: stats.elapsed.as_secs_f64(),
        }
    }
}

/// Looks up the execution time of `(query, config)` in a set of rows.
pub fn time_of(rows: &[TimeRow], query: &str, config: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.query == query && r.config == config)
        .map(|r| r.seconds)
}

#[cfg(test)]
pub(crate) fn test_scale() -> TpchScale {
    TpchScale::new(0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_query_returns_consistent_stats() {
        let (qstats, cstats) =
            run_single_query(test_scale(), StorageConfigKind::HStorageDb, QueryId::Q(1));
        assert!(qstats.total_blocks() > 0);
        assert_eq!(cstats.totals().accessed_blocks, qstats.total_blocks());
    }

    #[test]
    fn time_lookup() {
        let rows = vec![
            TimeRow {
                query: "Q1".into(),
                config: "LRU".into(),
                seconds: 1.5,
            },
            TimeRow {
                query: "Q1".into(),
                config: "SSD-only".into(),
                seconds: 0.5,
            },
        ];
        assert_eq!(time_of(&rows, "Q1", "LRU"), Some(1.5));
        assert_eq!(time_of(&rows, "Q2", "LRU"), None);
    }
}
