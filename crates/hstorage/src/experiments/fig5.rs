//! Figure 5 and Table 4: queries dominated by sequential requests.
//!
//! The paper runs Q1, Q5, Q11 and Q19 under the four storage
//! configurations and observes that (1) the SSD brings little advantage,
//! (2) an LRU-managed cache *slows these queries down* (it pays allocation
//! overhead for data with negligible reuse — Table 4 shows hit ratios of
//! at most 0.3%), and (3) hStorage-DB avoids that overhead by assigning
//! sequential requests the "non-caching and non-eviction" priority.

use crate::experiments::{run_single_query, TimeRow};
use crate::report::format_table;
use hstorage_cache::StorageConfigKind;
use hstorage_storage::RequestClass;
use hstorage_tpch::{QueryId, TpchScale};
use std::fmt;

/// The queries of Figure 5.
pub const SEQUENTIAL_QUERIES: [u8; 4] = [1, 5, 11, 19];

/// One row of Table 4: LRU cache statistics for a sequential query.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Query name.
    pub query: String,
    /// Blocks accessed by sequential requests.
    pub accessed_blocks: u64,
    /// Cache hits among them.
    pub cache_hits: u64,
    /// Hit ratio.
    pub hit_ratio: f64,
}

/// Figure 5 + Table 4 results.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialQueriesReport {
    /// Execution times for every (query, configuration) pair.
    pub times: Vec<TimeRow>,
    /// Table 4: cache statistics for sequential requests with LRU.
    pub table4: Vec<Table4Row>,
}

/// Runs the Figure 5 / Table 4 experiment.
pub fn run(scale: TpchScale) -> SequentialQueriesReport {
    let mut times = Vec::new();
    let mut table4 = Vec::new();
    for q in SEQUENTIAL_QUERIES {
        let query = QueryId::Q(q);
        for kind in StorageConfigKind::all() {
            let (stats, storage) = run_single_query(scale, kind, query);
            times.push(TimeRow::new(&query, kind, &stats));
            if kind == StorageConfigKind::Lru {
                let seq = storage.class(RequestClass::Sequential);
                table4.push(Table4Row {
                    query: query.name(),
                    accessed_blocks: seq.accessed_blocks,
                    cache_hits: seq.cache_hits,
                    hit_ratio: seq.hit_ratio(),
                });
            }
        }
    }
    SequentialQueriesReport { times, table4 }
}

impl SequentialQueriesReport {
    /// LRU slowdown relative to HDD-only for a query (paper: 1.16x for Q1,
    /// 1.25x for Q19).
    pub fn lru_slowdown(&self, query: &str) -> Option<f64> {
        let lru = crate::experiments::time_of(&self.times, query, "LRU")?;
        let hdd = crate::experiments::time_of(&self.times, query, "HDD-only")?;
        Some(lru / hdd)
    }

    /// hStorage-DB overhead relative to HDD-only (paper: ≈ 1.0).
    pub fn hstorage_overhead(&self, query: &str) -> Option<f64> {
        let h = crate::experiments::time_of(&self.times, query, "hStorage-DB")?;
        let hdd = crate::experiments::time_of(&self.times, query, "HDD-only")?;
        Some(h / hdd)
    }

    /// SSD-only speedup over HDD-only (paper: modest for these queries).
    pub fn ssd_speedup(&self, query: &str) -> Option<f64> {
        let ssd = crate::experiments::time_of(&self.times, query, "SSD-only")?;
        let hdd = crate::experiments::time_of(&self.times, query, "HDD-only")?;
        Some(hdd / ssd)
    }
}

impl fmt::Display for SequentialQueriesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5 — execution times of sequential-dominated queries"
        )?;
        let rows: Vec<Vec<String>> = self
            .times
            .iter()
            .map(|r| {
                vec![
                    r.query.clone(),
                    r.config.clone(),
                    format!("{:.3}", r.seconds),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(&["query", "config", "seconds"], &rows)
        )?;
        writeln!(
            f,
            "\nTable 4 — cache statistics for sequential requests with LRU"
        )?;
        let rows: Vec<Vec<String>> = self
            .table4
            .iter()
            .map(|r| {
                vec![
                    r.query.clone(),
                    r.accessed_blocks.to_string(),
                    r.cache_hits.to_string(),
                    format!("{:.2}%", r.hit_ratio * 100.0),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &["query", "# of accessed blocks", "# of hits", "hit ratio"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn shapes_match_the_paper() {
        let report = run(test_scale());
        assert_eq!(report.times.len(), 16);
        assert_eq!(report.table4.len(), 4);
        for q in ["Q1", "Q19"] {
            // LRU pays a visible overhead on sequential queries...
            assert!(report.lru_slowdown(q).unwrap() > 1.05, "{q} LRU slowdown");
            // ...which hStorage-DB avoids almost entirely.
            assert!(report.hstorage_overhead(q).unwrap() < 1.05, "{q} overhead");
            // The SSD advantage is modest for sequential work.
            assert!(report.ssd_speedup(q).unwrap() < 4.0, "{q} SSD speedup");
        }
        // Table 4: hit ratios are negligible.
        for row in &report.table4 {
            assert!(row.hit_ratio < 0.05, "{}: {}", row.query, row.hit_ratio);
        }
    }

    #[test]
    fn display_contains_both_tables() {
        let report = run(test_scale());
        let text = report.to_string();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("Table 4"));
        assert!(text.contains("hit ratio"));
    }
}
