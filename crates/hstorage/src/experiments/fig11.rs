//! Figure 11 and Table 8: a power-test sequence of queries.
//!
//! The paper runs the TPC-H power-test ordering (RF1, the 22 queries in
//! stream-00 order, RF2) as one long stream, so cache contents carry over
//! from query to query: temporary data must be evicted promptly and data
//! left behind by one query must yield to the next query's working set.
//! The LRU configuration is omitted, as in the paper.

use crate::report::format_table;
use crate::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::power::{is_long_query, power_test_sequence};
use hstorage_tpch::{QueryId, TpchScale};
use std::collections::BTreeMap;
use std::fmt;

/// Per-query execution times of one storage configuration over the
/// power-test sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTestRun {
    /// Configuration label.
    pub config: String,
    /// Execution time per query, in sequence order.
    pub per_query_seconds: Vec<(String, f64)>,
    /// Total time of the sequence (Table 8).
    pub total_seconds: f64,
}

/// Figure 11 + Table 8 results.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTestReport {
    /// One run per configuration (HDD-only, hStorage-DB, SSD-only).
    pub runs: Vec<PowerTestRun>,
}

/// The configurations the paper plots in Figure 11.
pub const POWER_TEST_CONFIGS: [StorageConfigKind; 3] = [
    StorageConfigKind::HddOnly,
    StorageConfigKind::HStorageDb,
    StorageConfigKind::SsdOnly,
];

/// Runs the power-test sequence under each configuration.
pub fn run(scale: TpchScale) -> PowerTestReport {
    let sequence = power_test_sequence();
    let mut runs = Vec::new();
    for kind in POWER_TEST_CONFIGS {
        let mut system = TpchSystem::new(SystemConfig::single_query(scale, kind));
        let stats = system.run_sequence(&sequence);
        let per_query_seconds: Vec<(String, f64)> = stats
            .iter()
            .map(|s| (s.name.clone(), s.elapsed.as_secs_f64()))
            .collect();
        let total_seconds = per_query_seconds.iter().map(|(_, s)| s).sum();
        runs.push(PowerTestRun {
            config: kind.label().to_string(),
            per_query_seconds,
            total_seconds,
        });
    }
    PowerTestReport { runs }
}

impl PowerTestReport {
    /// The run for one configuration.
    pub fn run_for(&self, config: &str) -> Option<&PowerTestRun> {
        self.runs.iter().find(|r| r.config == config)
    }

    /// Table 8: total execution time of the sequence per configuration.
    pub fn table8(&self) -> Vec<(String, f64)> {
        self.runs
            .iter()
            .map(|r| (r.config.clone(), r.total_seconds))
            .collect()
    }

    /// hStorage-DB speedup over HDD-only on the whole sequence
    /// (paper: 86,009 s → 39,132 s ≈ 2.2x).
    pub fn hstorage_speedup(&self) -> Option<f64> {
        let hdd = self.run_for("HDD-only")?.total_seconds;
        let h = self.run_for("hStorage-DB")?.total_seconds;
        Some(hdd / h)
    }

    /// Splits the per-query results into (short, long) maps for the two
    /// panels of Figure 11.
    pub fn split_short_long(&self, config: &str) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
        let mut short = BTreeMap::new();
        let mut long = BTreeMap::new();
        if let Some(run) = self.run_for(config) {
            for (name, secs) in &run.per_query_seconds {
                let is_long = match name.strip_prefix('Q').and_then(|n| n.parse::<u8>().ok()) {
                    Some(n) => is_long_query(QueryId::Q(n)),
                    None => false,
                };
                if is_long {
                    long.insert(name.clone(), *secs);
                } else {
                    short.insert(name.clone(), *secs);
                }
            }
        }
        (short, long)
    }
}

impl fmt::Display for PowerTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11 — execution times of queries in one stream")?;
        // Column per configuration, row per query (sequence order).
        let mut headers = vec!["query"];
        for run in &self.runs {
            headers.push(run.config.as_str());
        }
        let n_queries = self
            .runs
            .first()
            .map(|r| r.per_query_seconds.len())
            .unwrap_or(0);
        let mut rows = Vec::new();
        for i in 0..n_queries {
            let mut row = vec![self.runs[0].per_query_seconds[i].0.clone()];
            for run in &self.runs {
                row.push(format!("{:.3}", run.per_query_seconds[i].1));
            }
            rows.push(row);
        }
        write!(f, "{}", format_table(&headers, &rows))?;
        writeln!(
            f,
            "\nTable 8 — total execution time of the sequence (seconds)"
        )?;
        let rows: Vec<Vec<String>> = self
            .table8()
            .into_iter()
            .map(|(c, s)| vec![c, format!("{s:.3}")])
            .collect();
        write!(f, "{}", format_table(&["config", "total seconds"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn sequence_shapes_match_the_paper() {
        let report = run(test_scale());
        assert_eq!(report.runs.len(), 3);
        for run in &report.runs {
            assert_eq!(run.per_query_seconds.len(), 24); // RF1 + 22 + RF2
            assert!(run.total_seconds > 0.0);
        }
        // Ordering of Table 8: SSD-only < hStorage-DB < HDD-only.
        let hdd = report.run_for("HDD-only").unwrap().total_seconds;
        let h = report.run_for("hStorage-DB").unwrap().total_seconds;
        let ssd = report.run_for("SSD-only").unwrap().total_seconds;
        assert!(ssd < h, "SSD {ssd} !< hStorage {h}");
        assert!(h < hdd, "hStorage {h} !< HDD {hdd}");
        assert!(report.hstorage_speedup().unwrap() > 1.1);
    }

    #[test]
    fn short_long_split_covers_all_queries() {
        let report = run(test_scale());
        let (short, long) = report.split_short_long("hStorage-DB");
        assert_eq!(short.len() + long.len(), 24);
        assert!(long.contains_key("Q18"));
        assert!(long.contains_key("Q9"));
    }

    #[test]
    fn display_contains_table8() {
        let report = run(test_scale());
        let text = report.to_string();
        assert!(text.contains("Figure 11"));
        assert!(text.contains("Table 8"));
    }
}
