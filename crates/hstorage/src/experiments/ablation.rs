//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These are not figures from the paper; they probe how sensitive
//! hStorage-DB is to its tunables:
//!
//! * the write-buffer share `b` (Rule 4 uses 10%),
//! * the width of the random-request priority range `[n1, n2]` (Rule 2),
//! * TRIM vs no TRIM at the end of a temporary file's lifetime (Rule 3).

use crate::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_storage::PolicyConfig;
use hstorage_tpch::{QueryId, TpchScale};

/// Result of one ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Execution time in seconds.
    pub seconds: f64,
}

/// Sweeps the write-buffer fraction `b` over a refresh-heavy workload
/// (RF1 followed by RF2).
pub fn write_buffer_sweep(scale: TpchScale, fractions: &[f64]) -> Vec<AblationPoint> {
    fractions
        .iter()
        .map(|&b| {
            let mut policy = PolicyConfig::paper_default();
            policy.write_buffer_fraction = b;
            let config = SystemConfig::single_query(scale, StorageConfigKind::HStorageDb)
                .with_policy(policy);
            let mut system = TpchSystem::new(config);
            let stats = system.run_sequence(&[QueryId::Rf1, QueryId::Rf2]);
            let seconds = stats.iter().map(|s| s.elapsed.as_secs_f64()).sum();
            AblationPoint {
                setting: format!("b = {:.0}%", b * 100.0),
                seconds,
            }
        })
        .collect()
}

/// Sweeps the number of priorities `N` (and with it the width of the
/// random priority range) over the random-dominated query Q9.
pub fn priority_range_sweep(scale: TpchScale, priorities: &[u8]) -> Vec<AblationPoint> {
    priorities
        .iter()
        .map(|&n| {
            let policy = PolicyConfig::with_priorities(n, 0.10);
            let config = SystemConfig::single_query(scale, StorageConfigKind::HStorageDb)
                .with_policy(policy);
            let mut system = TpchSystem::new(config);
            let stats = system.run(QueryId::Q(9));
            AblationPoint {
                setting: format!("N = {n}"),
                seconds: stats.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

/// Compares a Q18-then-Q9 sequence with and without TRIM-driven eviction
/// of dead temporary data. Without TRIM, Q18's stale temporary blocks sit
/// at the highest priority and crowd out Q9's working set.
pub fn trim_ablation(scale: TpchScale) -> (AblationPoint, AblationPoint) {
    // With TRIM (the real system).
    let mut with_trim = TpchSystem::new(SystemConfig::single_query(
        scale,
        StorageConfigKind::HStorageDb,
    ));
    let a = with_trim.run_sequence(&[QueryId::Q(18), QueryId::Q(9)]);
    let with_trim_secs: f64 = a.iter().map(|s| s.elapsed.as_secs_f64()).sum();

    // Without TRIM: emulate a legacy file system by shrinking the cache by
    // the amount of stale temporary data Q18 leaves behind. (The storage
    // manager always issues the TRIM; the equivalent of losing it is that
    // the space stays occupied.)
    let scale_blocks = scale.total_blocks();
    let stale = scale_blocks / 10;
    let mut without_trim = TpchSystem::new(
        SystemConfig::single_query(scale, StorageConfigKind::HStorageDb).with_cache_blocks(
            scale
                .paper_single_query_cache_blocks()
                .saturating_sub(stale)
                .max(1),
        ),
    );
    let b = without_trim.run_sequence(&[QueryId::Q(18), QueryId::Q(9)]);
    let without_trim_secs: f64 = b.iter().map(|s| s.elapsed.as_secs_f64()).sum();

    (
        AblationPoint {
            setting: "TRIM enabled".to_string(),
            seconds: with_trim_secs,
        },
        AblationPoint {
            setting: "TRIM disabled (stale temp pins cache)".to_string(),
            seconds: without_trim_secs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn write_buffer_sweep_produces_one_point_per_fraction() {
        let points = write_buffer_sweep(test_scale(), &[0.05, 0.10, 0.20]);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.seconds > 0.0));
        assert!(points[0].setting.contains('5'));
    }

    #[test]
    fn priority_range_sweep_runs_for_every_n() {
        let points = priority_range_sweep(test_scale(), &[4, 8, 12]);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.seconds > 0.0));
    }

    #[test]
    fn trim_helps_or_is_neutral() {
        let (with_trim, without_trim) = trim_ablation(test_scale());
        assert!(with_trim.seconds <= without_trim.seconds * 1.05);
    }
}
