//! Figure 9 and Table 7: the temporary-data-dominated query Q18.
//!
//! Q18 generates a large amount of temporary data through its hash
//! operators (Figure 10). hStorage-DB caches temporary data at the highest
//! priority for exactly its lifetime and evicts it via TRIM at deletion,
//! which yields a 100% hit ratio for temporary reads (Table 7); LRU only
//! manages 1.8% in the paper because the temporary blocks are evicted by
//! the competing sequential traffic before being read back.

use crate::experiments::{run_single_query, TimeRow};
use crate::report::format_table;
use hstorage_cache::StorageConfigKind;
use hstorage_storage::RequestClass;
use hstorage_tpch::{QueryId, TpchScale};
use std::fmt;

/// One row of Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// "hStorage-DB" or "LRU".
    pub config: String,
    /// "sequential" or "temporary read".
    pub group: String,
    /// Blocks accessed.
    pub accessed_blocks: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Hit ratio.
    pub hit_ratio: f64,
}

/// Figure 9 + Table 7 results.
#[derive(Debug, Clone, PartialEq)]
pub struct TempDataReport {
    /// Execution times of Q18 under the four configurations.
    pub times: Vec<TimeRow>,
    /// Table 7 rows.
    pub table7: Vec<Table7Row>,
}

/// Runs the Figure 9 / Table 7 experiment.
pub fn run(scale: TpchScale) -> TempDataReport {
    let query = QueryId::Q(18);
    let mut times = Vec::new();
    let mut table7 = Vec::new();

    for kind in StorageConfigKind::all() {
        let (stats, storage) = run_single_query(scale, kind, query);
        times.push(TimeRow::new(&query, kind, &stats));
        if matches!(kind, StorageConfigKind::HStorageDb | StorageConfigKind::Lru) {
            let seq = storage.class(RequestClass::Sequential);
            let temp = storage.class(RequestClass::TemporaryData);
            // Temporary-data writes are always misses (the data is newly
            // generated); the interesting number is the read hit ratio.
            // Half of the temporary traffic of Q18 is the write stream.
            let temp_reads = temp.accessed_blocks / 2;
            let temp_hits = temp.cache_hits.min(temp_reads);
            for (group, accessed, hits) in [
                ("sequential", seq.accessed_blocks, seq.cache_hits),
                ("temporary read", temp_reads, temp_hits),
            ] {
                table7.push(Table7Row {
                    config: kind.label().to_string(),
                    group: group.to_string(),
                    accessed_blocks: accessed,
                    cache_hits: hits,
                    hit_ratio: if accessed == 0 {
                        0.0
                    } else {
                        hits as f64 / accessed as f64
                    },
                });
            }
        }
    }
    TempDataReport { times, table7 }
}

impl TempDataReport {
    /// SSD-only speedup over HDD-only (paper: 1.45x).
    pub fn ssd_speedup(&self) -> Option<f64> {
        let ssd = crate::experiments::time_of(&self.times, "Q18", "SSD-only")?;
        let hdd = crate::experiments::time_of(&self.times, "Q18", "HDD-only")?;
        Some(hdd / ssd)
    }

    /// hStorage-DB speedup over LRU.
    pub fn hstorage_over_lru(&self) -> Option<f64> {
        let h = crate::experiments::time_of(&self.times, "Q18", "hStorage-DB")?;
        let lru = crate::experiments::time_of(&self.times, "Q18", "LRU")?;
        Some(lru / h)
    }

    /// Temporary-read hit ratio of one configuration.
    pub fn temp_read_hit_ratio(&self, config: &str) -> Option<f64> {
        self.table7
            .iter()
            .find(|r| r.config == config && r.group == "temporary read")
            .map(|r| r.hit_ratio)
    }
}

impl fmt::Display for TempDataReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9 — execution time of Query 18")?;
        let rows: Vec<Vec<String>> = self
            .times
            .iter()
            .map(|r| vec![r.config.clone(), format!("{:.3}", r.seconds)])
            .collect();
        write!(f, "{}", format_table(&["config", "seconds"], &rows))?;
        writeln!(f, "\nTable 7 — cache hits of different blocks for Query 18")?;
        let rows: Vec<Vec<String>> = self
            .table7
            .iter()
            .map(|r| {
                vec![
                    r.config.clone(),
                    r.group.clone(),
                    r.accessed_blocks.to_string(),
                    r.cache_hits.to_string(),
                    format!("{:.1}%", r.hit_ratio * 100.0),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "group",
                    "# of accessed blks",
                    "cache hits",
                    "hit ratio"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn shapes_match_the_paper() {
        let report = run(test_scale());
        assert_eq!(report.times.len(), 4);
        // SSD helps Q18 but modestly (the paper reports 1.45x).
        assert!(report.ssd_speedup().unwrap() > 1.1);
        // hStorage-DB beats LRU because it keeps temporary data cached for
        // exactly its lifetime.
        assert!(report.hstorage_over_lru().unwrap() > 1.0);
        // Temporary reads hit 100% under hStorage-DB, far less under LRU.
        let h = report.temp_read_hit_ratio("hStorage-DB").unwrap();
        let lru = report.temp_read_hit_ratio("LRU").unwrap();
        assert!(h > 0.99, "hStorage-DB temp hit ratio {h}");
        assert!(lru < h);
    }

    #[test]
    fn display_contains_table7() {
        let report = run(test_scale());
        let text = report.to_string();
        assert!(text.contains("Figure 9"));
        assert!(text.contains("Table 7"));
        assert!(text.contains("temporary read"));
    }
}
