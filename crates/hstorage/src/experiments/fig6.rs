//! Figure 6 and Tables 5/6: queries dominated by random requests.
//!
//! Q9 and Q21 issue large numbers of random requests through index scans.
//! The paper observes (1) a large SSD-only speedup (7.2x for Q9, 3.9x for
//! Q21), (2) both LRU and hStorage-DB come close to the ideal case thanks
//! to high cache hit ratios on the randomly accessed data (Table 5), and
//! (3) for Q21 hStorage-DB trails LRU slightly because LRU also caches the
//! sequentially scanned `lineitem` blocks that the index scan later hits
//! (Table 6).

use crate::experiments::{run_single_query, TimeRow};
use crate::report::format_table;
use hstorage_cache::StorageConfigKind;
use hstorage_storage::RequestClass;
use hstorage_tpch::{QueryId, TpchScale};
use std::fmt;

/// One per-priority cache-statistics row (Tables 5 and 6).
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityStatsRow {
    /// Which configuration the row belongs to ("hStorage-DB" or "LRU").
    pub config: String,
    /// Label: "priority 2", "priority 3" or "sequential".
    pub group: String,
    /// Blocks accessed.
    pub accessed_blocks: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Hit ratio.
    pub hit_ratio: f64,
}

/// Figure 6 + Tables 5 and 6.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomQueriesReport {
    /// Execution times for Q9 and Q21 under the four configurations.
    pub times: Vec<TimeRow>,
    /// Table 5: per-priority cache statistics for Q9 under hStorage-DB.
    pub table5: Vec<PriorityStatsRow>,
    /// Table 6: per-priority + sequential statistics for Q21 under both
    /// hStorage-DB and LRU.
    pub table6: Vec<PriorityStatsRow>,
}

fn priority_rows(
    storage: &hstorage_cache::CacheStats,
    config: &str,
    priorities: &[u8],
    include_sequential: bool,
) -> Vec<PriorityStatsRow> {
    let mut rows = Vec::new();
    for prio in priorities {
        let c = storage.priority(*prio);
        if c.accessed_blocks == 0 {
            continue;
        }
        rows.push(PriorityStatsRow {
            config: config.to_string(),
            group: format!("priority {prio}"),
            accessed_blocks: c.accessed_blocks,
            cache_hits: c.cache_hits,
            hit_ratio: c.hit_ratio(),
        });
    }
    if include_sequential {
        let c = storage.class(RequestClass::Sequential);
        rows.push(PriorityStatsRow {
            config: config.to_string(),
            group: "sequential".to_string(),
            accessed_blocks: c.accessed_blocks,
            cache_hits: c.cache_hits,
            hit_ratio: c.hit_ratio(),
        });
    }
    rows
}

/// Runs the Figure 6 / Table 5 / Table 6 experiment.
pub fn run(scale: TpchScale) -> RandomQueriesReport {
    let mut times = Vec::new();
    let mut table5 = Vec::new();
    let mut table6 = Vec::new();

    for q in [9u8, 21] {
        let query = QueryId::Q(q);
        for kind in StorageConfigKind::all() {
            let (stats, storage) = run_single_query(scale, kind, query);
            times.push(TimeRow::new(&query, kind, &stats));
            match (q, kind) {
                (9, StorageConfigKind::HStorageDb) => {
                    table5 = priority_rows(&storage, "hStorage-DB", &[2, 3], false);
                }
                (21, StorageConfigKind::HStorageDb) => {
                    table6.extend(priority_rows(&storage, "hStorage-DB", &[2, 3], true));
                }
                (21, StorageConfigKind::Lru) => {
                    table6.extend(priority_rows(&storage, "LRU", &[2, 3], true));
                }
                _ => {}
            }
        }
    }
    RandomQueriesReport {
        times,
        table5,
        table6,
    }
}

impl RandomQueriesReport {
    /// SSD-only speedup over HDD-only (paper: 7.2x for Q9, 3.9x for Q21).
    pub fn ssd_speedup(&self, query: &str) -> Option<f64> {
        let ssd = crate::experiments::time_of(&self.times, query, "SSD-only")?;
        let hdd = crate::experiments::time_of(&self.times, query, "HDD-only")?;
        Some(hdd / ssd)
    }

    /// hStorage-DB speedup over HDD-only.
    pub fn hstorage_speedup(&self, query: &str) -> Option<f64> {
        let h = crate::experiments::time_of(&self.times, query, "hStorage-DB")?;
        let hdd = crate::experiments::time_of(&self.times, query, "HDD-only")?;
        Some(hdd / h)
    }

    /// Hit ratio of one Table 5/6 group.
    pub fn hit_ratio(rows: &[PriorityStatsRow], config: &str, group: &str) -> Option<f64> {
        rows.iter()
            .find(|r| r.config == config && r.group == group)
            .map(|r| r.hit_ratio)
    }
}

fn stats_table(rows: &[PriorityStatsRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.group.clone(),
                r.accessed_blocks.to_string(),
                r.cache_hits.to_string(),
                format!("{:.1}%", r.hit_ratio * 100.0),
            ]
        })
        .collect();
    format_table(
        &[
            "config",
            "group",
            "# of accessed blks",
            "cache hits",
            "hit ratio",
        ],
        &body,
    )
}

impl fmt::Display for RandomQueriesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6 — execution times of random-dominated queries")?;
        let rows: Vec<Vec<String>> = self
            .times
            .iter()
            .map(|r| {
                vec![
                    r.query.clone(),
                    r.config.clone(),
                    format!("{:.3}", r.seconds),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(&["query", "config", "seconds"], &rows)
        )?;
        writeln!(
            f,
            "\nTable 5 — cache statistics for random requests of Q9 (hStorage-DB)"
        )?;
        write!(f, "{}", stats_table(&self.table5))?;
        writeln!(f, "\nTable 6 — cache hits/misses for Q21")?;
        write!(f, "{}", stats_table(&self.table6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn shapes_match_the_paper() {
        let report = run(test_scale());
        assert_eq!(report.times.len(), 8);

        // The SSD advantage is large for random-dominated queries.
        assert!(report.ssd_speedup("Q9").unwrap() > 2.0);
        assert!(report.ssd_speedup("Q21").unwrap() > 1.5);
        // hStorage-DB recovers a substantial part of that advantage.
        assert!(report.hstorage_speedup("Q9").unwrap() > 1.5);
        assert!(report.hstorage_speedup("Q21").unwrap() > 1.2);

        // Table 5: both priorities see high hit ratios for Q9.
        assert!(!report.table5.is_empty());
        for row in &report.table5 {
            assert!(row.hit_ratio > 0.5, "{}: {}", row.group, row.hit_ratio);
        }
    }

    #[test]
    fn q21_lru_benefits_from_cached_sequential_blocks() {
        let report = run(test_scale());
        let lru_seq = RandomQueriesReport::hit_ratio(&report.table6, "LRU", "sequential").unwrap();
        let h_seq =
            RandomQueriesReport::hit_ratio(&report.table6, "hStorage-DB", "sequential").unwrap();
        // LRU caches the sequential lineitem blocks, hStorage-DB does not.
        assert!(lru_seq > h_seq);
    }

    #[test]
    fn display_contains_all_three_tables() {
        let report = run(test_scale());
        let text = report.to_string();
        assert!(text.contains("Figure 6"));
        assert!(text.contains("Table 5"));
        assert!(text.contains("Table 6"));
    }
}
