//! Figure 4: diversity of I/O request types across the 22 TPC-H queries.
//!
//! The paper runs each query once and counts, per query, the number of I/O
//! requests of each type (Figure 4a) and the number of disk blocks served
//! for each type (Figure 4b). The storage configuration is irrelevant —
//! classification happens in the DBMS — so we run against the hStorage-DB
//! configuration.

use crate::report::format_table;
use crate::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_storage::RequestClass;
use hstorage_tpch::{QueryId, TpchScale};
use std::collections::BTreeMap;
use std::fmt;

/// Diversity of one query's request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Query name.
    pub query: String,
    /// Fraction of I/O *requests* per request class (Figure 4a).
    pub request_fraction: BTreeMap<String, f64>,
    /// Fraction of accessed *blocks* per request class (Figure 4b).
    pub block_fraction: BTreeMap<String, f64>,
}

/// The full Figure 4 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Report {
    /// One row per TPC-H query.
    pub rows: Vec<Fig4Row>,
}

/// Runs every TPC-H query once and collects its request-type mix.
pub fn run(scale: TpchScale) -> Fig4Report {
    let mut rows = Vec::new();
    for query in QueryId::all_queries() {
        let mut system = TpchSystem::new(SystemConfig::single_query(
            scale,
            StorageConfigKind::HStorageDb,
        ));
        let stats = system.run(query);
        let mut request_fraction = BTreeMap::new();
        let mut block_fraction = BTreeMap::new();
        for class in RequestClass::all() {
            request_fraction.insert(class.label().to_string(), stats.request_fraction(class));
            block_fraction.insert(class.label().to_string(), stats.block_fraction(class));
        }
        rows.push(Fig4Row {
            query: query.name(),
            request_fraction,
            block_fraction,
        });
    }
    Fig4Report { rows }
}

impl Fig4Report {
    /// The row for a given query name.
    pub fn query(&self, name: &str) -> Option<&Fig4Row> {
        self.rows.iter().find(|r| r.query == name)
    }

    /// Queries whose block traffic is dominated (> threshold) by a class.
    pub fn dominated_by(&self, class: RequestClass, threshold: f64) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.block_fraction.get(class.label()).copied().unwrap_or(0.0) > threshold)
            .map(|r| r.query.clone())
            .collect()
    }
}

impl fmt::Display for Fig4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let classes: Vec<&str> = RequestClass::all().iter().map(|c| c.label()).collect();
        let mut headers = vec!["query"];
        headers.extend(classes.iter().copied());

        let render = |pick: &dyn Fn(&Fig4Row) -> &BTreeMap<String, f64>| -> Vec<Vec<String>> {
            self.rows
                .iter()
                .map(|row| {
                    let mut cells = vec![row.query.clone()];
                    for class in &classes {
                        let v = pick(row).get(*class).copied().unwrap_or(0.0);
                        cells.push(format!("{:.1}%", v * 100.0));
                    }
                    cells
                })
                .collect()
        };

        writeln!(f, "Figure 4a — percentage of each type of requests")?;
        write!(
            f,
            "{}",
            format_table(&headers, &render(&|r| &r.request_fraction))
        )?;
        writeln!(f, "\nFigure 4b — percentage of each type of disk blocks")?;
        write!(
            f,
            "{}",
            format_table(&headers, &render(&|r| &r.block_fraction))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn covers_all_22_queries_with_sane_fractions() {
        let report = run(test_scale());
        assert_eq!(report.rows.len(), 22);
        for row in &report.rows {
            let total: f64 = row.block_fraction.values().sum();
            assert!((total - 1.0).abs() < 1e-6, "{}: {total}", row.query);
        }
    }

    #[test]
    fn paper_characterisations_hold() {
        let report = run(test_scale());
        // Q1, Q5, Q11, Q19 are dominated by sequential requests.
        let seq_dominated = report.dominated_by(RequestClass::Sequential, 0.8);
        for q in ["Q1", "Q5", "Q11", "Q19"] {
            assert!(
                seq_dominated.contains(&q.to_string()),
                "{q} not sequential-dominated"
            );
        }
        // Q9 and Q21 have a significant amount of random requests.
        for q in ["Q9", "Q21"] {
            let row = report.query(q).unwrap();
            assert!(
                row.block_fraction["random"] > 0.2,
                "{q} lacks random traffic"
            );
        }
        // Q18 generates a large number of temporary data requests.
        let q18 = report.query("Q18").unwrap();
        assert!(q18.block_fraction["temporary"] > 0.15);
    }

    #[test]
    fn display_renders_both_panels() {
        let report = run(test_scale());
        let text = report.to_string();
        assert!(text.contains("Figure 4a"));
        assert!(text.contains("Figure 4b"));
        assert!(text.contains("Q21"));
    }
}
