//! Policy-comparison experiment (not a figure of the paper, but its core
//! claim): the same cache engine — identical shards, devices, write-buffer
//! mechanism and submission pipeline — run under each selectable
//! replacement policy on a TPC-H mix, so the *only* variable is whether
//! the policy can use the semantic information requests carry.
//!
//! The mix interleaves the three access shapes the paper's single-query
//! experiments isolate — a sequential-dominated query (Q1), a
//! random-dominated query (Q9) and the temporary-data-dominated query
//! (Q18) — and then *re-runs* the random and temporary queries, all back
//! to back so cache contents carry over. The re-references are where
//! policies diverge: a caching-unaware baseline has let the Q1 scan and
//! the dead temporary blocks pollute the cache, while the semantic policy
//! kept the random working set resident and TRIMmed the temporary data at
//! end of lifetime. The paper's direction — semantic priority beats
//! caching-unaware LRU — is asserted by the fidelity gate via
//! [`PolicyComparisonReport::semantic_over_lru`].

use crate::report::format_table;
use crate::{SystemConfig, TpchSystem};
use hstorage_cache::{CachePolicyKind, StorageConfigKind};
use hstorage_tpch::{QueryId, TpchScale};
use std::fmt;

/// The query mix the policies compete on.
pub const QUERY_MIX: [QueryId; 5] = [
    QueryId::Q(1),
    QueryId::Q(9),
    QueryId::Q(18),
    QueryId::Q(9),
    QueryId::Q(18),
];

/// One policy's result over the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Which replacement policy drove the engine.
    pub policy: CachePolicyKind,
    /// Total simulated execution time of the mix in seconds.
    pub seconds: f64,
    /// Blocks accessed at the storage level.
    pub accessed_blocks: u64,
    /// Blocks served from the SSD cache.
    pub cache_hits: u64,
    /// Blocks written to the second-level (HDD) device — the write-back
    /// traffic CFLRU targets.
    pub hdd_blocks_written: u64,
}

impl PolicyRow {
    /// Overall cache hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.accessed_blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.accessed_blocks as f64
        }
    }
}

/// Results of the policy-comparison experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparisonReport {
    /// One row per selectable policy, in [`CachePolicyKind::all`] order.
    pub rows: Vec<PolicyRow>,
}

/// Runs the query mix under every selectable cache policy.
pub fn run(scale: TpchScale) -> PolicyComparisonReport {
    let rows = CachePolicyKind::all()
        .into_iter()
        .map(|kind| {
            let config = SystemConfig::single_query(scale, StorageConfigKind::HStorageDb)
                .with_cache_policy(kind);
            let mut system = TpchSystem::new(config);
            let stats = system.run_sequence(&QUERY_MIX);
            let seconds = stats.iter().map(|s| s.elapsed.as_secs_f64()).sum();
            let storage = system.storage_stats();
            let totals = storage.totals();
            PolicyRow {
                policy: kind,
                seconds,
                accessed_blocks: totals.accessed_blocks,
                cache_hits: totals.cache_hits,
                hdd_blocks_written: storage.hdd.map(|d| d.blocks_written).unwrap_or(0),
            }
        })
        .collect();
    PolicyComparisonReport { rows }
}

impl PolicyComparisonReport {
    /// The row for one policy.
    pub fn row(&self, policy: CachePolicyKind) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// Speedup of the semantic policy over `other` on the mix (> 1 means
    /// the semantic policy finished faster).
    pub fn semantic_over(&self, other: CachePolicyKind) -> Option<f64> {
        let semantic = self.row(CachePolicyKind::SemanticPriority)?.seconds;
        let other = self.row(other)?.seconds;
        Some(other / semantic)
    }

    /// The paper's headline direction: semantic priority vs plain LRU on
    /// the same engine.
    pub fn semantic_over_lru(&self) -> Option<f64> {
        self.semantic_over(CachePolicyKind::Lru)
    }
}

impl fmt::Display for PolicyComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mix: Vec<String> = QUERY_MIX.iter().map(|q| q.name()).collect();
        writeln!(
            f,
            "Policy comparison — one cache engine, four replacement policies, mix {}",
            mix.join("+")
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.label().to_string(),
                    format!("{:.3}", r.seconds),
                    r.accessed_blocks.to_string(),
                    r.cache_hits.to_string(),
                    format!("{:.1}%", r.hit_ratio() * 100.0),
                    r.hdd_blocks_written.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "policy",
                    "seconds",
                    "accessed blks",
                    "cache hits",
                    "hit ratio",
                    "hdd blks written"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn semantic_priority_beats_the_lru_baseline_on_the_mix() {
        let report = run(test_scale());
        assert_eq!(report.rows.len(), CachePolicyKind::all().len());
        // The paper's direction: semantic information wins on the same
        // engine, by a margin the fidelity gate's direction test sees.
        let speedup = report.semantic_over_lru().unwrap();
        assert!(speedup > 1.05, "semantic vs LRU speedup {speedup}");
        // And it wins against every caching-unaware baseline on this mix.
        for kind in [
            CachePolicyKind::cflru(),
            CachePolicyKind::two_q(),
            CachePolicyKind::Arc,
        ] {
            let s = report.semantic_over(kind).unwrap();
            assert!(s > 1.0, "semantic vs {kind} speedup {s}");
        }
        // All policies served the identical logical workload.
        let accessed = report.rows[0].accessed_blocks;
        assert!(accessed > 0);
        assert!(report.rows.iter().all(|r| r.accessed_blocks == accessed));
    }

    #[test]
    fn display_lists_every_policy() {
        let report = run(test_scale());
        let text = report.to_string();
        for kind in CachePolicyKind::all() {
            assert!(text.contains(kind.label()), "{kind}");
        }
    }
}
