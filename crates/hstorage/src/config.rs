//! System configuration: which storage configuration to run, at what scale,
//! with which cache / buffer-pool sizes.

use hstorage_cache::{
    CachePolicyKind, JournalConfig, MigrationConfig, StorageConfig, StorageConfigKind,
};
use hstorage_engine::ExecutorConfig;
use hstorage_storage::PolicyConfig;
use hstorage_tpch::TpchScale;
use serde::{Deserialize, Serialize};

/// Everything needed to build a [`TpchSystem`](crate::TpchSystem).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The TPC-H scale.
    pub scale: TpchScale,
    /// Which of the four storage configurations to use.
    pub storage_kind: StorageConfigKind,
    /// SSD cache capacity in blocks (ignored by the passthrough kinds).
    pub cache_blocks: u64,
    /// DBMS buffer-pool capacity in blocks.
    pub buffer_pool_blocks: u64,
    /// QoS policy parameters.
    pub policy: PolicyConfig,
    /// Executor tuning.
    pub executor: ExecutorConfig,
    /// Lock-striping shard count for the hStorage-DB storage kind: 1 keeps
    /// the paper's exact global allocation/eviction; larger values enable
    /// parallel submits for the threaded stream driver.
    pub storage_shards: usize,
    /// Device queue depth for the batched submission path: how many
    /// adjacent same-direction requests a device may merge into one
    /// transfer when the executor submits a scan batch. 1 (the default)
    /// disables merging — the paper-exact setting.
    pub storage_queue_depth: usize,
    /// Replacement policy of the hStorage-DB cache engine, knobs
    /// included (CFLRU clean-first window, 2Q `Kin`/`Kout`, per-stream
    /// routing). The default (semantic priority) is the paper's policy;
    /// the other kinds run the same engine behind a classical baseline,
    /// adaptive ARC or the per-stream compositor, which is how the
    /// policy-comparison and knob-ablation experiments isolate the value
    /// of semantic information. Ignored by the non-engine storage kinds.
    pub cache_policy: CachePolicyKind,
    /// Online tier-migration knobs of the hStorage-DB cache engine (see
    /// [`hstorage_cache::migration`]). Disabled by default; ignored by
    /// the non-engine storage kinds.
    pub migration: MigrationConfig,
    /// Write-ahead journaling knobs of the hStorage-DB cache engine (see
    /// [`hstorage_cache::journal`]). Disabled by default — the engine is
    /// then bit-identical to one without a journal — and ignored by the
    /// non-engine storage kinds.
    pub journal: JournalConfig,
}

impl SystemConfig {
    /// The single-query experiment setup of Sections 6.2–6.3: the SSD cache
    /// keeps the paper's 32 GB : 46 GB cache-to-data ratio, and the DBMS
    /// buffer pool is kept small (≈2% of the data) so that storage sees the
    /// bulk of the accesses, as it does in the paper's measurements.
    pub fn single_query(scale: TpchScale, storage_kind: StorageConfigKind) -> Self {
        let cache_blocks = scale.paper_single_query_cache_blocks();
        let buffer_pool_blocks = (scale.total_blocks() / 50).max(64);
        let executor = ExecutorConfig {
            buffer_pool_blocks,
            ..ExecutorConfig::default()
        };
        SystemConfig {
            scale,
            storage_kind,
            cache_blocks,
            buffer_pool_blocks,
            policy: PolicyConfig::paper_default(),
            executor,
            storage_shards: 1,
            storage_queue_depth: 1,
            cache_policy: CachePolicyKind::default(),
            migration: MigrationConfig::default(),
            journal: JournalConfig::default(),
        }
    }

    /// The throughput-test setup of Section 6.4: 4 GB of cache and 2 GB of
    /// main memory over a 16 GB database, preserved as ratios.
    pub fn throughput(scale: TpchScale, storage_kind: StorageConfigKind) -> Self {
        let cache_blocks = scale.paper_throughput_cache_blocks();
        let buffer_pool_blocks = scale.paper_throughput_buffer_pool_blocks().max(64);
        let executor = ExecutorConfig {
            buffer_pool_blocks,
            ..ExecutorConfig::default()
        };
        SystemConfig {
            scale,
            storage_kind,
            cache_blocks,
            buffer_pool_blocks,
            policy: PolicyConfig::paper_default(),
            executor,
            storage_shards: 1,
            storage_queue_depth: 1,
            cache_policy: CachePolicyKind::default(),
            migration: MigrationConfig::default(),
            journal: JournalConfig::default(),
        }
    }

    /// Overrides the cache size (e.g. for ablations).
    pub fn with_cache_blocks(mut self, blocks: u64) -> Self {
        self.cache_blocks = blocks;
        self
    }

    /// Overrides the policy parameters (e.g. for ablations).
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the storage shard count (e.g. for threaded throughput
    /// runs).
    pub fn with_storage_shards(mut self, shards: usize) -> Self {
        self.storage_shards = shards;
        self
    }

    /// Overrides the device queue depth for batched submission.
    pub fn with_storage_queue_depth(mut self, queue_depth: usize) -> Self {
        self.storage_queue_depth = queue_depth;
        self
    }

    /// Overrides the cache engine's replacement policy, including any
    /// knob values the kind carries (e.g. for the policy-comparison and
    /// knob-ablation experiments). Panics on out-of-range knobs, like
    /// [`StorageConfig::with_cache_policy`].
    pub fn with_cache_policy(mut self, cache_policy: CachePolicyKind) -> Self {
        cache_policy
            .validate()
            .expect("invalid cache-policy configuration");
        self.cache_policy = cache_policy;
        self
    }

    /// Overrides the executor's scan-batch size (number of sequential
    /// requests vectored into one `submit_batch` call).
    pub fn with_io_batch_size(mut self, io_batch_size: usize) -> Self {
        self.executor.io_batch_size = io_batch_size;
        self
    }

    /// Overrides the tier-migration knobs of the hStorage-DB cache
    /// engine. Panics on out-of-range knobs, like
    /// [`StorageConfig::with_migration`].
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        migration
            .validate()
            .expect("invalid migration configuration");
        self.migration = migration;
        self
    }

    /// Overrides the write-ahead journaling knobs of the hStorage-DB cache
    /// engine. Panics on out-of-range knobs, like
    /// [`StorageConfig::with_journal`].
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        journal.validate().expect("invalid journal configuration");
        self.journal = journal;
        self
    }

    /// The storage configuration descriptor implied by this system config.
    pub fn storage_config(&self) -> StorageConfig {
        StorageConfig::new(self.storage_kind, self.cache_blocks)
            .with_policy(self.policy)
            .with_shards(self.storage_shards)
            .with_queue_depth(self.storage_queue_depth)
            .with_cache_policy(self.cache_policy)
            .with_migration(self.migration)
            .with_journal(self.journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_preserves_cache_ratio() {
        let scale = TpchScale::new(0.1);
        let cfg = SystemConfig::single_query(scale, StorageConfigKind::HStorageDb);
        let ratio = cfg.cache_blocks as f64 / scale.total_blocks() as f64;
        assert!((ratio - 32.0 / 46.0).abs() < 0.02);
        assert!(cfg.buffer_pool_blocks < cfg.cache_blocks);
        assert_eq!(cfg.executor.buffer_pool_blocks, cfg.buffer_pool_blocks);
    }

    #[test]
    fn throughput_uses_smaller_cache_and_memory() {
        let scale = TpchScale::new(0.1);
        let single = SystemConfig::single_query(scale, StorageConfigKind::Lru);
        let through = SystemConfig::throughput(scale, StorageConfigKind::Lru);
        assert!(through.cache_blocks < single.cache_blocks);
        assert!(through.buffer_pool_blocks > 0);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SystemConfig::single_query(TpchScale::new(0.05), StorageConfigKind::HStorageDb)
            .with_cache_blocks(123)
            .with_policy(PolicyConfig::with_priorities(6, 0.2));
        assert_eq!(cfg.cache_blocks, 123);
        assert_eq!(cfg.policy.total_priorities, 6);
        assert_eq!(cfg.storage_config().cache_capacity_blocks, 123);
        let sharded = cfg.with_storage_shards(8);
        assert_eq!(sharded.storage_config().shards, 8);
        let batched = sharded.with_storage_queue_depth(32).with_io_batch_size(64);
        assert_eq!(batched.storage_config().queue_depth, 32);
        assert_eq!(batched.executor.io_batch_size, 64);
        let swapped = batched.with_cache_policy(CachePolicyKind::cflru());
        assert_eq!(
            swapped.storage_config().cache_policy,
            CachePolicyKind::cflru()
        );
    }

    #[test]
    fn journaling_defaults_off_and_threads_through() {
        let cfg = SystemConfig::single_query(TpchScale::new(0.05), StorageConfigKind::HStorageDb);
        assert!(!cfg.journal.enabled);
        assert!(!cfg.storage_config().journal.enabled);
        let journaled = cfg.with_journal(JournalConfig::on().with_commit_interval(4));
        assert_eq!(journaled.storage_config().journal.commit_interval, 4);
    }

    #[test]
    fn cache_policy_defaults_to_semantic_priority() {
        let cfg = SystemConfig::single_query(TpchScale::new(0.05), StorageConfigKind::HStorageDb);
        assert_eq!(cfg.cache_policy, CachePolicyKind::SemanticPriority);
        assert_eq!(
            cfg.storage_config().cache_policy,
            CachePolicyKind::SemanticPriority
        );
    }
}
