//! The `TpchSystem` façade: a TPC-H database, a storage configuration and a
//! query executor wired together.

use crate::config::SystemConfig;
use hstorage_cache::{CacheStats, StorageSystem};
use hstorage_engine::{
    run_concurrent, run_streams_service, run_threaded, CompletedQuery, ConcurrencyRegistry,
    QueryExecutor, QueryStats, ServiceConfig, ServiceReport, StreamSpec,
};
use hstorage_tpch::{build_plan, QueryId, TpchDatabase};
use std::sync::Arc;
use std::time::Duration;

/// A complete system instance: database + storage + executor.
///
/// The storage system is held behind an `Arc` so it can be shared with the
/// OS threads of [`TpchSystem::run_streams_threaded`]; every storage method
/// takes `&self`, so the façade never needs an exclusive borrow of it.
pub struct TpchSystem {
    config: SystemConfig,
    db: TpchDatabase,
    storage: Arc<dyn StorageSystem>,
    executor: QueryExecutor,
}

impl TpchSystem {
    /// Builds the system described by `config`.
    pub fn new(config: SystemConfig) -> Self {
        let db = TpchDatabase::build(config.scale);
        let storage = config.storage_config().build_shared();
        let executor = QueryExecutor::with_registry(
            config.executor,
            config.policy,
            ConcurrencyRegistry::new(),
        );
        TpchSystem {
            config,
            db,
            storage,
            executor,
        }
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The TPC-H database (catalog + scale).
    pub fn database(&self) -> &TpchDatabase {
        &self.db
    }

    /// The storage configuration's display name ("HDD-only", "LRU", …).
    pub fn storage_name(&self) -> String {
        self.storage.name().to_string()
    }

    /// Runs one query to completion and returns its statistics.
    pub fn run(&mut self, query: QueryId) -> QueryStats {
        let plan = build_plan(query, &self.db);
        self.executor
            .run_query(&plan, &mut self.db.catalog, self.storage.as_ref())
    }

    /// Runs a sequence of queries back to back (cache contents carry over,
    /// as in the paper's power test).
    pub fn run_sequence(&mut self, queries: &[QueryId]) -> Vec<QueryStats> {
        queries.iter().map(|q| self.run(*q)).collect()
    }

    /// Runs several query streams concurrently with the deterministic
    /// cooperative slicer (the throughput test). `ops_per_slice` controls
    /// the interleaving granularity.
    pub fn run_streams(
        &mut self,
        streams: &[(String, Vec<QueryId>)],
        ops_per_slice: usize,
    ) -> Vec<CompletedQuery> {
        let specs = self.stream_specs(streams);
        run_concurrent(
            &mut self.executor,
            &specs,
            &mut self.db.catalog,
            self.storage.as_ref(),
            ops_per_slice,
        )
    }

    /// Runs several query streams on real OS threads — one thread per
    /// stream — against the shared storage system. All streams share the
    /// system's concurrency registry (Rule 5); each gets its own buffer
    /// pool and catalog snapshot. See
    /// [`run_threaded`] for the determinism
    /// trade-off versus [`TpchSystem::run_streams`].
    pub fn run_streams_threaded(
        &mut self,
        streams: &[(String, Vec<QueryId>)],
    ) -> Vec<CompletedQuery> {
        let specs = self.stream_specs(streams);
        run_threaded(
            self.config.executor,
            self.config.policy,
            self.executor.registry(),
            &specs,
            &self.db.catalog,
            &self.storage,
        )
    }

    /// Runs query streams through the bounded-worker query service (the
    /// recommended concurrency driver): a fixed pool of
    /// [`ServiceConfig::workers`] OS threads consumes the streams' queries
    /// from a bounded submission queue in a closed loop, no matter how
    /// many logical streams there are. Returns the completed queries
    /// (grouped by stream, in stream order) plus a per-request
    /// simulated-latency histogram. With `service.workers == 1` the run is
    /// fully deterministic. See [`run_streams_service`].
    pub fn run_streams_service(
        &mut self,
        streams: &[(String, Vec<QueryId>)],
        service: ServiceConfig,
    ) -> ServiceReport {
        let specs = self.stream_specs(streams);
        run_streams_service(
            self.config.executor,
            service,
            self.config.policy,
            self.executor.registry(),
            &specs,
            &self.db.catalog,
            &self.storage,
        )
    }

    fn stream_specs(&self, streams: &[(String, Vec<QueryId>)]) -> Vec<StreamSpec> {
        streams
            .iter()
            .map(|(name, queries)| StreamSpec {
                name: name.clone(),
                queries: queries.iter().map(|q| build_plan(*q, &self.db)).collect(),
            })
            .collect()
    }

    /// Snapshot of the storage system's statistics.
    pub fn storage_stats(&self) -> CacheStats {
        self.storage.stats()
    }

    /// Clears the storage statistics counters (cache contents are kept).
    pub fn reset_storage_stats(&mut self) {
        self.storage.reset_stats();
    }

    /// Clears the DBMS buffer pool.
    pub fn clear_buffer_pool(&mut self) {
        self.executor.clear_buffer_pool();
    }

    /// The storage system's simulated clock.
    pub fn storage_time(&self) -> Duration {
        self.storage.now()
    }

    /// Number of blocks currently resident in the SSD cache.
    pub fn cached_blocks(&self) -> u64 {
        self.storage.resident_blocks()
    }

    /// Offers the storage system one background tier-migration window
    /// (a no-op unless [`SystemConfig::migration`] enables migration) and
    /// returns its cumulative migration counters. The executor already
    /// pulses at every query boundary; this is for drivers that want
    /// extra windows between queries.
    pub fn migrate_idle(&self) -> hstorage_cache::MigrationStats {
        self.storage.migrate_idle()
    }

    /// The storage system's cumulative tier-migration counters.
    pub fn migration_stats(&self) -> hstorage_cache::MigrationStats {
        self.storage.migration_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstorage_cache::StorageConfigKind;
    use hstorage_storage::RequestClass;
    use hstorage_tpch::TpchScale;

    fn tiny(kind: StorageConfigKind) -> TpchSystem {
        TpchSystem::new(SystemConfig::single_query(TpchScale::new(0.01), kind))
    }

    #[test]
    fn q1_runs_on_every_configuration() {
        for kind in StorageConfigKind::all() {
            let mut sys = tiny(kind);
            let stats = sys.run(QueryId::Q(1));
            assert!(stats.elapsed > Duration::ZERO, "{kind}");
            assert!(stats.blocks(RequestClass::Sequential) > 0);
            assert_eq!(sys.storage_name(), kind.label());
        }
    }

    #[test]
    fn sequence_accumulates_cache_state() {
        let mut sys = tiny(StorageConfigKind::HStorageDb);
        let results = sys.run_sequence(&[QueryId::Q(9), QueryId::Q(9)]);
        assert_eq!(results.len(), 2);
        // The second run reuses the SSD cache populated by the first.
        assert!(results[1].io_time < results[0].io_time);
        assert!(sys.cached_blocks() > 0);
    }

    #[test]
    fn streams_complete_all_queries() {
        let mut sys = tiny(StorageConfigKind::HStorageDb);
        let completed = sys.run_streams(
            &[
                ("s1".to_string(), vec![QueryId::Q(1), QueryId::Q(6)]),
                ("s2".to_string(), vec![QueryId::Q(19)]),
            ],
            32,
        );
        assert_eq!(completed.len(), 3);
    }

    #[test]
    fn threaded_streams_complete_all_queries() {
        let mut sys = tiny(StorageConfigKind::HStorageDb);
        let completed = sys.run_streams_threaded(&[
            ("s1".to_string(), vec![QueryId::Q(1), QueryId::Q(6)]),
            ("s2".to_string(), vec![QueryId::Q(19)]),
            ("s3".to_string(), vec![QueryId::Q(6)]),
        ]);
        assert_eq!(completed.len(), 4);
        assert_eq!(sys.executor.registry().active_queries(), 0);
        assert!(completed.iter().all(|q| q.stats.elapsed > Duration::ZERO));
    }

    #[test]
    fn service_streams_complete_all_queries_with_latency_samples() {
        let mut sys = tiny(StorageConfigKind::HStorageDb);
        let report = sys.run_streams_service(
            &[
                ("s1".to_string(), vec![QueryId::Q(1), QueryId::Q(6)]),
                ("s2".to_string(), vec![QueryId::Q(19)]),
                ("s3".to_string(), vec![QueryId::Q(6)]),
            ],
            ServiceConfig {
                workers: 2,
                queue_depth: 4,
            },
        );
        assert_eq!(report.completed.len(), 4);
        assert_eq!(report.latency.len(), 4);
        assert_eq!(sys.executor.registry().active_queries(), 0);
        assert!(report.latency.p99().expect("non-empty") > Duration::ZERO);
    }

    #[test]
    fn reset_stats_keeps_cache_contents() {
        let mut sys = tiny(StorageConfigKind::HStorageDb);
        sys.run(QueryId::Q(9));
        let cached = sys.cached_blocks();
        assert!(cached > 0);
        sys.reset_storage_stats();
        assert_eq!(sys.storage_stats().totals().accessed_blocks, 0);
        assert_eq!(sys.cached_blocks(), cached);
    }
}
