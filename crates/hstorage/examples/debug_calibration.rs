//! Internal calibration aid: prints the experiment reports at a small scale.
use hstorage::experiments::{fig5, fig6, fig9, table9};
use hstorage_tpch::TpchScale;

fn main() {
    let scale = TpchScale::new(0.02);
    println!("=== fig5 ===\n{}", fig5::run(scale));
    println!("=== fig6 ===\n{}", fig6::run(scale));
    println!("=== fig9 ===\n{}", fig9::run(scale));
    println!(
        "=== table9 (0.01) ===\n{}",
        table9::run(TpchScale::new(0.01))
    );
}
